//! # Alecto reproduction — umbrella crate
//!
//! This crate re-exports the whole workspace so that the root-level
//! `examples/` and `tests/` directories can exercise the full public API in
//! one place. Downstream users typically depend on the individual member
//! crates instead:
//!
//! * [`alecto`] — the paper's contribution: the Allocation/Sample/Sandbox
//!   tables and the [`alecto::AlectoSelector`] implementing dynamic demand
//!   request allocation.
//! * [`prefetch`] — the six hardware prefetchers being scheduled.
//! * [`selectors`] — the baseline selection algorithms (IPCP, DOL, Bandit,
//!   PPF) the paper compares against.
//! * [`memsys`] / [`cpu`] — the cache/DRAM/core simulator substrate.
//! * [`machine`] — declarative `alecto-machine-v1` machine descriptions
//!   and the built-in registry behind `--machine`.
//! * [`traces`] — synthetic SPEC/PARSEC/Ligra-like workload generators.
//! * [`traceio`] — the `.altr` binary trace record/replay format and the
//!   ChampSim-style external trace importer.
//! * [`fuzz`] — the adversarial scenario fuzzer: seeded blend composition,
//!   pathology oracles, shrinking, and persisted `.altr` repros.
//! * [`harness`] — the experiment runner that regenerates every figure and
//!   table of the paper's evaluation.
//!
//! ```
//! use alecto_repro::prelude::*;
//!
//! let workload = traces::spec06::workload("lbm", 50_000);
//! let config = cpu::SystemConfig::skylake_like(1);
//! let mut sim = cpu::System::new(config, SelectionAlgorithm::Alecto, CompositeKind::GsCsPmp);
//! let report = sim.run(&[workload]);
//! assert!(report.cores[0].ipc > 0.0);
//! ```

pub use alecto;
pub use alecto_types as types;
pub use cpu;
pub use fuzz;
pub use harness;
pub use machine;
pub use memsys;
pub use prefetch;
pub use selectors;
pub use traceio;
pub use traces;

/// Convenience re-exports used by the examples and integration tests.
pub mod prelude {
    pub use crate::{
        alecto, cpu, fuzz, harness, machine, memsys, prefetch, selectors, traceio, traces, types,
    };
    pub use cpu::{CompositeKind, SelectionAlgorithm, SystemConfig};
}
