//! Machine descriptions as a determinism surface: a `--machine` selection
//! must behave exactly like the hand-built configs it replaces — byte-
//! identical reports at any `--jobs`, a stable canonical fingerprint, and a
//! single lowering funnel into [`SystemConfig`]. The golden fixture pins
//! the `alecto-machine-v1` wire format the same way `golden.altr` pins the
//! trace codec (see `tests/fixtures/README.md` for the bump rules).

use harness::report::experiments_to_json;
use harness::{figures, RunScale};
use machine::MachineSpec;

/// Whole-fixture fingerprint of `tests/fixtures/golden.machine.toml`. If
/// the parser, the canonical rendering, or the FNV fold changes, this
/// constant changes with it — see the bump rules before touching either.
const GOLDEN_MACHINE_FINGERPRINT: &str = "e217b28558ca938a";

fn golden_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.machine.toml");
    std::fs::read_to_string(path).expect("golden machine fixture is committed")
}

#[test]
fn golden_machine_fixture_is_pinned() {
    let spec = machine::parse(&golden_text()).expect("golden fixture parses");
    assert_eq!(spec.name, "golden");
    assert_eq!(spec.cores, 4);
    assert_eq!(
        spec.fingerprint_hex(),
        GOLDEN_MACHINE_FINGERPRINT,
        "the machine format or its fingerprint derivation changed; \
         follow the bump rules in tests/fixtures/README.md"
    );
}

#[test]
fn golden_machine_round_trips_through_its_canonical_text() {
    // `machines show` output is itself a valid machine file describing the
    // same machine: parse -> render -> parse is a fixed point.
    let spec = machine::parse(&golden_text()).expect("golden fixture parses");
    let reparsed = machine::parse(&spec.canonical_text()).expect("canonical text parses");
    assert_eq!(spec, reparsed, "canonical text must describe the same machine");
    assert_eq!(spec.fingerprint(), reparsed.fingerprint());
}

#[test]
fn golden_machine_lowers_into_a_valid_system_config() {
    let spec = machine::parse(&golden_text()).expect("golden fixture parses");
    let config = cpu::SystemConfig::from_machine(&spec);
    config.hierarchy.validate().expect("lowered hierarchy is valid");
    assert_eq!(config.machine.as_deref(), Some("golden"));
    assert_eq!(config.core_model, machine::CoreModelKind::OutOfOrder);
    // The fixture spells L3 as machine totals; the lowered hierarchy carries
    // the same totals (4 MiB, 128 MSHRs across 4 cores).
    assert_eq!(config.hierarchy.l3.size_bytes, 4096 * 1024);
    assert_eq!(config.hierarchy.l3.mshrs, 128);
}

#[test]
fn server_machine_report_is_jobs_invariant() {
    // The acceptance contract for `--machine`: selecting a machine must not
    // re-introduce any scheduling sensitivity. The full JSON report for a
    // `--machine server` replay is byte-identical at `--jobs 1` and `--jobs 4`
    // — the same contract `tests/determinism.rs` pins for the default config.
    let sources =
        vec![traces::spec06::source("lbm", 400), traces::spec17::source("povray_17", 400)];
    let report_at = |jobs: usize| {
        let scale = RunScale { jobs, ..RunScale::resolve(false, Some(400), None, None) }
            .with_machine(machine::builtin("server").expect("server is a built-in"));
        experiments_to_json(&[figures::replay(&sources, &scale)])
    };
    assert_eq!(report_at(1), report_at(4), "--jobs changed a --machine server report");
}

#[test]
fn builtin_machines_rescale_without_losing_their_identity() {
    // `--machine` composes with experiments that sweep the core count
    // (fig17 lowers the spec at several core counts): rescaling preserves
    // per-core geometry and the spec stays valid at every count.
    for name in machine::BUILTIN_NAMES {
        let spec = machine::builtin(name).expect("registry is complete");
        for cores in [1, 2, 8, 32] {
            let scaled = spec.clone().with_cores(cores);
            scaled.validate().unwrap_or_else(|e| panic!("{name} at {cores} cores: {e}"));
            assert_eq!(scaled.l1d, spec.l1d, "{name}: per-core L1D drifted at {cores} cores");
            assert_eq!(
                scaled.l3_per_core, spec.l3_per_core,
                "{name}: per-core LLC share drifted at {cores} cores"
            );
        }
    }
}

#[test]
fn machine_cells_share_cache_keys_between_cli_and_server() {
    // The CLI lowers `--machine server` via `RunScale::with_machine`; the
    // server lowers `"machine":"server"` via `machine::builtin`. Both paths
    // must produce the same `SystemConfig` and therefore the same cell
    // cache keys — that is what lets a server sweep hit cells a CLI run
    // warmed (and vice versa, through --cache-dir).
    use harness::runner::CellJob;

    let sources = [traces::spec06::source("lbm", 200)];
    let key_of = |config: &cpu::SystemConfig| {
        CellJob {
            algorithm: cpu::SelectionAlgorithm::Alecto,
            composite: cpu::CompositeKind::GsCsPmp,
            config,
            sources: &sources,
        }
        .cache_key()
    };

    let cli_scale = RunScale::default().with_machine(machine::builtin("server").unwrap());
    let cli_config = cli_scale.base_config(1);
    let server_config =
        cpu::SystemConfig::from_machine(&machine::builtin("server").unwrap().with_cores(1))
            .with_core_model(machine::CoreModelKind::OutOfOrder);
    assert_eq!(cli_config, server_config, "both paths must lower identically");
    assert_eq!(key_of(&cli_config), key_of(&server_config));

    // ...while the machine's name keys it apart from an anonymous config
    // with the same lowered parameters: named sweeps never poach cells
    // from (or leak cells to) the hand-built default.
    let mut anonymous = cli_config.clone();
    anonymous.machine = None;
    assert_ne!(key_of(&cli_config), key_of(&anonymous));
}

#[test]
fn anonymous_table1_spec_is_not_reported_as_a_machine() {
    // The default config must keep today's byte-for-byte output: no
    // "Machine" row may appear unless the config came from a *named* spec.
    let config = cpu::SystemConfig::from_machine(&MachineSpec::table1(1));
    assert_eq!(config.machine, None);
    assert!(config.describe().iter().all(|(k, _)| k != "Machine"));
}
