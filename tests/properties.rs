//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction: address arithmetic, saturating counters,
//! the Alecto state machine, the Sandbox/Sample tables, cache behaviour and
//! the prefetchers' output contracts.

use alecto::AlectoConfig;
use proptest::prelude::*;

mod addr_props {
    use super::*;
    use alecto_repro::types::{Addr, LineAddr, PageAddr};

    proptest! {
        #[test]
        fn line_and_page_round_trip(raw in any::<u64>()) {
            let addr = Addr::new(raw);
            // The line's base address is never above the original address and
            // within one line of it.
            let base = addr.line().base_addr();
            prop_assert!(base.raw() <= raw);
            prop_assert!(raw - base.raw() < 64);
            // Page/line relationships are consistent.
            prop_assert_eq!(addr.line().page(), addr.page());
            prop_assert!(addr.line().index_in_page() < 64);
        }

        #[test]
        fn line_offsets_are_invertible(line in 0u64..u64::MAX / 4, delta in -1000i64..1000) {
            let l = LineAddr::new(line);
            let moved = l.offset(delta);
            prop_assert_eq!(moved.delta_from(l), delta);
            prop_assert_eq!(moved.offset(-delta), l);
        }

        #[test]
        fn page_lines_stay_in_page(page in 0u64..(1 << 40), idx in 0u64..64) {
            let p = PageAddr::new(page);
            prop_assert_eq!(p.line(idx).page(), p);
        }
    }
}

mod counter_props {
    use super::*;
    use alecto_repro::types::{RatioCounter, SaturatingCounter};

    proptest! {
        #[test]
        fn saturating_counter_stays_in_range(max in 1u32..1000, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut c = SaturatingCounter::new(max);
            for up in ops {
                if up { c.increment(); } else { c.decrement(); }
                prop_assert!(c.value() <= max);
            }
        }

        #[test]
        fn ratio_counter_accuracy_is_a_probability(
            issued in proptest::collection::vec(1u32..5, 0..50),
            confirms in 0usize..200,
        ) {
            let mut r = RatioCounter::new();
            for n in &issued {
                r.record_issued(*n);
            }
            for _ in 0..confirms {
                r.record_confirmed();
            }
            match r.accuracy() {
                None => prop_assert!(issued.is_empty()),
                Some(a) => prop_assert!((0.0..=1.0).contains(&a)),
            }
        }
    }
}

mod state_machine_props {
    use super::*;
    use alecto::state::{transition, PrefetcherState, StateTransitionInput};

    fn arb_state() -> impl Strategy<Value = PrefetcherState> {
        prop_oneof![
            Just(PrefetcherState::Unidentified),
            (0u32..=5).prop_map(PrefetcherState::Aggressive),
            (0u32..=8).prop_map(PrefetcherState::Blocked),
        ]
    }

    proptest! {
        #[test]
        fn transitions_stay_within_configured_bounds(
            state in arb_state(),
            accuracy in proptest::option::of(0.0f64..=1.0),
            another in any::<bool>(),
            temporal in any::<bool>(),
        ) {
            let config = AlectoConfig::default();
            let input = StateTransitionInput {
                accuracy,
                another_promoted: another,
                temporal_demotion: temporal,
            };
            let next = transition(state, input, &config);
            match next {
                PrefetcherState::Aggressive(m) => prop_assert!(m <= config.max_aggressive),
                PrefetcherState::Blocked(n) => prop_assert!(n <= config.blocked_epochs),
                PrefetcherState::Unidentified => {}
            }
            // Blocked states only thaw by one per epoch; they never jump to IA.
            if let PrefetcherState::Blocked(n) = state {
                prop_assert!(!next.is_aggressive(), "IB_{n} must not jump straight to IA");
            }
        }

        #[test]
        fn high_accuracy_never_blocks_an_unidentified_non_temporal_prefetcher(
            accuracy in 0.75f64..=1.0,
        ) {
            let config = AlectoConfig::default();
            let input = StateTransitionInput {
                accuracy: Some(accuracy),
                another_promoted: false,
                temporal_demotion: false,
            };
            let next = transition(PrefetcherState::Unidentified, input, &config);
            prop_assert_eq!(next, PrefetcherState::Aggressive(0));
        }
    }
}

mod sandbox_props {
    use super::*;
    use alecto::SandboxTable;
    use alecto_repro::types::{LineAddr, Pc};

    proptest! {
        #[test]
        fn confirmations_only_for_matching_pcs(
            lines in proptest::collection::vec(0u64..10_000, 1..100),
            pcs in proptest::collection::vec(0u64..64, 1..100),
        ) {
            let mut table = SandboxTable::new(512, 3);
            let n = lines.len().min(pcs.len());
            for i in 0..n {
                table.filter_and_record(LineAddr::new(lines[i]), i % 3, Pc::new(pcs[i] << 3));
            }
            // A PC that was never used as a trigger cannot be confirmed
            // (the folded hash of a never-used PC value may collide, but the
            // confirmation count can never exceed the recorded count).
            prop_assert!(table.confirmations() == 0);
            for i in 0..n {
                let _ = table.confirm_demand(LineAddr::new(lines[i]), Pc::new(pcs[i] << 3));
            }
            prop_assert!(table.confirmations() as usize <= n * 3);
        }
    }
}

mod cache_props {
    use super::*;
    use alecto_repro::memsys::{Cache, CacheParams};
    use alecto_repro::types::LineAddr;

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(lines in proptest::collection::vec(0u64..4096, 1..500)) {
            let params = CacheParams { size_bytes: 8 * 1024, ways: 4, latency: 4, miss_latency: 1, mshrs: 8 };
            let capacity = (params.size_bytes / 64) as usize;
            let mut cache = Cache::new(params);
            for &l in &lines {
                cache.fill(LineAddr::new(l), None, None, false);
                prop_assert!(cache.occupancy() <= capacity);
            }
            // Everything resident was one of the filled lines.
            for meta in cache.resident_lines() {
                prop_assert!(lines.contains(&meta.line.raw()));
            }
        }

        #[test]
        fn a_filled_line_hits_until_evicted(lines in proptest::collection::vec(0u64..512, 1..200)) {
            let params = CacheParams { size_bytes: 64 * 1024, ways: 16, latency: 4, miss_latency: 1, mshrs: 8 };
            let mut cache = Cache::new(params);
            for &l in &lines {
                cache.fill(LineAddr::new(l), None, None, false);
                // The cache is larger than the candidate line universe, so the
                // most recently filled line always hits.
                prop_assert!(cache.demand_lookup(LineAddr::new(l), false).is_some());
            }
        }
    }
}

mod prefetcher_props {
    use super::*;
    use alecto_repro::prefetch::{Prefetcher, StreamPrefetcher, StridePrefetcher};
    use alecto_repro::types::{Addr, DemandAccess, Pc};

    proptest! {
        #[test]
        fn stride_prefetcher_respects_degree(
            stride in prop_oneof![Just(64i64), Just(128), Just(-192), Just(320)],
            degree in 0u32..8,
            steps in 4usize..40,
        ) {
            let mut pf = StridePrefetcher::default_config();
            let mut out = Vec::new();
            let base: i64 = 1 << 30;
            for i in 0..steps {
                out.clear();
                let addr = Addr::new((base + stride * i as i64) as u64);
                pf.train_and_predict(&DemandAccess::load(Pc::new(0x40), addr), degree, &mut out);
                prop_assert!(out.len() <= degree as usize);
            }
            // After warm-up the prefetcher emits exactly `degree` candidates.
            if degree > 0 {
                prop_assert_eq!(out.len(), degree as usize);
            }
        }

        #[test]
        fn stream_prefetcher_never_emits_the_trigger_line(
            start in 0u64..(1 << 30),
            degree in 1u32..6,
        ) {
            let mut pf = StreamPrefetcher::default_config();
            let mut out = Vec::new();
            for i in 0..32u64 {
                out.clear();
                let addr = Addr::new((start + i) * 64);
                let access = DemandAccess::load(Pc::new(0x44), addr);
                pf.train_and_predict(&access, degree, &mut out);
                prop_assert!(!out.contains(&access.line()), "prefetching the demand line is useless");
            }
        }
    }
}
