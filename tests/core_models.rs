//! Cross-model acceptance: the staged out-of-order pipeline must actually
//! buy something over the analytic approximation on the workloads the paper
//! cares about. Pointer-chasing benchmarks are the hard case — the chase
//! chain itself is irreducibly serial (each step issues at its producer's
//! fill, so both models walk the identical hierarchy recurrence), but every
//! access *around* the chain (noise loads, mark-bitmap writes, sweep
//! streams) overlaps inside the ROB/LSQ windows. With a prefetcher in front
//! (Alecto's selection turns it on) that overlap is real MLP the analytic
//! frontier clamp cannot express, so the pipeline model's IPC comes out
//! ahead across the family.

use cpu::{CompositeKind, CoreModelKind, SelectionAlgorithm, SystemConfig};
use harness::runner::run_single_core_suite;
use harness::SpeedupGrid;

fn pointer_chase_suite(core_model: CoreModelKind) -> SpeedupGrid {
    let sources: Vec<_> =
        traces::gc::BENCHMARKS.iter().map(|name| traces::gc::source(name, 2_500)).collect();
    run_single_core_suite(
        &sources,
        &[SelectionAlgorithm::Alecto],
        CompositeKind::GsCsPmp,
        &SystemConfig::skylake_like(1).with_core_model(core_model),
        2,
    )
}

#[test]
fn out_of_order_core_beats_the_analytic_model_on_pointer_chases() {
    let approx = pointer_chase_suite(CoreModelKind::Approx);
    let ooo = pointer_chase_suite(CoreModelKind::OutOfOrder);
    let cells = |grid: &SpeedupGrid| harness::report::grid_cells(grid);
    let a = cells(&approx);
    let b = cells(&ooo);
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), traces::gc::BENCHMARKS.len());
    let mut log_ratio_sum = 0.0f64;
    for (ca, cb) in a.iter().zip(&b) {
        assert_eq!(ca.benchmark, cb.benchmark);
        // Same deterministic access stream feeds both cores, so the
        // instruction counts agree; only the cycle accounting differs.
        assert_eq!(ca.instructions, cb.instructions, "{}: streams diverged", ca.benchmark);
        // The pipeline never loses to the analytic clamp. On a pure
        // DRAM-bound chain the two agree exactly (same serial recurrence
        // through the same hierarchy); everywhere else the pipeline's
        // overlapped misses pull cycles out of the total.
        assert!(
            cb.ipc >= ca.ipc,
            "{}: out-of-order IPC {} fell below the analytic model's {}",
            ca.benchmark,
            cb.ipc,
            ca.ipc
        );
        log_ratio_sum += (cb.ipc / ca.ipc).ln();
        // The pipeline metrics are the OoO model's own; the analytic model
        // reports null for both.
        assert!(ca.branch_mpki.is_none() && ca.rob_occupancy.is_none());
        assert!(cb.branch_mpki.is_some() && cb.rob_occupancy.is_some());
    }
    // Across the family the overlap is a strict win.
    let geomean_ratio = (log_ratio_sum / a.len() as f64).exp();
    assert!(
        geomean_ratio > 1.0,
        "out-of-order geomean IPC ratio {geomean_ratio} over the analytic model is not a win"
    );
}
