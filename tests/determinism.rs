//! Determinism lock-in for the parallel experiment engine: the `SpeedupGrid`
//! a sweep produces must be *exactly* equal — cell by cell, report by
//! report — whether the cells run serially (`jobs = 1`), across a worker
//! pool, or twice in a row. This is the contract that lets `--jobs N` be a
//! pure wall-clock knob and lets CI compare `BENCH_*.json` files across
//! machines.

use cpu::{CompositeKind, SelectionAlgorithm, SystemConfig};
use harness::runner::{run_multicore_mix, run_single_core_suite};
use harness::SpeedupGrid;

fn quick_suite(jobs: usize) -> SpeedupGrid {
    let workloads = vec![
        traces::spec06::workload("lbm", 800),
        traces::spec06::workload("mcf", 800),
        traces::spec06::workload("GemsFDTD", 800),
        traces::spec17::workload("povray_17", 800),
    ];
    run_single_core_suite(
        &workloads,
        &[SelectionAlgorithm::Ipcp, SelectionAlgorithm::Bandit6, SelectionAlgorithm::Alecto],
        CompositeKind::GsCsPmp,
        &SystemConfig::skylake_like(1),
        jobs,
    )
}

fn assert_grids_identical(a: &SpeedupGrid, b: &SpeedupGrid) {
    // `assert_eq!` on the whole grid would suffice, but comparing cell by
    // cell first localises any regression to a benchmark × algorithm pair.
    assert_eq!(a.algorithm_labels, b.algorithm_labels);
    assert_eq!(a.benchmarks.len(), b.benchmarks.len());
    for (ba, bb) in a.benchmarks.iter().zip(&b.benchmarks) {
        assert_eq!(ba.benchmark, bb.benchmark);
        assert_eq!(ba.baseline, bb.baseline, "baseline of {} diverged", ba.benchmark);
        for (ra, rb) in ba.algorithms.iter().zip(&bb.algorithms) {
            assert_eq!(ra.algorithm, rb.algorithm);
            assert!(
                ra.speedup == rb.speedup,
                "{} × {}: {} vs {}",
                ba.benchmark,
                ra.algorithm,
                ra.speedup,
                rb.speedup
            );
            assert_eq!(ra.report, rb.report, "{} × {} report diverged", ba.benchmark, ra.algorithm);
        }
    }
    assert_eq!(a, b);
}

#[test]
fn serial_and_parallel_suites_are_cell_for_cell_identical() {
    let serial = quick_suite(1);
    let parallel = quick_suite(4);
    assert_grids_identical(&serial, &parallel);
}

#[test]
fn repeated_parallel_runs_are_identical() {
    let first = quick_suite(4);
    let second = quick_suite(4);
    assert_grids_identical(&first, &second);
}

#[test]
fn multicore_mix_is_identical_across_worker_counts() {
    let mk = |jobs: usize| {
        run_multicore_mix(
            "canneal-x4",
            &traces::parsec::per_core_workloads("canneal", 500, 4),
            &[SelectionAlgorithm::Bandit6, SelectionAlgorithm::Alecto],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(4),
            jobs,
        )
    };
    assert_grids_identical(&mk(1), &mk(3));
}
