//! Determinism lock-in for the parallel experiment engine: the `SpeedupGrid`
//! a sweep produces must be *exactly* equal — cell by cell, report by
//! report — whether the cells run serially (`jobs = 1`), across a worker
//! pool, or twice in a row. This is the contract that lets `--jobs N` be a
//! pure wall-clock knob and lets CI compare `BENCH_*.json` files across
//! machines.

use cpu::{CompositeKind, CoreModelKind, SelectionAlgorithm, SystemConfig};
use harness::runner::{run_multicore_mix, run_single_core_suite};
use harness::{with_drive_options, DriveOptions, SpeedupGrid};

fn quick_suite_with_model(jobs: usize, core_model: CoreModelKind) -> SpeedupGrid {
    let sources = vec![
        traces::spec06::source("lbm", 800),
        traces::spec06::source("mcf", 800),
        traces::spec06::source("GemsFDTD", 800),
        traces::spec17::source("povray_17", 800),
    ];
    run_single_core_suite(
        &sources,
        &[SelectionAlgorithm::Ipcp, SelectionAlgorithm::Bandit6, SelectionAlgorithm::Alecto],
        CompositeKind::GsCsPmp,
        &SystemConfig::skylake_like(1).with_core_model(core_model),
        jobs,
    )
}

fn quick_suite(jobs: usize) -> SpeedupGrid {
    quick_suite_with_model(jobs, CoreModelKind::Approx)
}

fn assert_grids_identical(a: &SpeedupGrid, b: &SpeedupGrid) {
    // `assert_eq!` on the whole grid would suffice, but comparing cell by
    // cell first localises any regression to a benchmark × algorithm pair.
    assert_eq!(a.algorithm_labels, b.algorithm_labels);
    assert_eq!(a.benchmarks.len(), b.benchmarks.len());
    for (ba, bb) in a.benchmarks.iter().zip(&b.benchmarks) {
        assert_eq!(ba.benchmark, bb.benchmark);
        assert_eq!(ba.baseline, bb.baseline, "baseline of {} diverged", ba.benchmark);
        for (ra, rb) in ba.algorithms.iter().zip(&bb.algorithms) {
            assert_eq!(ra.algorithm, rb.algorithm);
            assert!(
                ra.speedup == rb.speedup,
                "{} × {}: {} vs {}",
                ba.benchmark,
                ra.algorithm,
                ra.speedup,
                rb.speedup
            );
            assert_eq!(ra.report, rb.report, "{} × {} report diverged", ba.benchmark, ra.algorithm);
        }
    }
    assert_eq!(a, b);
}

#[test]
fn serial_and_parallel_suites_are_cell_for_cell_identical() {
    let serial = quick_suite(1);
    let parallel = quick_suite(4);
    assert_grids_identical(&serial, &parallel);
}

#[test]
fn timing_fields_are_identical_across_worker_counts() {
    // The cycle-level timing model is pure bookkeeping over the same
    // deterministic access stream: total cycles, IPC and average
    // memory-access latency — the fields the alecto-bench-v2 report gates —
    // must be bit-identical at any worker count, not merely close.
    let serial = quick_suite(1);
    let parallel = quick_suite(4);
    let cells = |grid: &SpeedupGrid| harness::report::grid_cells(grid);
    let a = cells(&serial);
    let b = cells(&parallel);
    assert_eq!(a.len(), b.len());
    for (ca, cb) in a.iter().zip(&b) {
        assert_eq!(ca, cb, "v2 cell diverged: {} × {}", ca.benchmark, ca.algorithm);
        assert!(ca.cycles > 0, "{} × {} simulated no cycles", ca.benchmark, ca.algorithm);
        assert!(ca.instructions > 0);
        assert!(
            ca.avg_mem_latency > 0.0 && ca.avg_mem_latency.is_finite(),
            "{} × {} has no memory-latency signal",
            ca.benchmark,
            ca.algorithm
        );
        assert!(ca.ipc > 0.0 && ca.ipc.is_finite());
    }
    // The per-core breakdown underneath agrees too, including the stall
    // attribution (MSHR vs DRAM admission queue).
    for (ba, bb) in serial.benchmarks.iter().zip(&parallel.benchmarks) {
        for (ra, rb) in ba.algorithms.iter().zip(&bb.algorithms) {
            for (ca, cb) in ra.report.cores.iter().zip(&rb.report.cores) {
                assert_eq!(ca.timing, cb.timing, "per-core timing breakdown diverged");
                assert_eq!(ca.cycles, cb.cycles);
            }
        }
    }
}

#[test]
fn repeated_parallel_runs_are_identical() {
    let first = quick_suite(4);
    let second = quick_suite(4);
    assert_grids_identical(&first, &second);
}

#[test]
fn out_of_order_suite_is_identical_at_any_jobs_and_batch() {
    // The staged pipeline core must honour the same contract as the analytic
    // model: worker count, batch granularity and producer threading are pure
    // wall-clock knobs. Sweep the full {jobs} × {batch} matrix against the
    // serial, default-batch reference.
    let reference = quick_suite_with_model(1, CoreModelKind::OutOfOrder);
    for jobs in [1usize, 2, 4] {
        for batch_records in [1usize, 4096] {
            let options = DriveOptions { batch_records, ..DriveOptions::new() };
            let grid = with_drive_options(options, || {
                quick_suite_with_model(jobs, CoreModelKind::OutOfOrder)
            });
            assert_grids_identical(&reference, &grid);
        }
    }
    // And the pipeline metrics it adds actually reach the v2 cells.
    for cell in harness::report::grid_cells(&reference) {
        assert!(cell.branch_mpki.is_some(), "{} lost branch MPKI", cell.benchmark);
        assert!(cell.rob_occupancy.is_some(), "{} lost ROB occupancy", cell.benchmark);
        assert!(cell.ipc > 0.0 && cell.ipc.is_finite());
    }
}

#[test]
fn multicore_mix_is_identical_across_worker_counts() {
    let mk = |jobs: usize| {
        run_multicore_mix(
            "canneal-x4",
            &traces::parsec::per_core_sources("canneal", 500, 4),
            &[SelectionAlgorithm::Bandit6, SelectionAlgorithm::Alecto],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(4),
            jobs,
        )
    };
    assert_grids_identical(&mk(1), &mk(3));
}

#[test]
fn determinism_holds_below_and_above_the_multicore_derivation_floor() {
    // `--accesses N` derives the multi-core per-core budget as
    // max(N / 3, 100): N = 90 floors at 100 (below the floor), N = 900
    // derives 300 (above it). Both regimes — including the tiny budget where
    // some cores exhaust their trace almost immediately — must stay
    // byte-identical across worker counts.
    for accesses in [90usize, 900] {
        let multicore = (accesses / 3).max(100);
        let mk = |jobs: usize| {
            run_multicore_mix(
                &format!("streamcluster-x4@{accesses}"),
                &traces::parsec::per_core_sources("streamcluster", multicore, 4),
                &[SelectionAlgorithm::Ipcp, SelectionAlgorithm::Alecto],
                CompositeKind::GsCsPmp,
                &SystemConfig::skylake_like(4),
                jobs,
            )
        };
        assert_grids_identical(&mk(1), &mk(4));
    }
}

#[test]
fn batch_size_never_changes_a_grid() {
    // The batched producer/consumer pipeline is a pure wall-clock knob:
    // record batches concatenate to the identical per-core stream, so a
    // degenerate batch of 1, an awkward prime, and the default block-sized
    // batch must all reproduce the reference grid byte for byte.
    let reference = quick_suite(2);
    for batch_records in [1usize, 7, 4096] {
        let options = DriveOptions { batch_records, ..DriveOptions::new() };
        let grid = with_drive_options(options, || quick_suite(2));
        assert_grids_identical(&reference, &grid);
    }
}

#[test]
fn cell_internal_producer_threads_never_change_a_grid() {
    // Background record producers move *where* records are generated, never
    // the order the drive loop consumes them in — grids stay byte-identical
    // whether production is inline or threaded, at any worker count. This is
    // the contract that lets the engine lend spare `--jobs` threads to the
    // cells themselves.
    let reference = quick_suite(1);
    for (producer_threads, jobs) in [(1usize, 1usize), (4, 1), (2, 4)] {
        let options = DriveOptions { producer_threads, ..DriveOptions::new() };
        let grid = with_drive_options(options, || quick_suite(jobs));
        assert_grids_identical(&reference, &grid);
    }
    // Same for a multi-core mix, where several per-core queues are in
    // flight at once and batches interleave with the min-time merge.
    let mix = |producer_threads: usize, jobs: usize| {
        let options = DriveOptions { producer_threads, batch_records: 64 };
        with_drive_options(options, || {
            run_multicore_mix(
                "canneal-x4",
                &traces::parsec::per_core_sources("canneal", 500, 4),
                &[SelectionAlgorithm::Alecto],
                CompositeKind::GsCsPmp,
                &SystemConfig::skylake_like(4),
                jobs,
            )
        })
    };
    assert_grids_identical(&mix(0, 1), &mix(4, 2));
}

#[test]
fn streamed_suite_matches_a_materialised_rerun() {
    // The streaming engine must reproduce what eagerly collected workloads
    // produce: collect each source into a Workload, wrap it back into a
    // (records-backed) source, and compare full grids.
    let names = ["lbm", "mcf"];
    let streamed: Vec<alecto_repro::types::TraceSource> =
        names.iter().map(|n| traces::spec06::source(n, 600)).collect();
    let collected: Vec<alecto_repro::types::TraceSource> = streamed
        .iter()
        .map(|s| alecto_repro::types::TraceSource::from_workload(s.collect()))
        .collect();
    let algorithms = [SelectionAlgorithm::Ipcp, SelectionAlgorithm::Alecto];
    let config = SystemConfig::skylake_like(1);
    let a = run_single_core_suite(&streamed, &algorithms, CompositeKind::GsCsPmp, &config, 2);
    let b = run_single_core_suite(&collected, &algorithms, CompositeKind::GsCsPmp, &config, 2);
    assert_grids_identical(&a, &b);
}
