//! Golden `.altr` fixture: a committed trace file whose bytes — and whose
//! whole-file FNV-1a64 checksum, pinned as a constant here — must never
//! change unless the format version is deliberately bumped. Any codec edit
//! that alters the wire layout fails these tests loudly instead of silently
//! invalidating every previously recorded trace.
//!
//! See `tests/fixtures/README.md` for the regeneration/bump procedure.

use alecto_repro::types::{Addr, MemoryRecord, Pc};
use std::io::Cursor;
use traceio::{decode_document, format, TraceWriter};

const FIXTURE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.altr");

/// Whole-file FNV-1a64 of the committed fixture. Update ONLY on a
/// deliberate format bump, together with `traceio::FORMAT_VERSION` and the
/// fixture itself (see tests/fixtures/README.md).
const GOLDEN_FILE_FNV1A64: u64 = 0x22a1_488a_96b2_d5de;

/// The fixture's records: a fixed stream exercising the codec's edge cases
/// — forward/backward pc and addr deltas, address-space wrap-around, zero
/// and huge gaps, stores, dependent loads — across several 32-record
/// blocks. Hand-built, not generator-derived, so workload-model tuning can
/// never disturb the format pin.
fn golden_records() -> Vec<MemoryRecord> {
    let mut records = Vec::new();
    for i in 0u64..100 {
        let pc = Pc::new(0x400 + (i % 5) * 4);
        let record = match i % 7 {
            0 => MemoryRecord::load(pc, Addr::new(i * 64), (i % 40) as u32),
            1 => MemoryRecord::store(pc, Addr::new(0x1_0000_0000 - i * 4096), 0),
            2 => MemoryRecord::dependent_load(
                pc,
                Addr::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                2,
            ),
            3 => MemoryRecord::load(Pc::new(u64::MAX - i), Addr::new(u64::MAX - i * 64), u32::MAX),
            4 => MemoryRecord::store(pc, Addr::new(0), 1),
            5 => MemoryRecord::load(pc, Addr::new(0x7fff_ffff_ffff_ffff), 13),
            _ => MemoryRecord::dependent_load(pc, Addr::new(64 * (100 - i)), 7),
        };
        records.push(record);
    }
    records
}

/// Encodes the golden records exactly as the committed fixture was written:
/// name "golden", memory-intensive, seed 0x5eed, 32-record blocks.
fn golden_bytes() -> Vec<u8> {
    let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "golden", true, 0x5eed)
        .expect("header")
        .with_block_records(32);
    writer.write_all(golden_records()).expect("encode");
    writer.finish_into_inner().expect("finish").1.into_inner()
}

fn fixture_bytes() -> Vec<u8> {
    if std::env::var_os("REGENERATE_FIXTURES").is_some() {
        std::fs::write(FIXTURE_PATH, golden_bytes()).expect("regenerate fixture");
    }
    std::fs::read(FIXTURE_PATH).unwrap_or_else(|err| {
        panic!(
            "cannot read {FIXTURE_PATH}: {err}\n\
             (run REGENERATE_FIXTURES=1 cargo test --test golden_fixture to create it)"
        )
    })
}

#[test]
fn fixture_checksum_is_pinned() {
    let bytes = fixture_bytes();
    let fnv = format::fnv1a(format::FNV_OFFSET, &bytes);
    assert_eq!(
        fnv, GOLDEN_FILE_FNV1A64,
        "the committed golden.altr changed (file hashes to {fnv:#018x}); if this is a \
         deliberate format bump, follow tests/fixtures/README.md"
    );
}

#[test]
fn fixture_matches_the_current_encoder_byte_for_byte() {
    assert_eq!(
        fixture_bytes(),
        golden_bytes(),
        "the encoder no longer reproduces the committed fixture — the wire format changed; \
         bump traceio::FORMAT_VERSION and follow tests/fixtures/README.md"
    );
}

#[test]
fn fixture_decodes_to_the_golden_records() {
    let (header, records) = decode_document(&fixture_bytes()).expect("decode fixture");
    assert_eq!(header.name, "golden");
    assert!(header.memory_intensive);
    assert_eq!(header.seed, 0x5eed);
    assert_eq!(header.record_count, 100);
    assert_eq!(records, golden_records());
}
