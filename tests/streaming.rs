//! Streaming ↔ collected equivalence: the lazy `TraceSource` path must
//! reproduce the legacy eagerly-collected generation record for record, for
//! every benchmark registered in the `Suite` registry, at every access
//! budget and per-job seed. This is the contract that lets the experiment
//! engine stream 10-million-access traces in O(1) memory without changing a
//! single golden grid value.

use alecto_repro::types::TraceSource;
use proptest::prelude::*;
use traces::Suite;

/// Flattened registry: every (suite, benchmark) pair.
fn registry() -> Vec<(Suite, &'static str)> {
    Suite::ALL.iter().flat_map(|s| s.benchmarks().into_iter().map(move |b| (*s, b))).collect()
}

proptest! {
    // Streamed records equal the legacy collected records for a random
    // registered benchmark × access budget.
    #[test]
    fn streamed_equals_collected_for_every_registered_benchmark(
        bench_idx in 0usize..70,
        accesses in 0usize..600,
    ) {
        let reg = registry();
        let (suite, name) = reg[bench_idx % reg.len()];
        let collected = suite.workload(name, accesses);
        let streamed = suite.source(name, accesses);
        prop_assert_eq!(streamed.name(), name);
        prop_assert_eq!(streamed.memory_accesses(), accesses);
        let streamed = streamed.collect();
        prop_assert_eq!(&streamed, &collected);
    }

    // Per-job derived seeds stay position independent through the streaming
    // path: a blend variant seeded with `derive_seed(name, job)` replays
    // identically however many times and wherever it is instantiated.
    #[test]
    fn derived_seed_sources_replay_identically(
        job in 0u64..16,
        accesses in 1usize..400,
    ) {
        let blend = traces::Blend::builder("prop-job")
            .stream(0.4)
            .chase(0.3)
            .noise(0.3)
            .seed(traces::derive_seed("prop-job", job))
            .finish();
        let eager = blend.build(accesses);
        let source = blend.source(accesses);
        let a: Vec<_> = source.records().collect();
        let b: Vec<_> = source.records().collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a, eager.records);
    }

    // Record batches are a pure re-chunking of the per-record stream: for
    // any registered benchmark × seed-independent access budget × batch
    // size — degenerate 1, awkward prime 7, the block-sized default —
    // concatenating the batches reproduces the per-record stream exactly,
    // and every batch except the last is full.
    #[test]
    fn batched_streams_equal_per_record_streams_for_every_registered_benchmark(
        bench_idx in 0usize..70,
        accesses in 0usize..600,
        batch in prop_oneof![Just(1usize), Just(7), Just(4096)],
    ) {
        let reg = registry();
        let (suite, name) = reg[bench_idx % reg.len()];
        let source = suite.source(name, accesses);
        let per_record: Vec<_> = source.records().collect();
        let batches: Vec<Vec<_>> = source.record_batches(batch).collect();
        for (i, b) in batches.iter().enumerate() {
            prop_assert!(!b.is_empty(), "batch {i} of {name} is empty");
            if i + 1 < batches.len() {
                prop_assert!(b.len() == batch, "non-final batch {} of {} short", i, name);
            }
        }
        let flattened: Vec<_> = batches.into_iter().flatten().collect();
        prop_assert_eq!(flattened, per_record);
    }

    // Address-offset derivation (the multi-core slicing) commutes with
    // collection.
    #[test]
    fn offset_sources_commute_with_collection(
        core in 0usize..8,
        accesses in 1usize..300,
    ) {
        let offset = (core as u64) << 40;
        let base = traces::spec06::source("mcf", accesses);
        let shifted = traces::spec06::source("mcf", accesses).with_addr_offset(offset);
        for (s, b) in shifted.records().zip(base.records()) {
            prop_assert_eq!(s.addr.raw(), b.addr.raw() + offset);
            prop_assert_eq!(s.pc, b.pc);
            prop_assert_eq!(s.kind, b.kind);
        }
    }
}

/// The whole registry, exhaustively, at one representative budget — the
/// proptest above samples pairs; this pins every benchmark at least once.
#[test]
fn every_registered_benchmark_streams_exactly_its_collected_records() {
    for (suite, name) in registry() {
        let collected = suite.workload(name, 257); // odd budget: mid-batch cuts
        let streamed = suite.source(name, 257).collect();
        assert_eq!(streamed, collected, "suite {suite:?} benchmark {name}");
    }
}

/// Workload-backed sources (the legacy bridge) round-trip losslessly.
#[test]
fn workload_bridge_round_trips() {
    let w = traces::web::workload("kv-store", 123);
    let s = TraceSource::from_workload(w.clone());
    assert_eq!(s.collect(), w);
}
