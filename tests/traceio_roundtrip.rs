//! Record/replay round trips through real `.altr` files: every registered
//! benchmark survives the disk round trip record-for-record, and — the
//! acceptance bar for the trace subsystem — replaying a recorded trace
//! through the full hierarchy × selector grid emits report cells
//! byte-identical to running the same benchmark from its generated
//! `TraceSource`, at every worker count.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use alecto_repro::prelude::*;
use alecto_repro::types::TraceSource;
use harness::report::experiments_to_json;
use harness::RunScale;
use proptest::prelude::*;
use traces::Suite;

/// A collision-free scratch path that cleans up on drop.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self(
            std::env::temp_dir()
                .join(format!("alecto-roundtrip-{}-{tag}-{unique}.altr", std::process::id())),
        )
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn record(source: &TraceSource, tag: &str) -> (ScratchFile, TraceSource) {
    let scratch = ScratchFile::new(tag);
    let count = traceio::record_source(source, 0, &scratch.0).expect("record");
    assert_eq!(count as usize, source.memory_accesses());
    let replayed = traceio::file_source(&scratch.0, None).expect("open recorded trace");
    (scratch, replayed)
}

/// Flattened registry: every (suite, benchmark) pair.
fn registry() -> Vec<(Suite, &'static str)> {
    Suite::ALL.iter().flat_map(|s| s.benchmarks().into_iter().map(move |b| (*s, b))).collect()
}

proptest! {
    // Disk round trip ≡ generation for a random registered benchmark ×
    // access budget: same name, same intensity flag, same records.
    #[test]
    fn every_registered_benchmark_survives_the_disk_round_trip(
        bench_idx in 0usize..70,
        accesses in 1usize..400,
    ) {
        let reg = registry();
        let (suite, name) = reg[bench_idx % reg.len()];
        let source = suite.source(name, accesses);
        let (_scratch, replayed) = record(&source, "prop");
        prop_assert_eq!(replayed.name(), name);
        prop_assert_eq!(replayed.memory_accesses(), accesses);
        prop_assert_eq!(replayed.collect(), suite.workload(name, accesses));
    }
}

#[test]
fn every_registered_benchmark_round_trips_at_fixed_small_budgets() {
    // The proptest above samples; this sweep is exhaustive over the
    // registry at two budgets so a single broken generator cannot hide.
    for (suite, name) in registry() {
        for accesses in [1usize, 127] {
            let source = suite.source(name, accesses);
            let (_scratch, replayed) = record(&source, "sweep");
            assert_eq!(replayed.collect(), suite.workload(name, accesses), "{name}@{accesses}");
        }
    }
}

#[test]
fn replayed_grid_cells_are_byte_identical_across_sources_and_worker_counts() {
    // The acceptance criterion: record → replay produces the same
    // alecto-bench-v2 report — byte for byte — as the generated-source run,
    // and neither depends on the worker count.
    let accesses = 600;
    let generated = traces::spec06::source("mcf", accesses);
    let (_scratch, replayed) = record(&generated, "grid");

    let reports: Vec<String> = [(&generated, 1), (&generated, 4), (&replayed, 1), (&replayed, 3)]
        .into_iter()
        .map(|(source, jobs)| {
            let scale = RunScale::with_accesses(accesses, accesses).with_jobs(jobs);
            let experiment = harness::figures::replay(std::slice::from_ref(source), &scale);
            experiments_to_json(&[experiment])
        })
        .collect();
    for (i, report) in reports.iter().enumerate().skip(1) {
        assert_eq!(report, &reports[0], "report {i} diverged from the jobs=1 generated-source run");
    }
    // The report is not degenerate: it carries one cell per algorithm of
    // the main comparison, all with finite speedups.
    let parsed = harness::report::json::parse(&reports[0]).expect("well-formed report");
    let cells = parsed
        .get("experiments")
        .and_then(harness::report::json::JsonValue::as_array)
        .expect("experiments")[0]
        .get("cells")
        .and_then(harness::report::json::JsonValue::as_array)
        .expect("cells");
    assert_eq!(cells.len(), 5);
}

#[test]
fn file_scheme_sources_drop_into_multicore_runs() {
    // A recorded trace is a first-class TraceSource: per-core address
    // slicing and System::run_sources work on it unchanged.
    let generated = traces::parsec::source("canneal", 300);
    let (scratch, _) = record(&generated, "mc");
    let spec = format!("file:{}", scratch.0.display());
    let per_core: Vec<TraceSource> = (0..2)
        .map(|i| {
            Suite::of(&spec)
                .expect("file scheme resolves")
                .source(&spec, 300)
                .with_addr_offset((i as u64) << 40)
        })
        .collect();
    let mut system = cpu::System::new(
        SystemConfig::skylake_like(2),
        SelectionAlgorithm::Alecto,
        CompositeKind::GsCsPmp,
    );
    let report = system.run_sources(&per_core).expect("non-empty sources");
    assert_eq!(report.cores.len(), 2);
    assert!(report.cores.iter().all(|c| c.ipc > 0.0));

    // And the identical run from the generated source matches exactly.
    let gen_per_core: Vec<TraceSource> =
        (0..2).map(|i| generated.clone().with_addr_offset((i as u64) << 40)).collect();
    let mut system = cpu::System::new(
        SystemConfig::skylake_like(2),
        SelectionAlgorithm::Alecto,
        CompositeKind::GsCsPmp,
    );
    assert_eq!(system.run_sources(&gen_per_core).expect("non-empty sources"), report);
}

#[test]
fn parallel_decode_sources_are_indistinguishable_from_serial_ones() {
    // `source_parallel` decodes block frames on background workers but must
    // yield the identical record stream — capped or not — and the identical
    // content fingerprint, so the cell cache treats both decoders as the
    // same trace.
    let generated = traces::spec06::source("mcf", 700);
    let (scratch, serial) = record(&generated, "par");
    let reader = traceio::TraceReader::open(&scratch.0).expect("open recorded trace");
    for cap in [None, Some(123usize), Some(700)] {
        let serial_src = reader.source(cap);
        for workers in [0usize, 1, 4] {
            let parallel_src = reader.source_parallel(cap, workers);
            assert_eq!(parallel_src.fingerprint(), serial_src.fingerprint());
            assert_eq!(
                parallel_src.collect(),
                serial_src.collect(),
                "cap {cap:?} × workers {workers}"
            );
        }
    }
    assert_eq!(serial.collect(), generated.collect());
}

#[test]
fn champsim_import_round_trips_through_the_simulator() {
    // An external text trace imports to .altr and then drives the same
    // simulation as the equivalent in-memory workload.
    let text = "# synthetic champsim-style dump\n\
                0x400, 0x10000, L, 3\n\
                0x400, 0x10040, L, 3\n\
                0x404  0x20000  S  1\n\
                1028,131072,w,0,1\n";
    let scratch = ScratchFile::new("import");
    let count =
        traceio::import_text(std::io::Cursor::new(text.as_bytes()), "external", true, &scratch.0)
            .expect("import");
    assert_eq!(count, 4);
    let replayed = traceio::file_source(&scratch.0, None).expect("open");
    let workload = replayed.collect();
    assert_eq!(workload.name, "external");
    assert_eq!(workload.records.len(), 4);
    assert_eq!(workload.records[0].pc.raw(), 0x400);
    assert_eq!(workload.records[2].addr.raw(), 0x20000);
    assert!(workload.records[3].dependent);
    let report = cpu::run_single_core(
        SystemConfig::skylake_like(1),
        SelectionAlgorithm::Alecto,
        CompositeKind::GsCsPmp,
        &workload,
    );
    assert!(report.cores[0].instructions > 0);
}
