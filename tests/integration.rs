//! Cross-crate integration tests: exercise the full public API the way the
//! examples and the harness do — traces → system → selection → reports.

use alecto_repro::prelude::*;
use alecto_repro::types::Workload;

fn run(algorithm: SelectionAlgorithm, workload: &Workload) -> cpu::SystemReport {
    cpu::run_single_core(SystemConfig::skylake_like(1), algorithm, CompositeKind::GsCsPmp, workload)
}

#[test]
fn every_selection_algorithm_completes_a_spec_workload() {
    let workload = traces::spec06::workload("GemsFDTD", 3_000);
    for algorithm in [
        SelectionAlgorithm::NoPrefetching,
        SelectionAlgorithm::Ipcp,
        SelectionAlgorithm::Dol,
        SelectionAlgorithm::Bandit3,
        SelectionAlgorithm::Bandit6,
        SelectionAlgorithm::BanditExtended,
        SelectionAlgorithm::Alecto,
        SelectionAlgorithm::AlectoFixedDegree(6),
        SelectionAlgorithm::PpfAggressive,
        SelectionAlgorithm::PpfConservative,
        SelectionAlgorithm::Triangel,
    ] {
        let report = run(algorithm, &workload);
        let core = &report.cores[0];
        assert!(core.ipc > 0.0 && core.ipc <= 4.0, "{algorithm:?}: IPC {} out of range", core.ipc);
        assert_eq!(core.instructions, workload.instructions(), "{algorithm:?}");
    }
}

#[test]
fn prefetching_helps_a_prefetch_friendly_benchmark() {
    let workload = traces::spec06::workload("leslie3d", 8_000);
    let base = run(SelectionAlgorithm::NoPrefetching, &workload).cores[0].ipc;
    let alecto = run(SelectionAlgorithm::Alecto, &workload).cores[0].ipc;
    assert!(
        alecto > base * 1.05,
        "Alecto should speed up a streaming benchmark (got {alecto:.3} vs baseline {base:.3})"
    );
}

#[test]
fn prefetching_is_harmless_on_a_compute_bound_benchmark() {
    let workload = traces::spec06::workload("povray", 6_000);
    let base = run(SelectionAlgorithm::NoPrefetching, &workload).cores[0].ipc;
    for algorithm in SelectionAlgorithm::main_comparison() {
        let ipc = run(algorithm, &workload).cores[0].ipc;
        assert!(
            ipc > base * 0.93,
            "{algorithm:?} must not slow down a cache-resident benchmark ({ipc:.3} vs {base:.3})"
        );
    }
}

#[test]
fn alecto_reduces_prefetcher_table_pressure_versus_ipcp() {
    // The Fig. 1 / Fig. 18 claim at integration level: with dynamic demand
    // request allocation the same composite prefetcher is trained far less.
    let mut ipcp_trainings = 0u64;
    let mut alecto_trainings = 0u64;
    for name in ["GemsFDTD", "mcf", "omnetpp", "soplex"] {
        let workload = traces::spec06::workload(name, 5_000);
        ipcp_trainings += run(SelectionAlgorithm::Ipcp, &workload).cores[0].training_occurrences;
        alecto_trainings +=
            run(SelectionAlgorithm::Alecto, &workload).cores[0].training_occurrences;
    }
    assert!(
        (alecto_trainings as f64) < 0.8 * ipcp_trainings as f64,
        "Alecto should train the composite much less (alecto {alecto_trainings}, ipcp {ipcp_trainings})"
    );
}

#[test]
fn alecto_storage_matches_table3_and_beats_extended_bandit() {
    let alecto = cpu::build_selector(SelectionAlgorithm::Alecto, 3).unwrap();
    assert_eq!(alecto.storage_bits(), 5312 + 1792 * 3);
    let extended = cpu::build_selector(SelectionAlgorithm::BanditExtended, 3).unwrap();
    assert_eq!(extended.storage_bits(), 4 * 1024 * 8);
    assert!(extended.storage_bits() > 3 * alecto.storage_bits() / 2);
}

#[test]
fn eight_core_simulation_produces_consistent_reports() {
    let per_core = traces::parsec::per_core_workloads("streamcluster", 1_200, 8);
    let mut system = cpu::System::new(
        SystemConfig::skylake_like(8),
        SelectionAlgorithm::Alecto,
        CompositeKind::GsCsPmp,
    );
    let report = system.run(&per_core);
    assert_eq!(report.cores.len(), 8);
    assert!(report.geomean_ipc().unwrap() > 0.0);
    assert!(report.dram.accesses > 0);
    // Every core retired its whole trace.
    for (core, workload) in report.cores.iter().zip(&per_core) {
        assert_eq!(core.instructions, workload.instructions());
    }
}

#[test]
fn harness_quick_experiments_render() {
    let scale = harness::RunScale::with_accesses(400, 200);
    let fig19 = harness::figures::fig19(&scale);
    assert!(fig19.render().contains("Alecto"));
    let table3 = harness::figures::table3();
    assert_eq!(table3.table.cell("3", "Total (bytes)"), Some("1336"));
}

#[test]
fn alternate_composite_works_end_to_end() {
    let workload = traces::spec17::workload("roms_17", 4_000);
    let report = cpu::run_single_core(
        SystemConfig::skylake_like(1),
        SelectionAlgorithm::Alecto,
        CompositeKind::GsBertiCplx,
        &workload,
    );
    assert_eq!(report.composite, "GS+Berti+CPLX");
    assert_eq!(report.cores[0].prefetchers.len(), 3);
    assert!(report.cores[0].prefetches_issued > 0);
}

#[test]
fn temporal_composite_trains_the_temporal_prefetcher() {
    let workload = traces::spec06::workload("mcf", 6_000);
    let report = cpu::run_single_core(
        SystemConfig::skylake_like(1),
        SelectionAlgorithm::Triangel,
        CompositeKind::GsCsPmpTemporal { metadata_bytes: 256 * 1024 },
        &workload,
    );
    let tp = report.cores[0].prefetchers.iter().find(|p| p.name == "TP").expect("TP present");
    assert!(tp.stats.trainings > 0, "the temporal prefetcher must receive training");
}
