//! End-to-end pins for the adversarial scenario fuzzer: jobs-independent
//! findings, the planted pathology on the committed weak machine, repro
//! persistence + byte-identical replay, and graduation of persisted `.altr`
//! repros into the `stress` experiment.

use std::path::PathBuf;

use fuzz::{FuzzConfig, OracleKind, OraclePanel};
use harness::figures;

fn weak_machine() -> machine::MachineSpec {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fuzz-weak.machine.toml");
    let text = std::fs::read_to_string(&path).expect("read the committed weak machine");
    machine::parse(&text).expect("the committed weak machine parses")
}

/// The pinned fuzz configuration the CI `fuzz-smoke` job runs too: seed 42,
/// 8 scenarios of 2000 accesses, pathology oracle at a 2% threshold against
/// the committed weak machine.
fn pinned_config() -> FuzzConfig {
    let mut config = FuzzConfig::new(42, weak_machine());
    config.budget = 8;
    config.accesses = 2_000;
    config.panel = OraclePanel::only(OracleKind::Pathology, 2.0);
    config
}

#[test]
fn seed_42_findings_are_identical_at_jobs_1_and_4() {
    let mut config = pinned_config();
    config.jobs = 1;
    let serial = fuzz::run_fuzz(&config).expect("in-memory run");
    config.jobs = 4;
    let parallel = fuzz::run_fuzz(&config).expect("in-memory run");
    assert_eq!(serial, parallel, "findings must not depend on the worker count");
    // The planted pathology: the weak machine's selector epoch never
    // elapses, so adversarial blends beat the frozen selector. Seed 42 is
    // pinned to find at least one.
    assert!(
        !serial.findings.is_empty(),
        "seed 42 must plant a pathology on fuzz-weak; did the oracle or generator change?"
    );
    for finding in &serial.findings {
        assert_eq!(finding.oracle, OracleKind::Pathology);
        assert!(finding.accesses >= fuzz::MIN_ACCESSES);
    }
    // The deterministic text render is identical too (no repro paths in
    // play), so CLI output at --jobs 1 and --jobs 4 is byte-identical.
    assert_eq!(
        serial.render("fuzz-weak", &config.panel),
        parallel.render("fuzz-weak", &config.panel)
    );
}

#[test]
fn findings_persist_replay_and_graduate_into_stress() {
    let dir = std::env::temp_dir().join(format!("alecto-fuzz-root-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut config = pinned_config();
    config.out_dir = Some(dir.clone());
    let outcome = fuzz::run_fuzz(&config).expect("persisting repros");
    assert!(!outcome.findings.is_empty());

    // Every persisted manifest replays byte-identically: the oracle re-fires
    // and the subject-report digest matches.
    for finding in &outcome.findings {
        let repro = finding.repro.as_ref().expect("out_dir was set");
        let replay = fuzz::replay(&repro.manifest).expect("replay the manifest");
        assert!(replay.reproduced(), "replay of {} failed: {replay:?}", finding.name);
        assert_eq!(replay.manifest.report_digest, finding.report_digest);
        // The recorded trace is a valid `.altr` down to the block framing.
        traceio::TraceReader::open(&repro.trace)
            .and_then(|reader| reader.verify_blocks())
            .expect("repro trace verifies");
    }

    // Graduation: with ALECTO_STRESS_CORPUS pointing at the repro directory,
    // the stress suite appends one file:-backed benchmark per trace. (This
    // test owns the env var; nothing else in this binary touches it.)
    let scale = harness::RunScale {
        accesses: 400,
        multicore_accesses: 150,
        jobs: 2,
        ..harness::RunScale::default()
    };
    std::env::set_var(figures::STRESS_CORPUS_ENV, &dir);
    let experiment = figures::stress(&scale);
    std::env::remove_var(figures::STRESS_CORPUS_ENV);
    let rendered = experiment.render();
    for finding in &outcome.findings {
        assert!(
            rendered.contains(&finding.name),
            "stress output misses graduated repro {}:\n{rendered}",
            finding.name
        );
    }
    assert!(
        experiment.notes.iter().any(|note| note.contains("graduated repro")),
        "stress must note the corpus: {:?}",
        experiment.notes
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
