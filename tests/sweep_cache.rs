//! Root-level integration test for the memoizing sweep pipeline: a cached
//! sweep must render byte-identical reports to a cold run regardless of the
//! worker count, and a corrupted on-disk cache entry must be detected by its
//! checksum and transparently recomputed — never served.

use alecto_repro::harness::report::experiments_to_json;
use alecto_repro::harness::{figures, with_cell_executor, CellCache, RunScale};
use alecto_repro::traces;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn render(jobs: usize, cache: Option<Arc<CellCache>>) -> String {
    let source = traces::Suite::of("lbm").expect("lbm registered").source("lbm", 400);
    let scale = RunScale::resolve(false, Some(400), None, Some(jobs));
    let build = || experiments_to_json(&[figures::replay(std::slice::from_ref(&source), &scale)]);
    match cache {
        Some(cache) => with_cell_executor(cache, build),
        None => build(),
    }
}

fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alecto-sweep-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cell"))
        .collect();
    files.sort();
    files
}

#[test]
fn cached_sweep_is_byte_identical_to_cold_at_any_worker_count() {
    let dir = cache_dir("jobs");
    let cold = render(1, None);

    // Cold pass through the cache at a different worker count: every cell is
    // a miss, yet the rendered report is identical to the plain run.
    let cache = Arc::new(CellCache::with_dir(64, &dir).expect("create cache dir"));
    let filled = render(2, Some(Arc::clone(&cache)));
    assert_eq!(filled, cold, "memoizing executor must not perturb the report");
    let after_fill = cache.counters();
    assert!(after_fill.misses >= 2, "cold pass populates the cache: {after_fill:?}");
    assert_eq!(after_fill.hits(), 0);

    // Warm pass at yet another worker count: all hits, same bytes.
    let warm = render(4, Some(Arc::clone(&cache)));
    assert_eq!(warm, cold, "cached cells must replay byte-identically");
    let after_warm = cache.counters();
    assert_eq!(after_warm.misses, after_fill.misses, "warm pass simulates nothing");
    assert_eq!(after_warm.hits(), after_fill.misses, "every cell served from cache");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entries_are_recomputed_not_served() {
    let dir = cache_dir("corrupt");
    let cold = render(1, None);

    let cache = Arc::new(CellCache::with_dir(64, &dir).expect("create cache dir"));
    assert_eq!(render(2, Some(Arc::clone(&cache))), cold);
    drop(cache);

    // Flip one byte inside every persisted entry's JSON body. The header
    // checksum no longer matches, so a fresh cache (empty memory tier) must
    // reject the entries instead of deserializing garbage.
    let files = entry_files(&dir);
    assert!(files.len() >= 2, "expected persisted cells in {dir:?}");
    for file in &files {
        let mut bytes = std::fs::read(file).expect("read cache entry");
        let newline = bytes.iter().position(|&b| b == b'\n').expect("header line") + 1;
        let target = newline + (bytes.len() - newline) / 2;
        bytes[target] ^= 0x20;
        std::fs::write(file, bytes).expect("rewrite corrupted entry");
    }

    let reopened = Arc::new(CellCache::with_dir(64, &dir).expect("reopen cache dir"));
    let healed = render(2, Some(Arc::clone(&reopened)));
    assert_eq!(healed, cold, "corruption must trigger recompute, not bad data");
    let counters = reopened.counters();
    assert_eq!(counters.corrupt_entries as usize, files.len(), "{counters:?}");
    assert_eq!(counters.hits(), 0, "no corrupted entry may count as a hit");
    assert_eq!(counters.misses as usize, files.len(), "every cell was recomputed");

    // The recompute also healed the disk tier: another fresh instance now
    // serves everything from disk.
    let healed_cache = Arc::new(CellCache::with_dir(64, &dir).expect("reopen healed dir"));
    assert_eq!(render(1, Some(Arc::clone(&healed_cache))), cold);
    let counters = healed_cache.counters();
    assert_eq!(counters.misses, 0, "healed entries serve from disk: {counters:?}");
    assert!(counters.disk_hits >= 2);

    let _ = std::fs::remove_dir_all(&dir);
}
