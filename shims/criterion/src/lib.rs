//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim provides the subset of the criterion API the bench targets use:
//! [`Criterion`], [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a timed loop printing mean
//! nanoseconds per iteration — because the CI contract for the bench targets
//! is `cargo bench --no-run` (they must keep *compiling*); statistical rigour
//! can be restored by swapping this shim back for the real crate when a
//! registry is available.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (a no-op in this shim; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { samples: sample_size, total: Duration::ZERO, iterations: 0 };
    f(&mut bencher);
    let per_iter = if bencher.iterations == 0 {
        0.0
    } else {
        bencher.total.as_nanos() as f64 / bencher.iterations as f64
    };
    println!("bench: {name:<50} {per_iter:>14.1} ns/iter ({} iters)", bencher.iterations);
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Calls `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call, then `samples` timed calls.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iterations += self.samples as u64;
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
