//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim provides the (deliberately tiny) subset of the rand 0.8 API the code
//! base uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range` and `gen_bool`. The generator is a
//! deterministic xorshift-multiply PRNG (splitmix64-based), which is exactly
//! what the workspace needs: reproducible synthetic traces and a seeded
//! epsilon-greedy bandit, not cryptographic randomness.

#![warn(missing_docs)]

/// Low-level source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose output is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a generator's standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform value can be drawn from, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )+};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start() + f64::sample(rng) * (self.end() - self.start())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // 64-bit word of state, and trivially seedable — ample for
            // synthetic trace generation.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn f64_is_a_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let p = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
