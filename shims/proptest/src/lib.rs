//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim provides the subset of the proptest API the property tests use:
//! the [`proptest!`] test macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`,
//! [`strategy::Just`], [`arbitrary::any`], [`collection::vec`] and
//! [`option::of`], with integer/float ranges and tuples of strategies
//! usable as strategies.
//!
//! Differences from real proptest, by design: inputs are sampled from a
//! deterministic per-test PRNG (no failure persistence file) and failing
//! cases are reported without shrinking. Each property runs a fixed number
//! of cases (currently 64).

#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case generation and failure reporting.

    use std::fmt;

    /// Number of random cases each `proptest!` property executes.
    pub const DEFAULT_CASES: u32 = 64;

    /// A failed property-test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64 generator used to sample strategy values.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for case number `case` of the test named
        /// `name`. Seeding from (name, case) keeps every run of the suite
        /// identical while decorrelating tests from each other.
        pub fn deterministic(name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed ^ (u64::from(case) << 32) }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())) % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating test-case values, mirroring
    /// `proptest::strategy::Strategy` (without shrinking).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between several strategies of the same value type;
    /// produced by the [`prop_oneof!`](crate::prop_oneof) macro.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! requires at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u128) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
    );

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )+};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type, mirroring `proptest::arbitrary`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),+) => {$(
            impl Arbitrary for $ty {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1);
            let len = self.size.start + rng.below(span as u128) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy: `len` in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

pub mod option {
    //! `Option` strategies, mirroring `proptest::option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, `None` one case in four.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// Lifts `inner` into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each property runs [`test_runner::DEFAULT_CASES`] deterministic cases; a
/// failing case panics with the case number (no shrinking in this shim).
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                for case in 0..$crate::test_runner::DEFAULT_CASES {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )+
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = result {
                        panic!("proptest case {case} failed: {err}");
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($( $option:expr ),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $( options.push(::std::boxed::Box::new($option)); )+
        $crate::strategy::Union::new(options)
    }};
}
