//! Quickstart: simulate one benchmark under the five prefetcher-selection
//! algorithms of the paper and print their speedups over no prefetching.
//!
//! The benchmark may come from any registered suite — the paper's four
//! (SPEC06/SPEC17/PARSEC/Ligra) or the production scenario families
//! (`linked-list`, `gc-mark`, … / `web-cache`, `kv-store`, … /
//! `seq-scan`, `hash-join`, …):
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [accesses]
//! cargo run --release --example quickstart web-cache 50000
//! cargo run --release --example quickstart hash-join
//! ```

use alecto_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benchmark = args.first().map_or("GemsFDTD", String::as_str);
    let accesses: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(20_000);

    // Resolve the benchmark through the suite registry.
    let suite = traces::Suite::of(benchmark).unwrap_or_else(|| {
        eprintln!("unknown benchmark {benchmark:?}; registered benchmarks:");
        for suite in traces::Suite::ALL {
            eprintln!("  {:13} {}", suite.name(), suite.benchmarks().join(" "));
        }
        std::process::exit(2);
    });
    println!("benchmark: {benchmark} (suite {}, {accesses} memory accesses)", suite.name());
    let workload = suite.workload(benchmark, accesses);

    // Baseline: prefetching disabled.
    let baseline = cpu::run_single_core(
        SystemConfig::skylake_like(1),
        SelectionAlgorithm::NoPrefetching,
        CompositeKind::GsCsPmp,
        &workload,
    );
    let base_ipc = baseline.cores[0].ipc;
    println!("no prefetching: IPC {base_ipc:.3}");

    for algorithm in SelectionAlgorithm::main_comparison() {
        let report = cpu::run_single_core(
            SystemConfig::skylake_like(1),
            algorithm,
            CompositeKind::GsCsPmp,
            &workload,
        );
        let core = &report.cores[0];
        println!(
            "{:8}  IPC {:.3}  speedup {:.3}  accuracy {:.2}  coverage {:.2}  table misses {}",
            algorithm.label(),
            core.ipc,
            core.ipc / base_ipc,
            core.quality.accuracy(),
            core.quality.coverage(),
            core.table_misses,
        );
    }
}
