//! Quickstart: simulate one benchmark under the five prefetcher-selection
//! algorithms of the paper and print their speedups over no prefetching.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [accesses]
//! ```

use alecto_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benchmark = args.first().map_or("GemsFDTD", String::as_str);
    let accesses: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(20_000);

    println!("benchmark: {benchmark} ({accesses} memory accesses)");
    let workload = traces::spec06::workload(benchmark, accesses);

    // Baseline: prefetching disabled.
    let baseline = cpu::run_single_core(
        SystemConfig::skylake_like(1),
        SelectionAlgorithm::NoPrefetching,
        CompositeKind::GsCsPmp,
        &workload,
    );
    let base_ipc = baseline.cores[0].ipc;
    println!("no prefetching: IPC {base_ipc:.3}");

    for algorithm in SelectionAlgorithm::main_comparison() {
        let report = cpu::run_single_core(
            SystemConfig::skylake_like(1),
            algorithm,
            CompositeKind::GsCsPmp,
            &workload,
        );
        let core = &report.cores[0];
        println!(
            "{:8}  IPC {:.3}  speedup {:.3}  accuracy {:.2}  coverage {:.2}  table misses {}",
            algorithm.label(),
            core.ipc,
            core.ipc / base_ipc,
            core.quality.accuracy(),
            core.quality.coverage(),
            core.table_misses,
        );
    }
}
