//! Eight-core contention study (Figs. 16/17): run a memory-intensive mix on
//! an eight-core system under two DRAM generations and compare how the
//! selection algorithms behave when bandwidth is scarce versus plentiful.

use alecto_repro::prelude::*;
use alecto_repro::types::Workload;
use memsys::DramKind;

fn mix(accesses: usize) -> Vec<Workload> {
    traces::spec06::memory_intensive()
        .iter()
        .take(8)
        .enumerate()
        .map(|(core, name)| {
            let mut w = traces::spec06::workload(name, accesses);
            // Give each core a private address-space slice (SPEC-rate style).
            for r in &mut w.records {
                r.addr = alecto_repro::types::Addr::new(r.addr.raw() + ((core as u64) << 40));
            }
            w
        })
        .collect()
}

fn main() {
    let accesses: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let workloads = mix(accesses);
    println!("8-core heterogeneous SPEC06-like mix, {accesses} accesses per core\n");

    for (label, kind) in [("DDR3-1600", DramKind::Ddr3_1600), ("DDR4-2400", DramKind::Ddr4_2400)] {
        println!("--- {label} ---");
        let config = SystemConfig::with_dram(8, kind);
        let mut baseline = cpu::System::new(
            config.clone(),
            SelectionAlgorithm::NoPrefetching,
            CompositeKind::GsCsPmp,
        );
        let base = baseline.run(&workloads);
        let base_ipc = base.geomean_ipc().unwrap_or(1e-9);
        println!("{:12} geomean IPC {:.3}", "NoPrefetch", base_ipc);
        for algorithm in SelectionAlgorithm::main_comparison() {
            let mut system = cpu::System::new(config.clone(), algorithm, CompositeKind::GsCsPmp);
            let report = system.run(&workloads);
            let ipc = report.geomean_ipc().unwrap_or(0.0);
            println!(
                "{:12} geomean IPC {:.3}  speedup {:.3}  DRAM row-hit rate {:.2}",
                algorithm.label(),
                ipc,
                ipc / base_ipc,
                report.dram.row_hits as f64 / report.dram.accesses.max(1) as f64,
            );
        }
        println!();
    }
}
