//! The motivating example of the paper's Fig. 2: `459.GemsFDTD` interleaves a
//! spatial-pattern PC with a streaming PC. A selection scheme that applies
//! one rule to all PCs routes both to the wrong prefetcher part of the time;
//! Alecto identifies the right prefetcher per PC and withholds the demand
//! requests from the others.
//!
//! This example inspects Alecto's Allocation Table states directly: it runs
//! the GemsFDTD-like trace through an [`alecto::AlectoSelector`] driving the
//! composite prefetcher and prints, for the busiest PCs, which prefetchers
//! ended up Aggressive (IA) and which were Blocked (IB).

use alecto::AlectoSelector;
use alecto_repro::prelude::*;
use prefetch::build_composite;
use selectors::Selector;

fn main() {
    let workload = traces::spec06::workload("GemsFDTD", 30_000);
    let mut prefetchers = build_composite(CompositeKind::GsCsPmp);
    let names: Vec<&str> = prefetchers.iter().map(|p| p.name()).collect();
    let mut alecto = AlectoSelector::default_config(prefetchers.len());

    // Drive the selector + prefetchers directly (no timing model needed to
    // observe the allocation decisions).
    let mut scratch = Vec::new();
    for record in &workload.records {
        let access = record.demand();
        let decision = alecto.allocate(&access, &prefetchers);
        let mut candidates = Vec::new();
        for (idx, allocation) in decision.per_prefetcher.iter().enumerate() {
            let Some(alloc) = allocation else { continue };
            scratch.clear();
            prefetchers[idx].train_and_predict(&access, alloc.total, &mut scratch);
            for &line in &scratch {
                candidates.push(alecto_repro::types::PrefetchRequest::new(
                    line,
                    access.pc,
                    alecto_repro::types::PrefetcherId(idx),
                ));
            }
        }
        let _ = alecto.select_requests(&access, candidates);
    }

    // Count accesses per PC so we report the dominant instructions.
    let mut per_pc: Vec<(u64, usize)> = Vec::new();
    for r in &workload.records {
        match per_pc.iter_mut().find(|(pc, _)| *pc == r.pc.raw()) {
            Some((_, n)) => *n += 1,
            None => per_pc.push((r.pc.raw(), 1)),
        }
    }
    per_pc.sort_by_key(|(_, n)| std::cmp::Reverse(*n));

    println!("Alecto per-PC prefetcher identification on GemsFDTD-like trace");
    println!("(composite: {})\n", names.join(" + "));
    for (pc, n) in per_pc.iter().take(5) {
        let states = alecto.states_of(alecto_repro::types::Pc::new(*pc));
        print!("pc {pc:#8x} ({n:5} accesses): ");
        match states {
            Some(states) => {
                let described: Vec<String> =
                    states.iter().zip(&names).map(|(s, name)| format!("{name}={s:?}")).collect();
                println!("{}", described.join("  "));
            }
            None => println!("(evicted from the Allocation Table)"),
        }
    }
    let stats = alecto.stats();
    println!(
        "\n{} demand requests, {} withheld from at least one prefetcher, {} epoch transitions",
        stats.demands, stats.allocations_withheld, stats.epoch_transitions
    );
}
