//! The temporal-prefetching study of §VI-D / Fig. 14: how much metadata does a
//! temporal prefetcher need when its training stream is managed by Bandit
//! (no demand-request filtering) versus Alecto (dynamic demand request
//! allocation)?
//!
//! The example runs a pointer-chasing benchmark with an added temporal
//! prefetcher at several metadata budgets and prints the speedup each policy
//! obtains over the plain L1 composite.

use alecto_repro::prelude::*;

fn run(
    algorithm: SelectionAlgorithm,
    composite: CompositeKind,
    workload: &alecto_repro::types::Workload,
) -> f64 {
    cpu::run_single_core(SystemConfig::skylake_like(1), algorithm, composite, workload).cores[0].ipc
}

fn main() {
    let accesses: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let workload = traces::spec06::workload("mcf", accesses);
    println!("workload: mcf-like pointer chase, {accesses} accesses\n");

    // Reference: each policy scheduling only the L1 composite.
    let bandit_base = run(SelectionAlgorithm::Bandit6, CompositeKind::GsCsPmp, &workload);
    let alecto_base = run(SelectionAlgorithm::Alecto, CompositeKind::GsCsPmp, &workload);

    println!("{:>12}  {:>18}  {:>18}", "metadata", "Bandit6 speedup", "Alecto speedup");
    for kb in [128u64, 256, 512, 1024] {
        let composite = CompositeKind::GsCsPmpTemporal { metadata_bytes: kb * 1024 };
        let bandit = run(SelectionAlgorithm::Bandit6, composite, &workload) / bandit_base;
        let alecto = run(SelectionAlgorithm::Alecto, composite, &workload) / alecto_base;
        println!("{:>10}KB  {:>18.3}  {:>18.3}", kb, bandit, alecto);
    }
    println!(
        "\nThe paper's Fig. 14 finding: with DDRA the temporal prefetcher reaches its\n\
         full benefit with a fraction of the metadata, because non-temporal PCs never\n\
         pollute the correlation table."
    );
}
