//! The `CoreTiming` trait — the contract every per-core timing model
//! honours — and the enum dispatching between the two implementations.
//!
//! The drive loop in `system.rs` is model-agnostic: it needs to advance a
//! core over one record, ask for its current time (for the multi-core
//! min-time merge), and extract a report at the end. Dispatch is an enum
//! rather than `Box<dyn CoreTiming>` so `System` stays `Send` by
//! construction (the const assertions in `system.rs`) and the per-record
//! call is a branch, not a vtable load, on the simulation's hottest path.

use alecto_types::MemoryRecord;
use memsys::Hierarchy;

use crate::config::{CoreModelKind, SystemConfig};
use crate::controller::PrefetchController;
use crate::core_model::CoreModel;
use crate::metrics::CoreReport;
use crate::ooo::OooCore;

/// Per-core timing model contract.
///
/// Implementations must be deterministic: equal record streams against equal
/// hierarchy state produce equal state, reports and `current_time`
/// trajectories, at any batch size or producer-thread count. `current_time`
/// must be monotone non-decreasing across `step` calls — the multi-core
/// drive loop orders cores by it.
pub trait CoreTiming {
    /// Advances the core over one trace record, performing the demand access
    /// and any resulting prefetches against `hierarchy`.
    fn step(&mut self, record: &MemoryRecord, hierarchy: &mut Hierarchy);

    /// The core's current simulated time in cycles.
    fn current_time(&self) -> f64;

    /// Instructions accounted so far.
    fn instructions(&self) -> u64;

    /// Borrow of the attached prefetch controller.
    fn controller(&self) -> &PrefetchController;

    /// Produces the per-core report after the trace has been consumed.
    fn report(&self, workload_name: &str, hierarchy: &Hierarchy) -> CoreReport;
}

impl CoreTiming for CoreModel {
    fn step(&mut self, record: &MemoryRecord, hierarchy: &mut Hierarchy) {
        Self::step(self, record, hierarchy);
    }

    fn current_time(&self) -> f64 {
        Self::current_time(self)
    }

    fn instructions(&self) -> u64 {
        Self::instructions(self)
    }

    fn controller(&self) -> &PrefetchController {
        Self::controller(self)
    }

    fn report(&self, workload_name: &str, hierarchy: &Hierarchy) -> CoreReport {
        Self::report(self, workload_name, hierarchy)
    }
}

impl CoreTiming for OooCore {
    fn step(&mut self, record: &MemoryRecord, hierarchy: &mut Hierarchy) {
        Self::step(self, record, hierarchy);
    }

    fn current_time(&self) -> f64 {
        Self::current_time(self)
    }

    fn instructions(&self) -> u64 {
        Self::instructions(self)
    }

    fn controller(&self) -> &PrefetchController {
        Self::controller(self)
    }

    fn report(&self, workload_name: &str, hierarchy: &Hierarchy) -> CoreReport {
        Self::report(self, workload_name, hierarchy)
    }
}

/// A core of either timing model, selected by
/// [`SystemConfig::core_model`](crate::SystemConfig).
#[derive(Debug)]
pub enum CoreEngine {
    /// The analytic frontier model (fast; the sweep default).
    Approx(CoreModel),
    /// The staged out-of-order pipeline.
    OutOfOrder(OooCore),
}

impl CoreEngine {
    /// Creates a core of the kind `config.core_model` selects.
    #[must_use]
    pub fn new(core_id: usize, config: &SystemConfig, controller: PrefetchController) -> Self {
        match config.core_model {
            CoreModelKind::Approx => Self::Approx(CoreModel::new(core_id, config, controller)),
            CoreModelKind::OutOfOrder => {
                Self::OutOfOrder(OooCore::new(core_id, config, controller))
            }
        }
    }
}

impl CoreTiming for CoreEngine {
    fn step(&mut self, record: &MemoryRecord, hierarchy: &mut Hierarchy) {
        match self {
            Self::Approx(core) => core.step(record, hierarchy),
            Self::OutOfOrder(core) => core.step(record, hierarchy),
        }
    }

    fn current_time(&self) -> f64 {
        match self {
            Self::Approx(core) => core.current_time(),
            Self::OutOfOrder(core) => core.current_time(),
        }
    }

    fn instructions(&self) -> u64 {
        match self {
            Self::Approx(core) => core.instructions(),
            Self::OutOfOrder(core) => core.instructions(),
        }
    }

    fn controller(&self) -> &PrefetchController {
        match self {
            Self::Approx(core) => core.controller(),
            Self::OutOfOrder(core) => core.controller(),
        }
    }

    fn report(&self, workload_name: &str, hierarchy: &Hierarchy) -> CoreReport {
        match self {
            Self::Approx(core) => core.report(workload_name, hierarchy),
            Self::OutOfOrder(core) => core.report(workload_name, hierarchy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SelectionAlgorithm;
    use alecto_types::{Addr, Pc};
    use memsys::HierarchyParams;
    use prefetch::CompositeKind;

    fn engine_of(kind: CoreModelKind) -> CoreEngine {
        let config = SystemConfig::skylake_like(1).with_core_model(kind);
        let controller =
            PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::NoPrefetching);
        CoreEngine::new(0, &config, controller)
    }

    #[test]
    fn engine_dispatches_on_the_config_knob() {
        assert!(matches!(engine_of(CoreModelKind::Approx), CoreEngine::Approx(_)));
        assert!(matches!(engine_of(CoreModelKind::OutOfOrder), CoreEngine::OutOfOrder(_)));
    }

    #[test]
    fn both_engines_honour_the_trait_contract() {
        for kind in [CoreModelKind::Approx, CoreModelKind::OutOfOrder] {
            let mut engine = engine_of(kind);
            let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
            let mut last_time = 0.0f64;
            for i in 0..500u64 {
                let r = MemoryRecord::load(Pc::new(0x40), Addr::new(0x8000 + i * 64), 3);
                engine.step(&r, &mut hier);
                let now = engine.current_time();
                assert!(now >= last_time, "{kind:?}: time went backwards");
                last_time = now;
            }
            assert_eq!(engine.instructions(), 500 * 4);
            let report = engine.report("w", &hier);
            assert!(report.cycles >= 1);
            assert!(report.ipc > 0.0 && report.ipc.is_finite());
            // The nullable pipeline metrics are the models' signature.
            assert_eq!(report.branch_mpki.is_some(), kind == CoreModelKind::OutOfOrder);
            assert_eq!(report.rob_occupancy.is_some(), kind == CoreModelKind::OutOfOrder);
        }
    }
}
