//! The CPU-side simulator: a trace-driven out-of-order core timing model, the
//! L1D prefetch controller that wires a composite prefetcher and a selection
//! algorithm together, and the multi-core [`System`] driver.
//!
//! This is the substrate on which every experiment of the paper runs. A
//! [`System`] is configured like Table I ([`SystemConfig::skylake_like`]),
//! given a [`SelectionAlgorithm`] and a [`prefetch::CompositeKind`], fed one
//! workload trace per core, and produces a [`SystemReport`] with IPC,
//! prefetch-quality, table-miss and energy-proxy statistics.
//!
//! # Example
//!
//! ```
//! use cpu::{System, SystemConfig, SelectionAlgorithm, CompositeKind};
//! use alecto_types::{Workload, MemoryRecord, Pc, Addr};
//!
//! // A small streaming workload.
//! let records: Vec<MemoryRecord> = (0..2_000)
//!     .map(|i| MemoryRecord::load(Pc::new(0x400), Addr::new(0x10_0000 + i * 64), 6))
//!     .collect();
//! let workload = Workload::new("stream", records, true);
//!
//! let config = SystemConfig::skylake_like(1);
//! let mut sim = System::new(config, SelectionAlgorithm::Alecto, CompositeKind::GsCsPmp);
//! let report = sim.run(&[workload]);
//! assert!(report.cores[0].ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod config;
pub mod controller;
pub mod core_model;
pub mod core_timing;
pub mod lsq;
pub mod metrics;
pub mod ooo;
pub mod rob;
pub mod selection;
pub mod system;

pub use config::{composite_from_stack, CoreModelKind, SystemConfig};
pub use controller::PrefetchController;
pub use core_model::CoreModel;
pub use core_timing::{CoreEngine, CoreTiming};
pub use metrics::{CoreReport, PrefetcherReport, SystemReport};
pub use ooo::OooCore;
pub use prefetch::CompositeKind;
pub use selection::{build_selector, SelectionAlgorithm};
pub use system::{run_single_core, DriveOptions, RunError, System, DEFAULT_BATCH_RECORDS};
