//! The staged out-of-order core model (`CoreModelKind::OutOfOrder`).
//!
//! Integer-cycle pipeline built from three stages:
//!
//! * fetch — `fetch_width` instructions per cycle, stalled by a full
//!   [`ReorderBuffer`] and squashed by branch mispredicts;
//! * issue — loads and stores allocate [`LoadStoreQueue`] entries and go to
//!   the memory hierarchy immediately, so outstanding misses overlap up to
//!   the LQ/MSHR limits (pointer-chase steps still serialise on the chain
//!   producer's completion);
//! * retire — in-order at `commit_width` through the ROB; a load blocks
//!   retirement until its fill returns, a store drains post-commit.
//!
//! The trace carries no branch records, so each memory record synthesises
//! one conditional branch whose outcome is a pure hash of the record (see
//! [`branch_outcome`]); a gshare mispredict costs
//! [`crate::branch::MISPREDICT_PENALTY`] cycles of fetch squash and gates
//! that record's wrong-path prefetch triggers.

use alecto_types::{AccessKind, MemoryRecord};
use memsys::Hierarchy;
use selectors::PrefetchOutcome;

use crate::branch::{GsharePredictor, MISPREDICT_PENALTY};
use crate::config::SystemConfig;
use crate::controller::PrefetchController;
use crate::core_model::{ChainTable, CHAIN_TABLE_CAPACITY};
use crate::lsq::LoadStoreQueue;
use crate::metrics::CoreReport;
use crate::rob::ReorderBuffer;

/// Deterministic outcome of the conditional branch synthesised for `record`:
/// a multiplicative hash of the PC and address, biased ~87% taken so regular
/// code predicts well while irregular access streams still mispredict.
#[must_use]
pub fn branch_outcome(record: &MemoryRecord) -> bool {
    let h =
        (record.pc.raw() ^ record.addr.raw().rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 61) != 0
}

/// Timing and bookkeeping state of one out-of-order core.
#[derive(Debug)]
pub struct OooCore {
    core_id: usize,
    fetch_width: u64,
    rob: ReorderBuffer,
    lsq: LoadStoreQueue,
    branch: GsharePredictor,
    /// Cycle the next instruction group is fetched in.
    fetch_cycle: u64,
    /// Fetch slots already consumed within `fetch_cycle`.
    fetch_slots: u64,
    instructions: u64,
    /// Completion cycle of the most recent *dependent* load per PC (bounded,
    /// deterministic FIFO eviction — shared policy with the Approx model).
    chain_completion: ChainTable<u64>,
    controller: PrefetchController,
    epoch_len: u64,
    epoch_instr_mark: u64,
    epoch_cycle_mark: u64,
}

impl OooCore {
    /// Creates an out-of-order core with the given id, configuration and
    /// prefetch controller.
    #[must_use]
    pub fn new(core_id: usize, config: &SystemConfig, controller: PrefetchController) -> Self {
        Self {
            core_id,
            fetch_width: u64::from(config.fetch_width),
            rob: ReorderBuffer::new(config.rob_entries, config.commit_width),
            lsq: LoadStoreQueue::new(config.load_queue, config.store_queue),
            branch: GsharePredictor::new(),
            fetch_cycle: 0,
            fetch_slots: 0,
            instructions: 0,
            chain_completion: ChainTable::new(CHAIN_TABLE_CAPACITY),
            controller,
            epoch_len: config.selector_epoch_instructions,
            epoch_instr_mark: 0,
            epoch_cycle_mark: 0,
        }
    }

    /// This core's id.
    #[must_use]
    pub const fn core_id(&self) -> usize {
        self.core_id
    }

    /// Current simulated time in cycles — the later of the fetch clock and
    /// the retirement frontier. Monotone; the multi-core drive loop uses it
    /// to keep cores in rough lockstep.
    #[must_use]
    pub fn current_time(&self) -> f64 {
        self.rob.frontier().max(self.fetch_cycle) as f64
    }

    /// Instructions dispatched (and eventually retired) so far.
    #[must_use]
    pub const fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Borrow of the attached prefetch controller.
    #[must_use]
    pub const fn controller(&self) -> &PrefetchController {
        &self.controller
    }

    /// Consumes `count` fetch slots at `fetch_width` per cycle.
    fn advance_fetch(&mut self, count: u64) {
        let total = self.fetch_slots + count;
        self.fetch_cycle += total / self.fetch_width;
        self.fetch_slots = total % self.fetch_width;
    }

    /// Advances the core over one trace record, performing the demand access
    /// and any resulting prefetches against `hierarchy`.
    pub fn step(&mut self, record: &MemoryRecord, hierarchy: &mut Hierarchy) {
        let gap = u64::from(record.gap_instructions);

        // --- Fetch: ROB space, then the group at fetch_width ----------------
        let room = self.rob.make_room(gap + 1);
        if room > self.fetch_cycle {
            self.fetch_cycle = room;
            self.fetch_slots = 0;
        }
        self.rob.sample_occupancy();
        self.advance_fetch(gap);
        let dispatch_cycle = self.fetch_cycle;

        // --- The synthesised conditional branch at the record boundary ------
        let mispredicted = self.branch.predict_and_train(record.pc.raw(), branch_outcome(record));

        // --- Issue: LSQ allocation, chain dependence, the demand access -----
        let is_load = record.kind == AccessKind::Load;
        let mut issue = dispatch_cycle + 1;
        issue = if is_load {
            self.lsq.load_slot_ready(issue, hierarchy, self.core_id)
        } else {
            self.lsq.store_slot_ready(issue)
        };
        if record.dependent {
            if let Some(ready) = self.chain_completion.get(record.pc.raw()) {
                issue = issue.max(ready);
            }
        }
        let demand = record.demand();
        let result = hierarchy.demand_access_kind(self.core_id, demand.line(), issue, !is_load);
        let completion = result.completion_cycle;
        if record.dependent {
            self.chain_completion.insert(record.pc.raw(), completion);
        }
        if is_load {
            self.lsq.push_load(demand.line(), completion);
        } else {
            self.lsq.push_store(completion);
        }

        // --- Prefetch triggers (gated on the wrong path) --------------------
        let requests = self.controller.on_demand_access(&demand);
        if !mispredicted {
            for (k, req) in requests.iter().enumerate() {
                // Prefetches trickle out of the prefetch queue one per cycle.
                let delay = u64::try_from(k).expect("prefetch queue index fits in u64");
                hierarchy.issue_prefetch(self.core_id, req, issue + 1 + delay);
            }
        }
        for fb in hierarchy.drain_feedback() {
            self.controller.on_prefetch_outcome(&PrefetchOutcome {
                issuer: fb.issuer,
                trigger_pc: fb.trigger_pc,
                line: fb.line,
                useful: fb.useful,
            });
        }

        // --- Dispatch into the window ---------------------------------------
        // Gap instructions are ready the cycle they dispatch; a load's result
        // is ready at its fill, a store commits without waiting for its fill.
        self.rob.dispatch(gap, dispatch_cycle);
        self.rob.dispatch(1, if is_load { completion } else { issue });
        self.instructions += gap + 1;
        self.advance_fetch(1);
        if mispredicted {
            // Squash: the front end refills after the resolution bubble.
            self.fetch_cycle += MISPREDICT_PENALTY;
            self.fetch_slots = 0;
        }

        // --- Selector reward epochs -----------------------------------------
        if self.instructions - self.epoch_instr_mark >= self.epoch_len {
            let instr_delta = self.instructions - self.epoch_instr_mark;
            let frontier = self.rob.frontier().max(self.fetch_cycle);
            let cycle_delta = frontier.saturating_sub(self.epoch_cycle_mark).max(1);
            self.controller.on_epoch(instr_delta, cycle_delta);
            self.epoch_instr_mark = self.instructions;
            self.epoch_cycle_mark = frontier;
        }
    }

    /// Produces the per-core report after the trace has been consumed.
    #[must_use]
    pub fn report(&self, workload_name: &str, hierarchy: &Hierarchy) -> CoreReport {
        // Cycle count: everything dispatched retires (the ROB drains), and
        // IPC derives from the rounded integer so JSON consumers recomputing
        // instructions / cycles reproduce the report's own `ipc`.
        let cycles = self.rob.drain_cycle().max(self.fetch_cycle).max(1);
        CoreReport {
            workload: workload_name.to_string(),
            selector: self.controller.selector_name().to_string(),
            instructions: self.instructions,
            cycles,
            ipc: self.instructions as f64 / cycles as f64,
            timing: *hierarchy.timing_stats(self.core_id),
            l1: *hierarchy.l1_stats(self.core_id),
            l2: *hierarchy.l2_stats(self.core_id),
            quality: *hierarchy.quality(self.core_id),
            prefetchers: self
                .controller
                .table_stats()
                .into_iter()
                .map(|(name, stats)| crate::metrics::PrefetcherReport {
                    name: name.to_string(),
                    stats,
                })
                .collect(),
            training_occurrences: self.controller.training_occurrences(),
            table_misses: self.controller.table_misses(),
            prefetches_issued: self.controller.stats().issued,
            branch_mpki: Some(self.branch.mpki(self.instructions)),
            rob_occupancy: Some(self.rob.mean_occupancy()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SelectionAlgorithm;
    use alecto_types::{Addr, Pc};
    use memsys::HierarchyParams;
    use prefetch::CompositeKind;

    fn stream_trace(n: u64, gap: u32) -> Vec<MemoryRecord> {
        (0..n)
            .map(|i| MemoryRecord::load(Pc::new(0x400), Addr::new(0x100_0000 + i * 64), gap))
            .collect()
    }

    fn run(algo: SelectionAlgorithm, records: &[MemoryRecord]) -> CoreReport {
        let config = SystemConfig::skylake_like(1);
        let controller = PrefetchController::new(CompositeKind::GsCsPmp, algo);
        let mut core = OooCore::new(0, &config, controller);
        let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
        for r in records {
            core.step(r, &mut hier);
        }
        core.report("test", &hier)
    }

    #[test]
    fn ipc_is_bounded_by_commit_width() {
        let report = run(SelectionAlgorithm::NoPrefetching, &stream_trace(2_000, 20));
        assert!(report.ipc > 0.0);
        assert!(report.ipc <= 4.0 + 1e-9, "IPC {} cannot exceed the commit width", report.ipc);
    }

    #[test]
    fn prefetching_improves_streaming_ipc() {
        let trace = stream_trace(5_000, 60);
        let base = run(SelectionAlgorithm::NoPrefetching, &trace);
        let alecto = run(SelectionAlgorithm::Alecto, &trace);
        assert!(
            alecto.ipc > base.ipc * 1.05,
            "Alecto on a pure stream should clearly beat no-prefetching ({} vs {})",
            alecto.ipc,
            base.ipc
        );
    }

    #[test]
    fn report_carries_pipeline_metrics() {
        let report = run(SelectionAlgorithm::NoPrefetching, &stream_trace(2_000, 20));
        let mpki = report.branch_mpki.expect("OoO reports carry branch MPKI");
        assert!(mpki.is_finite() && mpki >= 0.0);
        let occ = report.rob_occupancy.expect("OoO reports carry ROB occupancy");
        assert!(occ.is_finite() && (0.0..=4096.0).contains(&occ));
        // IPC and cycles agree exactly (the v2 JSON contract).
        let recomputed = report.instructions as f64 / report.cycles as f64;
        assert!((report.ipc - recomputed).abs() < 1e-12);
    }

    #[test]
    fn dependent_chain_is_slower_than_independent_stream() {
        // Distinct lines spread across DRAM channels and banks, so the
        // independent variant can actually overlap its misses.
        let chase: Vec<MemoryRecord> = (0..2_000u64)
            .map(|i| {
                MemoryRecord::dependent_load(
                    Pc::new(0x500),
                    Addr::new(((i * 7919) % 100_000) * 64),
                    4,
                )
            })
            .collect();
        let indep: Vec<MemoryRecord> =
            chase.iter().map(|r| MemoryRecord::load(r.pc, r.addr, r.gap_instructions)).collect();
        let serial = run(SelectionAlgorithm::NoPrefetching, &chase);
        let overlapped = run(SelectionAlgorithm::NoPrefetching, &indep);
        assert!(
            serial.ipc < overlapped.ipc,
            "pointer chasing must serialise misses ({} vs {})",
            serial.ipc,
            overlapped.ipc
        );
    }

    #[test]
    fn identical_runs_are_identical() {
        let trace = stream_trace(1_500, 8);
        let a = run(SelectionAlgorithm::Alecto, &trace);
        let b = run(SelectionAlgorithm::Alecto, &trace);
        assert_eq!(a, b);
    }
}
