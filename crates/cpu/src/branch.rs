//! Gshare-style branch predictor for the out-of-order core model.
//!
//! The trace format carries no explicit branch records, so the OoO core
//! synthesises one conditional branch per memory record (see
//! `ooo::branch_outcome`): its outcome is a pure hash of the record's PC and
//! line address, which makes prediction accuracy — and therefore the
//! mispredict penalty stream — a deterministic function of the trace alone.
//! A mispredict squashes fetch for [`MISPREDICT_PENALTY`] cycles and gates
//! the wrong-path prefetch triggers of the record that resolved it.

/// Cycles of fetch squash per mispredicted branch (front-end refill depth,
/// Skylake-class).
pub const MISPREDICT_PENALTY: u64 = 14;

/// Log2 of the pattern-history-table size.
const PHT_BITS: u32 = 12;

/// A classic gshare predictor: the global history register XOR-ed with the
/// branch PC indexes a table of 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    /// Global outcome history, shifted on every branch.
    history: u64,
    /// 2-bit saturating counters, initialised weakly taken.
    counters: Vec<u8>,
    branches: u64,
    mispredicts: u64,
}

impl Default for GsharePredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl GsharePredictor {
    /// Creates a predictor with a 4K-entry pattern history table.
    #[must_use]
    pub fn new() -> Self {
        Self { history: 0, counters: vec![2u8; 1 << PHT_BITS], branches: 0, mispredicts: 0 }
    }

    /// Predicts the branch at `pc`, trains on the actual outcome `taken`, and
    /// returns `true` when the prediction was wrong.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        let mask = (1u64 << PHT_BITS) - 1;
        let index = ((pc >> 2) ^ self.history) & mask;
        let counter = &mut self.counters[usize::try_from(index).expect("PHT index fits in usize")];
        let predicted_taken = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & mask;
        self.branches += 1;
        let mispredicted = predicted_taken != taken;
        if mispredicted {
            self.mispredicts += 1;
        }
        mispredicted
    }

    /// Conditional branches predicted so far.
    #[must_use]
    pub const fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredicted branches so far.
    #[must_use]
    pub const fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Mispredicts per kilo-instruction over `instructions` retired.
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            1000.0 * self.mispredicts as f64 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_direction() {
        let mut p = GsharePredictor::new();
        // Always-taken loop branch: after warm-up the predictor is near
        // perfect, so mispredicts stay far below the branch count.
        for _ in 0..1_000 {
            p.predict_and_train(0x400, true);
        }
        assert_eq!(p.branches(), 1_000);
        assert!(p.mispredicts() < 10, "{} mispredicts on a constant branch", p.mispredicts());
    }

    #[test]
    fn learns_an_alternating_pattern_through_history() {
        let mut p = GsharePredictor::new();
        let mut taken = false;
        for _ in 0..2_000 {
            taken = !taken;
            p.predict_and_train(0x80, taken);
        }
        // Gshare keys on global history, so a strict alternation becomes
        // predictable once the history register warms up.
        assert!(p.mispredicts() < 200, "{} mispredicts on an alternating branch", p.mispredicts());
    }

    #[test]
    fn mpki_is_per_kilo_instruction() {
        let mut p = GsharePredictor::new();
        // Adversarial pseudo-random outcomes keep some mispredicts around.
        for i in 0u64..500 {
            p.predict_and_train(i * 4, (i * 2_654_435_761) % 3 == 0);
        }
        assert!(p.mispredicts() > 0);
        let mpki = p.mpki(10_000);
        assert!((mpki - p.mispredicts() as f64 / 10.0).abs() < 1e-12);
        assert_eq!(p.mpki(0), 0.0);
    }

    #[test]
    fn identical_streams_predict_identically() {
        let run = || {
            let mut p = GsharePredictor::new();
            for i in 0u64..300 {
                p.predict_and_train(i * 8, i % 7 < 3);
            }
            (p.branches(), p.mispredicts())
        };
        assert_eq!(run(), run());
    }
}
