//! System configuration mirroring Table I ("1–8 cores, 256-entry ROB, 6-width
//! fetch, 6-width decode, 8-width issue, 4-width commit, 72/56-entry LQ/SQ").
//!
//! All construction funnels through [`SystemConfig::from_machine`]: a
//! [`MachineSpec`] (from the built-in registry, a machine file, or the
//! anonymous [`MachineSpec::table1`] defaults) is lowered into the concrete
//! simulator parameters here, and the historical `with_*` constructors are
//! thin wrappers over that one lowering.

use machine::{MachineSpec, PrefetchStack};
use memsys::{DramKind, HierarchyParams};
use prefetch::CompositeKind;

pub use machine::CoreModelKind;

/// Lowers a machine file's `[prefetch]` stack choice into the simulator's
/// [`CompositeKind`] — the prefetch-side counterpart of
/// [`SystemConfig::from_machine`]. The machine format stores the temporal
/// metadata budget in KiB; the composite takes bytes.
#[must_use]
pub fn composite_from_stack(stack: PrefetchStack) -> CompositeKind {
    match stack {
        PrefetchStack::GsCsPmp => CompositeKind::GsCsPmp,
        PrefetchStack::GsBertiCplx => CompositeKind::GsBertiCplx,
        PrefetchStack::GsCsPmpTemporal { metadata_kb } => {
            CompositeKind::GsCsPmpTemporal { metadata_bytes: u64::from(metadata_kb) * 1024 }
        }
        PrefetchStack::PmpOnly => CompositeKind::PmpOnly,
        PrefetchStack::BertiOnly => CompositeKind::BertiOnly,
    }
}

/// Full system configuration: core microarchitecture plus memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Reorder buffer entries (Table I: 256).
    pub rob_entries: usize,
    /// Fetch width in instructions per cycle (Table I: 6).
    pub fetch_width: u32,
    /// Commit width in instructions per cycle (Table I: 4).
    pub commit_width: u32,
    /// Load queue entries (Table I: 72).
    pub load_queue: usize,
    /// Store queue entries (Table I: 56).
    pub store_queue: usize,
    /// Memory hierarchy parameters (Table I caches + DRAM).
    pub hierarchy: HierarchyParams,
    /// Instructions between selector reward epochs (the Bandit reward period).
    pub selector_epoch_instructions: u64,
    /// Which core timing model to simulate (Approx analytic vs OutOfOrder
    /// staged pipeline).
    pub core_model: CoreModelKind,
    /// Name of the machine description this configuration was lowered from,
    /// when it came from a *named* spec (registry or file). `None` for the
    /// anonymous Table-I defaults, which keeps default reports byte-stable.
    /// Participates in the config's `Debug` rendering and therefore in the
    /// harness cell cache key.
    pub machine: Option<String>,
}

impl SystemConfig {
    /// Lowers a [`MachineSpec`] into a runnable configuration — the single
    /// construction funnel shared by the CLI, the sweep server and the
    /// tests. The spec's name is recorded (and surfaced by
    /// [`SystemConfig::describe`]) unless the spec is anonymous.
    #[must_use]
    pub fn from_machine(spec: &MachineSpec) -> Self {
        Self {
            cores: spec.cores,
            rob_entries: spec.rob_entries,
            fetch_width: spec.fetch_width,
            commit_width: spec.commit_width,
            load_queue: spec.load_queue,
            store_queue: spec.store_queue,
            hierarchy: spec.hierarchy(),
            selector_epoch_instructions: spec.selector_epoch_instructions,
            core_model: spec.core_model,
            machine: (!spec.name.is_empty()).then(|| spec.name.clone()),
        }
    }

    /// The Skylake-like configuration of Table I for `cores` cores —
    /// [`SystemConfig::from_machine`] over the anonymous
    /// [`MachineSpec::table1`] defaults.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn skylake_like(cores: usize) -> Self {
        Self::from_machine(&MachineSpec::table1(cores))
    }

    /// Same configuration with the core timing model replaced (builder-style,
    /// so experiment code can write
    /// `SystemConfig::skylake_like(n).with_core_model(kind)`).
    #[must_use]
    pub fn with_core_model(mut self, kind: CoreModelKind) -> Self {
        self.core_model = kind;
        self
    }

    /// Table I configuration with an explicit LLC capacity per core (Fig. 15).
    #[must_use]
    pub fn with_llc_per_core(cores: usize, llc_bytes_per_core: u64) -> Self {
        Self::from_machine(&MachineSpec::table1(cores).with_llc_per_core(llc_bytes_per_core))
    }

    /// Table I configuration with the given DRAM generation (Fig. 16).
    #[must_use]
    pub fn with_dram(cores: usize, kind: DramKind) -> Self {
        Self::from_machine(&MachineSpec::table1(cores).with_dram_kind(kind))
    }

    /// Table I configuration with explicit timing knobs (the `timing`
    /// experiment sweeps latency-sensitive vs bandwidth-bound DRAM admission
    /// rates).
    #[must_use]
    pub fn with_timing(cores: usize, timing: memsys::TimingParams) -> Self {
        Self::from_machine(&MachineSpec::table1(cores).with_timing(timing))
    }

    /// Renders the configuration as the rows of Table I (used by the harness's
    /// `table1` command). Configurations lowered from a named machine lead
    /// with a "Machine" row naming the spec; anonymous (default) ones render
    /// exactly the historical rows.
    #[must_use]
    pub fn describe(&self) -> Vec<(String, String)> {
        let mut rows = Vec::with_capacity(8);
        if let Some(name) = &self.machine {
            rows.push(("Machine".to_string(), format!("{name} (alecto-machine-v1)")));
        }
        rows.extend([
            (
                "Core".to_string(),
                format!(
                    "{} cores, {}-entry ROB, {}-width fetch, {}-width commit, {}/{}-entry LQ/SQ",
                    self.cores,
                    self.rob_entries,
                    self.fetch_width,
                    self.commit_width,
                    self.load_queue,
                    self.store_queue
                ),
            ),
            (
                "Core model".to_string(),
                match self.core_model {
                    CoreModelKind::Approx => {
                        "approx: analytic fetch/retire frontiers (sweep default)".to_string()
                    }
                    CoreModelKind::OutOfOrder => {
                        "ooo: staged ROB/LSQ/gshare pipeline, integer cycles".to_string()
                    }
                },
            ),
            (
                "Private L1 D-cache".to_string(),
                format!(
                    "{} KB, {}-way, 64B line, {} MSHRs, {} cycles round trip",
                    self.hierarchy.l1d.size_bytes / 1024,
                    self.hierarchy.l1d.ways,
                    self.hierarchy.l1d.mshrs,
                    self.hierarchy.l1d.latency
                ),
            ),
            (
                "Private L2 cache".to_string(),
                format!(
                    "{} KB, {}-way, {} MSHRs, {} cycles round trip",
                    self.hierarchy.l2.size_bytes / 1024,
                    self.hierarchy.l2.ways,
                    self.hierarchy.l2.mshrs,
                    self.hierarchy.l2.latency
                ),
            ),
            (
                "Shared L3 cache".to_string(),
                format!(
                    "{} MB total, {}-way, {} cycles round trip",
                    self.hierarchy.l3.size_bytes / (1024 * 1024),
                    self.hierarchy.l3.ways,
                    self.hierarchy.l3.latency
                ),
            ),
            (
                "Main memory".to_string(),
                format!(
                    "{:?}, {} channel(s), {} rank(s)/channel, {} banks/rank",
                    self.hierarchy.dram.kind,
                    self.hierarchy.dram.channels,
                    self.hierarchy.dram.ranks_per_channel,
                    self.hierarchy.dram.banks_per_rank
                ),
            ),
            (
                "Memory controller".to_string(),
                format!(
                    "admits {} fill(s) per {} cycle(s)",
                    self.hierarchy.timing.dram_drain_requests,
                    self.hierarchy.timing.dram_drain_period
                ),
            ),
        ]);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_parameters() {
        let c = SystemConfig::skylake_like(1);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.load_queue, 72);
        assert_eq!(c.store_queue, 56);
        assert_eq!(c.hierarchy.cores, 1);
        assert_eq!(c.machine, None, "the anonymous defaults carry no machine name");
    }

    #[test]
    fn llc_and_dram_variants() {
        let c = SystemConfig::with_llc_per_core(1, 512 * 1024);
        assert_eq!(c.hierarchy.l3.size_bytes, 512 * 1024);
        let c = SystemConfig::with_dram(1, DramKind::Ddr3_1600);
        assert_eq!(c.hierarchy.dram.kind, DramKind::Ddr3_1600);
    }

    #[test]
    fn from_machine_is_the_single_funnel() {
        // The historical constructors must produce exactly what lowering the
        // equivalent spec produces — they are the same code path.
        for cores in [1usize, 2, 4, 8] {
            assert_eq!(
                SystemConfig::skylake_like(cores),
                SystemConfig::from_machine(&MachineSpec::table1(cores)),
            );
        }
        let named = machine::builtin("desktop").expect("builtin");
        let c = SystemConfig::from_machine(&named);
        assert_eq!(c.machine.as_deref(), Some("desktop"));
        assert_eq!(c.cores, 4);
    }

    #[test]
    fn describe_covers_all_modules() {
        let rows = SystemConfig::skylake_like(8).describe();
        let labels: Vec<_> = rows.iter().map(|(k, _)| k.as_str()).collect();
        assert!(labels.contains(&"Core"));
        assert!(labels.contains(&"Core model"));
        assert!(labels.contains(&"Shared L3 cache"));
        assert!(labels.contains(&"Main memory"));
        assert!(rows.iter().all(|(_, v)| !v.is_empty()));
        // Anonymous configs must render the historical rows only: the
        // "Machine" row is reserved for named specs (default reports stay
        // byte-identical).
        assert!(!labels.contains(&"Machine"));
        let named = SystemConfig::from_machine(&machine::builtin("server").expect("builtin"));
        let rows = named.describe();
        assert_eq!(rows[0].0, "Machine");
        assert!(rows[0].1.contains("server"));
    }

    #[test]
    fn prefetch_stacks_lower_to_composites() {
        assert_eq!(composite_from_stack(PrefetchStack::GsCsPmp), CompositeKind::GsCsPmp);
        assert_eq!(composite_from_stack(PrefetchStack::GsBertiCplx), CompositeKind::GsBertiCplx);
        assert_eq!(composite_from_stack(PrefetchStack::PmpOnly), CompositeKind::PmpOnly);
        assert_eq!(composite_from_stack(PrefetchStack::BertiOnly), CompositeKind::BertiOnly);
        assert_eq!(
            composite_from_stack(PrefetchStack::GsCsPmpTemporal { metadata_kb: 512 }),
            CompositeKind::GsCsPmpTemporal { metadata_bytes: 512 * 1024 },
        );
    }

    #[test]
    fn core_model_labels_round_trip() {
        assert_eq!(CoreModelKind::default(), CoreModelKind::Approx);
        for kind in [CoreModelKind::Approx, CoreModelKind::OutOfOrder] {
            assert_eq!(CoreModelKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(CoreModelKind::from_label("o3"), None);
        // `describe()` surfaces the selected model so `table1` documents it.
        let rows =
            SystemConfig::skylake_like(1).with_core_model(CoreModelKind::OutOfOrder).describe();
        let row = rows.iter().find(|(k, _)| k == "Core model").expect("row");
        assert!(row.1.starts_with("ooo"));
    }
}
