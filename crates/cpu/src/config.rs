//! System configuration mirroring Table I ("1–8 cores, 256-entry ROB, 6-width
//! fetch, 6-width decode, 8-width issue, 4-width commit, 72/56-entry LQ/SQ").

use memsys::{DramKind, HierarchyParams};

/// Which timing model simulates each core.
///
/// The two models share the prefetch/selection stack and the memory
/// hierarchy; they differ only in how core cycles are accounted. `Approx` is
/// the fast analytic frontier model and stays the default for sweeps;
/// `OutOfOrder` is the staged integer-cycle pipeline (ROB/LSQ/gshare) behind
/// the `CoreTiming` trait. Selected per run via [`SystemConfig::core_model`]
/// and the harness `--core-model {approx|ooo}` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoreModelKind {
    /// Analytic fetch/retire frontier model (`CoreModel`), f64 time.
    #[default]
    Approx,
    /// Staged out-of-order pipeline (`OooCore`), integer cycles.
    OutOfOrder,
}

impl CoreModelKind {
    /// Stable lower-case label used by the CLI flag, the sweep-server JSON
    /// field and report annotations.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Approx => "approx",
            Self::OutOfOrder => "ooo",
        }
    }

    /// Parses a CLI/server label (`"approx"` or `"ooo"`).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "approx" => Some(Self::Approx),
            "ooo" => Some(Self::OutOfOrder),
            _ => None,
        }
    }
}

/// Full system configuration: core microarchitecture plus memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Reorder buffer entries (Table I: 256).
    pub rob_entries: usize,
    /// Fetch width in instructions per cycle (Table I: 6).
    pub fetch_width: u32,
    /// Commit width in instructions per cycle (Table I: 4).
    pub commit_width: u32,
    /// Load queue entries (Table I: 72).
    pub load_queue: usize,
    /// Store queue entries (Table I: 56).
    pub store_queue: usize,
    /// Memory hierarchy parameters (Table I caches + DRAM).
    pub hierarchy: HierarchyParams,
    /// Instructions between selector reward epochs (the Bandit reward period).
    pub selector_epoch_instructions: u64,
    /// Which core timing model to simulate (Approx analytic vs OutOfOrder
    /// staged pipeline).
    pub core_model: CoreModelKind,
}

impl SystemConfig {
    /// The Skylake-like configuration of Table I for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn skylake_like(cores: usize) -> Self {
        Self {
            cores,
            rob_entries: 256,
            fetch_width: 6,
            commit_width: 4,
            load_queue: 72,
            store_queue: 56,
            hierarchy: HierarchyParams::skylake_like(cores),
            selector_epoch_instructions: 20_000,
            core_model: CoreModelKind::Approx,
        }
    }

    /// Same configuration with the core timing model replaced (builder-style,
    /// so experiment code can write
    /// `SystemConfig::skylake_like(n).with_core_model(kind)`).
    #[must_use]
    pub fn with_core_model(mut self, kind: CoreModelKind) -> Self {
        self.core_model = kind;
        self
    }

    /// Table I configuration with an explicit LLC capacity per core (Fig. 15).
    #[must_use]
    pub fn with_llc_per_core(cores: usize, llc_bytes_per_core: u64) -> Self {
        let mut c = Self::skylake_like(cores);
        c.hierarchy = HierarchyParams::with_llc_per_core(cores, llc_bytes_per_core);
        c
    }

    /// Table I configuration with the given DRAM generation (Fig. 16).
    #[must_use]
    pub fn with_dram(cores: usize, kind: DramKind) -> Self {
        let mut c = Self::skylake_like(cores);
        c.hierarchy = HierarchyParams::with_dram(cores, kind);
        c
    }

    /// Table I configuration with explicit timing knobs (the `timing`
    /// experiment sweeps latency-sensitive vs bandwidth-bound DRAM admission
    /// rates).
    #[must_use]
    pub fn with_timing(cores: usize, timing: memsys::TimingParams) -> Self {
        let mut c = Self::skylake_like(cores);
        c.hierarchy.timing = timing;
        c
    }

    /// Renders the configuration as the rows of Table I (used by the harness's
    /// `table1` command).
    #[must_use]
    pub fn describe(&self) -> Vec<(String, String)> {
        vec![
            (
                "Core".to_string(),
                format!(
                    "{} cores, {}-entry ROB, {}-width fetch, {}-width commit, {}/{}-entry LQ/SQ",
                    self.cores,
                    self.rob_entries,
                    self.fetch_width,
                    self.commit_width,
                    self.load_queue,
                    self.store_queue
                ),
            ),
            (
                "Core model".to_string(),
                match self.core_model {
                    CoreModelKind::Approx => {
                        "approx: analytic fetch/retire frontiers (sweep default)".to_string()
                    }
                    CoreModelKind::OutOfOrder => {
                        "ooo: staged ROB/LSQ/gshare pipeline, integer cycles".to_string()
                    }
                },
            ),
            (
                "Private L1 D-cache".to_string(),
                format!(
                    "{} KB, {}-way, 64B line, {} MSHRs, {} cycles round trip",
                    self.hierarchy.l1d.size_bytes / 1024,
                    self.hierarchy.l1d.ways,
                    self.hierarchy.l1d.mshrs,
                    self.hierarchy.l1d.latency
                ),
            ),
            (
                "Private L2 cache".to_string(),
                format!(
                    "{} KB, {}-way, {} MSHRs, {} cycles round trip",
                    self.hierarchy.l2.size_bytes / 1024,
                    self.hierarchy.l2.ways,
                    self.hierarchy.l2.mshrs,
                    self.hierarchy.l2.latency
                ),
            ),
            (
                "Shared L3 cache".to_string(),
                format!(
                    "{} MB total, {}-way, {} cycles round trip",
                    self.hierarchy.l3.size_bytes / (1024 * 1024),
                    self.hierarchy.l3.ways,
                    self.hierarchy.l3.latency
                ),
            ),
            (
                "Main memory".to_string(),
                format!(
                    "{:?}, {} channel(s), {} rank(s)/channel, {} banks/rank",
                    self.hierarchy.dram.kind,
                    self.hierarchy.dram.channels,
                    self.hierarchy.dram.ranks_per_channel,
                    self.hierarchy.dram.banks_per_rank
                ),
            ),
            (
                "Memory controller".to_string(),
                format!(
                    "admits {} fill(s) per {} cycle(s)",
                    self.hierarchy.timing.dram_drain_requests,
                    self.hierarchy.timing.dram_drain_period
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_parameters() {
        let c = SystemConfig::skylake_like(1);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.load_queue, 72);
        assert_eq!(c.store_queue, 56);
        assert_eq!(c.hierarchy.cores, 1);
    }

    #[test]
    fn llc_and_dram_variants() {
        let c = SystemConfig::with_llc_per_core(1, 512 * 1024);
        assert_eq!(c.hierarchy.l3.size_bytes, 512 * 1024);
        let c = SystemConfig::with_dram(1, DramKind::Ddr3_1600);
        assert_eq!(c.hierarchy.dram.kind, DramKind::Ddr3_1600);
    }

    #[test]
    fn describe_covers_all_modules() {
        let rows = SystemConfig::skylake_like(8).describe();
        let labels: Vec<_> = rows.iter().map(|(k, _)| k.as_str()).collect();
        assert!(labels.contains(&"Core"));
        assert!(labels.contains(&"Core model"));
        assert!(labels.contains(&"Shared L3 cache"));
        assert!(labels.contains(&"Main memory"));
        assert!(rows.iter().all(|(_, v)| !v.is_empty()));
    }

    #[test]
    fn core_model_labels_round_trip() {
        assert_eq!(CoreModelKind::default(), CoreModelKind::Approx);
        for kind in [CoreModelKind::Approx, CoreModelKind::OutOfOrder] {
            assert_eq!(CoreModelKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(CoreModelKind::from_label("o3"), None);
        // `describe()` surfaces the selected model so `table1` documents it.
        let rows =
            SystemConfig::skylake_like(1).with_core_model(CoreModelKind::OutOfOrder).describe();
        let row = rows.iter().find(|(k, _)| k == "Core model").expect("row");
        assert!(row.1.starts_with("ooo"));
    }
}
