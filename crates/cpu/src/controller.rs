//! The L1D prefetch controller: glue between the demand-access stream, the
//! selection algorithm and the composite prefetcher.
//!
//! For every demand access the controller asks the selector which prefetchers
//! may train (and with what degree), trains exactly those prefetchers, lets
//! the selector post-process the resulting candidates, applies the external
//! prefetch filter when the selector wants one (§V-B), and hands the final
//! prefetch requests back to the caller (the core model) for issue into the
//! memory hierarchy.

use alecto_types::{DemandAccess, FillLevel, LineAddr, PrefetchRequest, PrefetcherId};
use prefetch::{build_composite, CompositeKind, Prefetcher, TableStats};
use selectors::{PrefetchFilter, PrefetchOutcome, Selector};

use crate::selection::{build_selector, SelectionAlgorithm};

/// Per-controller statistics (everything Fig. 1 / Fig. 18 needs that is not
/// already inside the prefetchers' own [`TableStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Demand accesses observed.
    pub demands: u64,
    /// Candidate prefetch lines produced by the trained prefetchers.
    pub candidates: u64,
    /// Requests dropped by the selector's own post-processing.
    pub dropped_by_selector: u64,
    /// Requests dropped by the external prefetch filter.
    pub dropped_by_filter: u64,
    /// Requests handed to the memory system.
    pub issued: u64,
}

/// The per-core L1D prefetch controller.
pub struct PrefetchController {
    prefetchers: Vec<Box<dyn Prefetcher>>,
    selector: Option<Box<dyn Selector>>,
    filter: PrefetchFilter,
    stats: ControllerStats,
    scratch: Vec<LineAddr>,
}

impl std::fmt::Debug for PrefetchController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchController")
            .field("prefetchers", &self.prefetchers.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("selector", &self.selector.as_ref().map(|s| s.name()))
            .field("stats", &self.stats)
            .finish()
    }
}

impl PrefetchController {
    /// Builds a controller for the given composite and selection algorithm.
    #[must_use]
    pub fn new(composite: CompositeKind, algorithm: SelectionAlgorithm) -> Self {
        let prefetchers = build_composite(composite);
        let selector = build_selector(algorithm, prefetchers.len());
        Self {
            prefetchers,
            selector,
            filter: PrefetchFilter::default_config(),
            stats: ControllerStats::default(),
            scratch: Vec::with_capacity(16),
        }
    }

    /// Name of the selection algorithm in use (`"NoPrefetch"` when disabled).
    #[must_use]
    pub fn selector_name(&self) -> &'static str {
        self.selector.as_ref().map_or("NoPrefetch", |s| s.name())
    }

    /// Names of the prefetchers in the composite, in priority order.
    #[must_use]
    pub fn prefetcher_names(&self) -> Vec<&'static str> {
        self.prefetchers.iter().map(|p| p.name()).collect()
    }

    /// Controller statistics.
    #[must_use]
    pub const fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Metadata-table statistics of each prefetcher (Fig. 1 / Fig. 18 inputs).
    #[must_use]
    pub fn table_stats(&self) -> Vec<(&'static str, TableStats)> {
        self.prefetchers.iter().map(|p| (p.name(), *p.table_stats())).collect()
    }

    /// Total training occurrences across all prefetchers (the paper's proxy
    /// for prefetcher dynamic energy, §VI-I).
    #[must_use]
    pub fn training_occurrences(&self) -> u64 {
        self.prefetchers.iter().map(|p| p.table_stats().trainings).sum()
    }

    /// Total prefetcher-table misses across all prefetchers (Fig. 1).
    #[must_use]
    pub fn table_misses(&self) -> u64 {
        self.prefetchers.iter().map(|p| p.table_stats().misses).sum()
    }

    /// Storage of the selection hardware in bits (0 when prefetching is off).
    #[must_use]
    pub fn selector_storage_bits(&self) -> u64 {
        self.selector.as_ref().map_or(0, |s| s.storage_bits())
    }

    /// Handles one demand access: allocation, training, selection, filtering.
    /// Returns the prefetch requests to issue.
    pub fn on_demand_access(&mut self, access: &DemandAccess) -> Vec<PrefetchRequest> {
        self.stats.demands += 1;
        let Some(selector) = self.selector.as_mut() else {
            return Vec::new();
        };

        // 1. Allocation: which prefetchers see this request, at what degree.
        let decision = selector.allocate(access, &self.prefetchers);

        // 2. Training + candidate generation, restricted to the allocation.
        let mut candidates: Vec<PrefetchRequest> = Vec::new();
        for (idx, allocation) in decision.per_prefetcher.iter().enumerate() {
            let Some(alloc) = allocation else { continue };
            self.scratch.clear();
            self.prefetchers[idx].train_and_predict(access, alloc.total, &mut self.scratch);
            for (j, &line) in self.scratch.iter().enumerate() {
                let to_l1 = u32::try_from(j).is_ok_and(|j| j < alloc.l1_portion);
                let fill = if to_l1 { FillLevel::L1 } else { FillLevel::L2 };
                candidates.push(
                    PrefetchRequest::new(line, access.pc, PrefetcherId(idx)).with_fill_level(fill),
                );
            }
        }
        let candidate_count = u64::try_from(candidates.len()).expect("count fits in u64");
        self.stats.candidates += candidate_count;

        // 3. Selection-specific post-processing (priority mux, PPF, Sandbox).
        let selected = selector.select_requests(access, candidates);
        self.stats.dropped_by_selector +=
            candidate_count - u64::try_from(selected.len()).expect("count fits in u64");

        // 4. External duplicate filter for selectors that do not bring their own.
        let final_requests: Vec<PrefetchRequest> = if selector.needs_external_filter() {
            selected
                .into_iter()
                .filter(|r| {
                    let dropped = self.filter.check_and_insert(r.line);
                    if dropped {
                        self.stats.dropped_by_filter += 1;
                    }
                    !dropped
                })
                .collect()
        } else {
            selected
        };
        self.stats.issued += u64::try_from(final_requests.len()).expect("count fits in u64");
        final_requests
    }

    /// Forwards prefetch usefulness feedback from the memory system.
    pub fn on_prefetch_outcome(&mut self, outcome: &PrefetchOutcome) {
        if let Some(selector) = self.selector.as_mut() {
            selector.on_prefetch_outcome(outcome);
        }
    }

    /// Forwards a periodic performance reward to the selector (Bandit).
    pub fn on_epoch(&mut self, committed_instructions: u64, cycles: u64) {
        if let Some(selector) = self.selector.as_mut() {
            selector.on_epoch(committed_instructions, cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::{Addr, Pc};

    fn stream_access(i: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(0x400), Addr::new(0x10_0000 + i * 64))
    }

    #[test]
    fn no_prefetching_issues_nothing() {
        let mut c =
            PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::NoPrefetching);
        for i in 0..100 {
            assert!(c.on_demand_access(&stream_access(i)).is_empty());
        }
        assert_eq!(c.selector_name(), "NoPrefetch");
        assert_eq!(c.stats().issued, 0);
        assert_eq!(c.training_occurrences(), 0, "prefetchers must not be trained when disabled");
    }

    #[test]
    fn streaming_pattern_produces_prefetches_under_every_algorithm() {
        for algo in [
            SelectionAlgorithm::Ipcp,
            SelectionAlgorithm::Dol,
            SelectionAlgorithm::Bandit6,
            SelectionAlgorithm::Alecto,
        ] {
            let mut c = PrefetchController::new(CompositeKind::GsCsPmp, algo);
            let mut issued = 0;
            for i in 0..200 {
                issued += c.on_demand_access(&stream_access(i)).len();
            }
            assert!(issued > 0, "{algo:?} should issue prefetches for a pure stream");
        }
    }

    #[test]
    fn external_filter_applies_only_to_non_alecto() {
        let mut ipcp = PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::Ipcp);
        let mut alecto =
            PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::Alecto);
        for i in 0..300 {
            ipcp.on_demand_access(&stream_access(i));
            alecto.on_demand_access(&stream_access(i));
        }
        assert!(ipcp.stats().dropped_by_filter > 0, "IPCP relies on the external filter");
        assert_eq!(alecto.stats().dropped_by_filter, 0, "Alecto's sandbox does the filtering");
        assert!(alecto.stats().dropped_by_selector > 0);
    }

    #[test]
    fn alecto_trains_fewer_table_entries_than_ipcp_on_mixed_patterns() {
        // A pattern mix: one streaming PC and one pointer-chasing PC. Under
        // Alecto the blocked prefetchers stop receiving the requests they are
        // bad at, reducing training occurrences (Fig. 18).
        let chase: Vec<u64> = (0..50u64).map(|i| (i * 7919 + 3) % 4096).collect();
        let run = |algo: SelectionAlgorithm| {
            let mut c = PrefetchController::new(CompositeKind::GsCsPmp, algo);
            for round in 0..40u64 {
                for i in 0..50u64 {
                    c.on_demand_access(&stream_access(round * 50 + i));
                    c.on_demand_access(&DemandAccess::load(
                        Pc::new(0x900),
                        Addr::new(0x80_0000 + chase[usize::try_from(i).unwrap()] * 64),
                    ));
                }
            }
            c.training_occurrences()
        };
        let ipcp = run(SelectionAlgorithm::Ipcp);
        let alecto = run(SelectionAlgorithm::Alecto);
        assert!(
            alecto < ipcp,
            "Alecto should train less than non-selective IPCP (alecto {alecto} vs ipcp {ipcp})"
        );
    }

    #[test]
    fn table_stats_and_names_exposed() {
        let mut c =
            PrefetchController::new(CompositeKind::GsBertiCplx, SelectionAlgorithm::Bandit3);
        for i in 0..50 {
            c.on_demand_access(&stream_access(i));
        }
        assert_eq!(c.prefetcher_names(), vec!["GS", "Berti", "CPLX"]);
        let stats = c.table_stats();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().any(|(_, s)| s.trainings > 0));
        assert!(c.selector_storage_bits() > 0);
        assert!(c.table_misses() > 0);
        // Debug formatting is non-empty (C-DEBUG / C-DEBUG-NONEMPTY).
        assert!(!format!("{c:?}").is_empty());
    }

    #[test]
    fn epoch_and_outcome_forwarding_do_not_panic() {
        let mut c = PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::Bandit6);
        c.on_epoch(10_000, 5_000);
        c.on_prefetch_outcome(&PrefetchOutcome {
            issuer: PrefetcherId(0),
            trigger_pc: Some(Pc::new(1)),
            line: LineAddr::new(42),
            useful: true,
        });
        let mut none =
            PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::NoPrefetching);
        none.on_epoch(10_000, 5_000);
    }
}
