//! Reorder buffer of the out-of-order core: bounded instruction window with
//! in-order retirement at `commit_width`.
//!
//! Instructions enter in program order as *groups* (a record's non-memory gap
//! plus the memory access itself) and leave strictly in order: a group
//! retires no earlier than the cycle its result is ready (`complete`), at a
//! sustained rate of `commit_width` instructions per cycle. Fetch stalls when
//! the window is full — [`ReorderBuffer::make_room`] retires the oldest
//! groups and reports the cycle the stall resolves, which is how a
//! long-latency miss at the ROB head exposes its full latency once the
//! window fills behind it.

use std::collections::VecDeque;

/// One program-order group of instructions occupying the window.
#[derive(Debug, Clone, Copy)]
struct RobGroup {
    /// Instructions in the group.
    count: u64,
    /// Cycle at which the group's result is ready to retire.
    complete: u64,
}

/// Fixed-capacity reorder buffer with in-order retirement, integer cycles.
#[derive(Debug)]
pub struct ReorderBuffer {
    capacity: u64,
    commit_width: u64,
    groups: VecDeque<RobGroup>,
    /// Instructions currently in `groups`.
    occupancy: u64,
    /// Cycle of the in-order retirement frontier (last retired instruction).
    retire_cycle: u64,
    /// Commit slots already consumed within `retire_cycle`.
    retire_slots: u64,
    occupancy_sum: u64,
    samples: u64,
}

impl ReorderBuffer {
    /// Creates a window of `capacity` instructions retiring `commit_width`
    /// instructions per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `commit_width` is zero.
    #[must_use]
    pub fn new(capacity: usize, commit_width: u32) -> Self {
        assert!(capacity > 0, "ROB needs at least one entry");
        assert!(commit_width > 0, "commit width must be positive");
        Self {
            capacity: u64::try_from(capacity).expect("ROB size fits in u64"),
            commit_width: u64::from(commit_width),
            groups: VecDeque::with_capacity(64),
            occupancy: 0,
            retire_cycle: 0,
            retire_slots: 0,
            occupancy_sum: 0,
            samples: 0,
        }
    }

    /// Retires the oldest groups until `incoming` more instructions fit
    /// (clamped to the capacity, so giant gap groups always eventually fit)
    /// and returns the cycle the stall resolves; fetch cannot proceed before
    /// it. When there already is room the current frontier is returned, which
    /// callers `max` into their fetch clock (a no-op for an up-to-date
    /// front end).
    pub fn make_room(&mut self, incoming: u64) -> u64 {
        let needed = incoming.min(self.capacity);
        while self.occupancy + needed > self.capacity {
            let Some(group) = self.groups.pop_front() else { break };
            self.retire_group(group);
            self.occupancy -= group.count;
        }
        self.retire_cycle
    }

    /// Inserts a group of `count` instructions whose result is ready at cycle
    /// `complete`. Program order is insertion order.
    pub fn dispatch(&mut self, count: u64, complete: u64) {
        if count == 0 {
            return;
        }
        self.groups.push_back(RobGroup { count, complete });
        self.occupancy += count;
    }

    /// Records one occupancy sample (called once per trace record).
    pub fn sample_occupancy(&mut self) {
        self.occupancy_sum += self.occupancy;
        self.samples += 1;
    }

    /// In-order retirement frontier: the cycle of the last instruction
    /// actually retired so far. Monotone, O(1) — the multi-core drive loop
    /// polls this every merge step.
    #[must_use]
    pub const fn frontier(&self) -> u64 {
        self.retire_cycle
    }

    /// Instructions currently occupying the window.
    #[must_use]
    pub const fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Mean occupancy in instructions over every sample (0 with no samples).
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.samples as f64
        }
    }

    /// The cycle the last dispatched instruction retires if no further work
    /// arrives. Pure: simulates draining the remaining groups without
    /// mutating the window (reports are produced from `&self`).
    #[must_use]
    pub fn drain_cycle(&self) -> u64 {
        let (mut cycle, mut slots) = (self.retire_cycle, self.retire_slots);
        for group in &self.groups {
            (cycle, slots) = Self::retire_at(cycle, slots, *group, self.commit_width);
        }
        cycle
    }

    fn retire_group(&mut self, group: RobGroup) {
        (self.retire_cycle, self.retire_slots) =
            Self::retire_at(self.retire_cycle, self.retire_slots, group, self.commit_width);
    }

    /// Advances a `(cycle, slots-used)` retirement position over one group:
    /// retirement cannot start before the group completes, then consumes one
    /// commit slot per instruction at `width` slots per cycle.
    const fn retire_at(cycle: u64, slots: u64, group: RobGroup, width: u64) -> (u64, u64) {
        let (mut cycle, mut slots) = (cycle, slots);
        if group.complete > cycle {
            cycle = group.complete;
            slots = 0;
        }
        let total = slots + group.count;
        (cycle + total / width, total % width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retires_at_commit_width() {
        let mut rob = ReorderBuffer::new(8, 4);
        // 16 instructions, all ready at cycle 0, through an 8-entry window:
        // retirement is commit-bound at 4/cycle.
        rob.dispatch(8, 0);
        assert_eq!(rob.occupancy(), 8);
        let stall = rob.make_room(8);
        // The first 8 retire over cycles 0..2.
        assert_eq!(stall, 2);
        rob.dispatch(8, 0);
        assert_eq!(rob.drain_cycle(), 4);
    }

    #[test]
    fn completion_gates_in_order_retirement() {
        let mut rob = ReorderBuffer::new(16, 4);
        // A load completing at cycle 100 heads the window; the 8 ready
        // instructions behind it cannot retire earlier (in-order).
        rob.dispatch(1, 100);
        rob.dispatch(8, 0);
        // The load retires at 100 (slot 0), three ready instructions fill the
        // rest of cycle 100, four retire in 101 and the last lands in 102.
        assert_eq!(rob.drain_cycle(), 102);
    }

    #[test]
    fn full_window_stalls_until_the_head_retires() {
        let mut rob = ReorderBuffer::new(4, 4);
        rob.dispatch(4, 50);
        // No room for 2 more until the head group (ready at 50) retires.
        let stall = rob.make_room(2);
        assert_eq!(stall, 51, "4 instructions ready at 50 retire through cycle 51");
        assert_eq!(rob.occupancy(), 0);
        assert_eq!(rob.frontier(), 51);
    }

    #[test]
    fn oversized_groups_are_admitted_after_a_full_drain() {
        let mut rob = ReorderBuffer::new(4, 2);
        rob.dispatch(4, 10);
        // A group larger than the window is clamped: make_room drains
        // everything rather than spinning forever.
        let stall = rob.make_room(u64::from(u32::MAX) + 1);
        assert_eq!(rob.occupancy(), 0);
        assert!(stall >= 10);
    }

    #[test]
    fn drain_is_pure_and_occupancy_stats_accumulate() {
        let mut rob = ReorderBuffer::new(32, 4);
        rob.dispatch(10, 7);
        rob.sample_occupancy();
        let d1 = rob.drain_cycle();
        let d2 = rob.drain_cycle();
        assert_eq!(d1, d2, "drain must not mutate");
        assert_eq!(rob.occupancy(), 10);
        assert!((rob.mean_occupancy() - 10.0).abs() < 1e-12);
        assert_eq!(ReorderBuffer::new(4, 1).mean_occupancy(), 0.0);
    }
}
