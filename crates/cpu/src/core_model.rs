//! The per-core trace-driven timing model.
//!
//! The model approximates a Table I-style out-of-order core: instructions are
//! fetched at `fetch_width` and retired in order at `commit_width`; loads
//! issue to the memory hierarchy as soon as they are fetched (subject to the
//! load-queue size), overlap freely within the 256-entry ROB window, and block
//! retirement until their data returns. This captures the two effects the
//! paper's evaluation depends on: memory-level parallelism inside the ROB
//! window, and the full exposure of DRAM latency once the window fills behind
//! a miss.

use std::collections::{HashMap, VecDeque};

use alecto_types::{AccessKind, MemoryRecord};
use memsys::Hierarchy;
use selectors::PrefetchOutcome;

use crate::config::SystemConfig;
use crate::controller::PrefetchController;
use crate::metrics::CoreReport;

/// Maximum distinct PCs tracked for pointer-chase serialisation.
///
/// Multi-gigabyte `.altr` replays can carry millions of distinct dependent
/// PCs; an unbounded map would grow with the trace. 4096 entries comfortably
/// cover every synthetic family and the hot chains of real traces while
/// keeping memory O(1) in trace length.
pub(crate) const CHAIN_TABLE_CAPACITY: usize = 4096;

/// Fixed-capacity PC → completion map with deterministic FIFO eviction.
///
/// Backed by a `HashMap` for O(1) lookup plus an insertion-order queue for
/// eviction. The map is never iterated, so hash order cannot leak into
/// simulation results; the eviction victim is always the *oldest first
/// inserted* key, which is a pure function of the record stream.
#[derive(Debug)]
pub(crate) struct ChainTable<V> {
    map: HashMap<u64, V>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl<V: Copy> ChainTable<V> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "chain table needs at least one entry");
        Self { map: HashMap::new(), order: VecDeque::new(), capacity }
    }

    pub(crate) fn get(&self, key: u64) -> Option<V> {
        self.map.get(&key).copied()
    }

    /// Inserts or updates `key`. A brand-new key beyond capacity first evicts
    /// the oldest inserted key; updating an existing key never evicts.
    pub(crate) fn insert(&mut self, key: u64, value: V) {
        if self.map.insert(key, value).is_none() {
            if self.map.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                }
            }
            self.order.push_back(key);
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

/// Timing and bookkeeping state of one simulated core.
#[derive(Debug)]
pub struct CoreModel {
    core_id: usize,
    fetch_width: f64,
    commit_width: f64,
    rob_entries: u64,
    load_queue: usize,
    /// Time at which the next instruction can be fetched.
    fetch_time: f64,
    /// In-order retirement frontier.
    retire_time: f64,
    /// Instructions retired so far.
    instructions: u64,
    /// Retirement times of recent memory instructions, used to model the ROB
    /// occupancy limit (instruction i cannot fetch before instruction
    /// i - ROB_SIZE has retired).
    rob_window: VecDeque<(u64, f64)>,
    /// Completion times of in-flight loads (bounds MLP by the LQ size).
    inflight_loads: VecDeque<f64>,
    /// Completion time of the most recent *dependent* load of each PC, used to
    /// serialise pointer-chase chains. Bounded at [`CHAIN_TABLE_CAPACITY`]
    /// with deterministic FIFO eviction so long replays stay O(1) in memory.
    chain_completion: ChainTable<f64>,
    /// The prefetch controller attached to this core's L1D.
    controller: PrefetchController,
    epoch_len: u64,
    epoch_instr_mark: u64,
    epoch_cycle_mark: f64,
}

impl CoreModel {
    /// Creates a core model with the given id, configuration and controller.
    #[must_use]
    pub fn new(core_id: usize, config: &SystemConfig, controller: PrefetchController) -> Self {
        Self {
            core_id,
            fetch_width: f64::from(config.fetch_width),
            commit_width: f64::from(config.commit_width),
            rob_entries: u64::try_from(config.rob_entries).expect("ROB size fits in u64"),
            load_queue: config.load_queue,
            fetch_time: 0.0,
            retire_time: 0.0,
            instructions: 0,
            rob_window: VecDeque::with_capacity(64),
            inflight_loads: VecDeque::with_capacity(80),
            chain_completion: ChainTable::new(CHAIN_TABLE_CAPACITY),
            controller,
            epoch_len: config.selector_epoch_instructions,
            epoch_instr_mark: 0,
            epoch_cycle_mark: 0.0,
        }
    }

    /// This core's id.
    #[must_use]
    pub const fn core_id(&self) -> usize {
        self.core_id
    }

    /// The current simulated time of the core in cycles (its retirement
    /// frontier). Used by the multi-core driver to keep cores in rough
    /// lockstep.
    #[must_use]
    pub fn current_time(&self) -> f64 {
        self.retire_time.max(self.fetch_time)
    }

    /// Instructions retired so far.
    #[must_use]
    pub const fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Borrow of the attached prefetch controller.
    #[must_use]
    pub const fn controller(&self) -> &PrefetchController {
        &self.controller
    }

    /// Advances the core over one trace record, performing the demand access
    /// and any resulting prefetches against `hierarchy`.
    pub fn step(&mut self, record: &MemoryRecord, hierarchy: &mut Hierarchy) {
        // --- Non-memory instructions preceding the access -------------------
        let gap = f64::from(record.gap_instructions);
        self.fetch_time += gap / self.fetch_width;
        self.retire_time = (self.retire_time + gap / self.commit_width).max(self.fetch_time);
        self.instructions += u64::from(record.gap_instructions) + 1;

        // --- ROB occupancy limit --------------------------------------------
        let oldest_allowed = self.instructions.saturating_sub(self.rob_entries);
        let mut rob_limit = 0.0f64;
        while let Some(&(idx, retire)) = self.rob_window.front() {
            if idx <= oldest_allowed {
                rob_limit = rob_limit.max(retire);
                self.rob_window.pop_front();
            } else {
                break;
            }
        }
        self.fetch_time = self.fetch_time.max(rob_limit);
        self.fetch_time += 1.0 / self.fetch_width;

        // --- Load-queue limit -------------------------------------------------
        let is_load = record.kind == AccessKind::Load;
        if is_load {
            // Loads whose data has already returned free their queue entries.
            self.inflight_loads.retain(|&completion| completion > self.fetch_time);
            // A full queue stalls fetch until the *earliest-completing*
            // outstanding load returns. Completions are not monotonic in
            // issue order (an L1 hit issued after a DRAM miss returns first),
            // so the front entry is not the one that frees the queue.
            while self.inflight_loads.len() >= self.load_queue {
                let (idx, earliest) = self.inflight_loads.iter().copied().enumerate().fold(
                    (0, f64::INFINITY),
                    |best, (i, c)| if c < best.1 { (i, c) } else { best },
                );
                self.fetch_time = self.fetch_time.max(earliest);
                self.inflight_loads.remove(idx);
            }
        }

        // --- Serial dependence (pointer chasing) --------------------------------
        let mut issue_time = self.fetch_time;
        if record.dependent {
            if let Some(ready) = self.chain_completion.get(record.pc.raw()) {
                issue_time = issue_time.max(ready);
            }
        }

        // --- The demand access -------------------------------------------------
        let issue_cycle = issue_time.ceil() as u64;
        let demand = record.demand();
        let result =
            hierarchy.demand_access_kind(self.core_id, demand.line(), issue_cycle, !is_load);
        let completion = result.completion_cycle as f64;
        if record.dependent {
            self.chain_completion.insert(record.pc.raw(), completion);
        }

        // --- Prefetching --------------------------------------------------------
        let requests = self.controller.on_demand_access(&demand);
        for (k, req) in requests.iter().enumerate() {
            // Prefetches trickle out of the prefetch queue one per cycle.
            let delay = u64::try_from(k).expect("prefetch queue index fits in u64");
            hierarchy.issue_prefetch(self.core_id, req, issue_cycle + 1 + delay);
        }
        for fb in hierarchy.drain_feedback() {
            self.controller.on_prefetch_outcome(&PrefetchOutcome {
                issuer: fb.issuer,
                trigger_pc: fb.trigger_pc,
                line: fb.line,
                useful: fb.useful,
            });
        }

        // --- Retirement ----------------------------------------------------------
        self.retire_time += 1.0 / self.commit_width;
        if is_load {
            self.retire_time = self.retire_time.max(completion);
            self.inflight_loads.push_back(completion);
        }
        self.rob_window.push_back((self.instructions, self.retire_time));

        // --- Selector reward epochs -----------------------------------------------
        if self.instructions - self.epoch_instr_mark >= self.epoch_len {
            let instr_delta = self.instructions - self.epoch_instr_mark;
            let cycle_delta = (self.retire_time - self.epoch_cycle_mark).max(1.0) as u64;
            self.controller.on_epoch(instr_delta, cycle_delta);
            self.epoch_instr_mark = self.instructions;
            self.epoch_cycle_mark = self.retire_time;
        }
    }

    /// Produces the per-core report after the trace has been consumed.
    #[must_use]
    pub fn report(&self, workload_name: &str, hierarchy: &Hierarchy) -> CoreReport {
        // Round the cycle count up once and derive IPC from the *rounded*
        // value, so a JSON consumer recomputing `instructions / cycles` from
        // the report gets exactly the report's own `ipc` field.
        let cycles = self.retire_time.max(1.0).ceil() as u64;
        CoreReport {
            workload: workload_name.to_string(),
            selector: self.controller.selector_name().to_string(),
            instructions: self.instructions,
            cycles,
            ipc: self.instructions as f64 / cycles as f64,
            timing: *hierarchy.timing_stats(self.core_id),
            l1: *hierarchy.l1_stats(self.core_id),
            l2: *hierarchy.l2_stats(self.core_id),
            quality: *hierarchy.quality(self.core_id),
            prefetchers: self
                .controller
                .table_stats()
                .into_iter()
                .map(|(name, stats)| crate::metrics::PrefetcherReport {
                    name: name.to_string(),
                    stats,
                })
                .collect(),
            training_occurrences: self.controller.training_occurrences(),
            table_misses: self.controller.table_misses(),
            prefetches_issued: self.controller.stats().issued,
            // The analytic model carries no branch predictor and no explicit
            // ROB occupancy; the fields stay null in the v2 report.
            branch_mpki: None,
            rob_occupancy: None,
        }
    }

    /// Number of PCs currently tracked for chain serialisation (bounded at
    /// `CHAIN_TABLE_CAPACITY`; exposed for the regression tests).
    #[must_use]
    pub fn chain_table_len(&self) -> usize {
        self.chain_completion.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SelectionAlgorithm;
    use alecto_types::{Addr, Pc};
    use memsys::HierarchyParams;
    use prefetch::CompositeKind;

    fn stream_trace(n: u64, gap: u32) -> Vec<MemoryRecord> {
        (0..n)
            .map(|i| MemoryRecord::load(Pc::new(0x400), Addr::new(0x100_0000 + i * 64), gap))
            .collect()
    }

    fn run(algo: SelectionAlgorithm, records: &[MemoryRecord]) -> CoreReport {
        let config = SystemConfig::skylake_like(1);
        let controller = PrefetchController::new(CompositeKind::GsCsPmp, algo);
        let mut core = CoreModel::new(0, &config, controller);
        let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
        for r in records {
            core.step(r, &mut hier);
        }
        core.report("test", &hier)
    }

    #[test]
    fn ipc_is_bounded_by_commit_width() {
        let report = run(SelectionAlgorithm::NoPrefetching, &stream_trace(2_000, 20));
        assert!(report.ipc > 0.0);
        assert!(report.ipc <= 4.0 + 1e-9, "IPC {} cannot exceed the commit width", report.ipc);
    }

    #[test]
    fn prefetching_improves_streaming_ipc() {
        // gap = 60 keeps the stream latency-bound (DRAM has bandwidth slack),
        // which is where prefetching pays off; a ~7-instruction gap would be
        // purely bandwidth-bound and prefetching could not help.
        let trace = stream_trace(5_000, 60);
        let base = run(SelectionAlgorithm::NoPrefetching, &trace);
        let alecto = run(SelectionAlgorithm::Alecto, &trace);
        let ipcp = run(SelectionAlgorithm::Ipcp, &trace);
        assert!(
            alecto.ipc > base.ipc * 1.05,
            "Alecto on a pure stream should clearly beat no-prefetching ({} vs {})",
            alecto.ipc,
            base.ipc
        );
        assert!(ipcp.ipc > base.ipc, "even static IPCP helps a pure stream");
        assert!(alecto.quality.covered_timely + alecto.quality.covered_untimely > 0);
    }

    #[test]
    fn bandwidth_bound_stream_is_not_hurt_by_prefetching() {
        // With only ~7 instructions per line the stream saturates the single
        // DDR4 channel; prefetching cannot help, but it must not waste
        // bandwidth and slow the core down much either.
        let trace = stream_trace(4_000, 6);
        let base = run(SelectionAlgorithm::NoPrefetching, &trace);
        let alecto = run(SelectionAlgorithm::Alecto, &trace);
        assert!(
            alecto.ipc > base.ipc * 0.9,
            "prefetching should not waste bandwidth on a saturated channel ({} vs {})",
            alecto.ipc,
            base.ipc
        );
    }

    #[test]
    fn compute_bound_workload_is_insensitive_to_prefetching() {
        // Re-touch the same few lines: everything hits in L1 after warm-up.
        let records: Vec<MemoryRecord> = (0..3_000)
            .map(|i| MemoryRecord::load(Pc::new(0x40), Addr::new(0x1000 + (i % 8) * 64), 30))
            .collect();
        let base = run(SelectionAlgorithm::NoPrefetching, &records);
        let pf = run(SelectionAlgorithm::Alecto, &records);
        let ratio = pf.ipc / base.ipc;
        assert!((0.95..=1.05).contains(&ratio), "compute-bound ratio should be ~1.0, got {ratio}");
    }

    #[test]
    fn memory_intensive_workload_has_lower_ipc_than_compute_bound() {
        // Random far-apart lines (every access a DRAM miss) vs dense reuse.
        let miss_heavy: Vec<MemoryRecord> = (0..2_000)
            .map(|i| MemoryRecord::load(Pc::new(0x44), Addr::new(((i * 7919) % 500_000) * 4096), 2))
            .collect();
        let reuse: Vec<MemoryRecord> = (0..2_000)
            .map(|i| MemoryRecord::load(Pc::new(0x48), Addr::new(0x2000 + (i % 4) * 64), 2))
            .collect();
        let a = run(SelectionAlgorithm::NoPrefetching, &miss_heavy);
        let b = run(SelectionAlgorithm::NoPrefetching, &reuse);
        assert!(
            a.ipc < b.ipc,
            "DRAM-bound IPC {} should be below cache-resident IPC {}",
            a.ipc,
            b.ipc
        );
    }

    #[test]
    fn report_carries_cycle_accounting() {
        let trace = stream_trace(2_000, 20);
        let report = run(SelectionAlgorithm::NoPrefetching, &trace);
        // Every record is one demand access, each with a non-zero latency.
        assert_eq!(report.timing.demand_accesses, 2_000);
        assert!(report.timing.demand_latency_cycles >= report.timing.demand_accesses * 4);
        let avg = report.avg_mem_latency();
        assert!(avg >= 4.0, "average latency {avg} cannot undercut the L1 hit latency");
        // A DRAM-bound stream's average must clearly exceed the L1 latency.
        assert!(avg > 8.0, "a cold stream must show off-chip latency, got {avg}");
    }

    #[test]
    fn bandwidth_bound_timing_lowers_streaming_ipc() {
        // The same stream under a throttled DRAM admission queue must retire
        // slower and expose a higher average memory latency.
        let trace = stream_trace(4_000, 6);
        let run_with = |timing: memsys::TimingParams| {
            let config = SystemConfig::with_timing(1, timing);
            let controller =
                PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::NoPrefetching);
            let mut core = CoreModel::new(0, &config, controller);
            let mut hier = Hierarchy::new(config.hierarchy.clone());
            for r in &trace {
                core.step(r, &mut hier);
            }
            core.report("stream", &hier)
        };
        let fast = run_with(memsys::TimingParams::latency_sensitive());
        let slow = run_with(memsys::TimingParams::bandwidth_bound());
        assert!(
            slow.ipc < fast.ipc * 0.9,
            "bandwidth-bound drain must cost IPC ({} vs {})",
            slow.ipc,
            fast.ipc
        );
        assert!(slow.avg_mem_latency() > fast.avg_mem_latency());
        assert!(slow.timing.dram_queue_cycles > fast.timing.dram_queue_cycles);
    }

    #[test]
    fn instructions_account_for_gaps() {
        let trace = stream_trace(100, 9);
        let report = run(SelectionAlgorithm::NoPrefetching, &trace);
        assert_eq!(report.instructions, 100 * 10);
        assert_eq!(report.workload, "test");
        assert_eq!(report.selector, "NoPrefetch");
    }

    #[test]
    fn ipc_is_derived_from_the_reported_cycle_count() {
        // The report's `ipc` and `cycles` must agree exactly: a consumer
        // recomputing instructions / cycles from the (integer) JSON fields
        // reproduces the report's own `ipc`.
        for gap in [2u32, 20, 60] {
            let report = run(SelectionAlgorithm::Alecto, &stream_trace(2_000, gap));
            let recomputed = report.instructions as f64 / report.cycles as f64;
            assert!(
                (report.ipc - recomputed).abs() < 1e-12,
                "ipc {} must equal instructions/cycles {recomputed}",
                report.ipc
            );
        }
    }

    #[test]
    fn load_queue_never_exceeds_capacity() {
        // The queue frees the earliest-completing entry on a stall and never
        // transiently holds more than `load_queue` completions.
        let config = SystemConfig::skylake_like(1);
        let controller =
            PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::NoPrefetching);
        let mut core = CoreModel::new(0, &config, controller);
        let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
        // Zero-gap DRAM-bound loads keep the queue saturated.
        for r in &stream_trace(4_000, 0) {
            core.step(r, &mut hier);
            assert!(
                core.inflight_loads.len() <= config.load_queue,
                "load queue holds {} entries, capacity {}",
                core.inflight_loads.len(),
                config.load_queue
            );
        }
    }

    #[test]
    fn chain_table_len_stays_bounded_on_a_million_distinct_pcs() {
        // RSS proxy for the unbounded-growth regression: a synthetic stream
        // of 1M distinct dependent PCs must leave the map at its fixed
        // capacity, not at 1M entries.
        let mut table = ChainTable::new(CHAIN_TABLE_CAPACITY);
        for pc in 0..1_000_000u64 {
            table.insert(pc, pc as f64);
            assert!(table.len() <= CHAIN_TABLE_CAPACITY);
        }
        assert_eq!(table.len(), CHAIN_TABLE_CAPACITY);
        // FIFO eviction: the oldest keys are gone, the newest survive.
        assert!(table.get(0).is_none());
        assert!(table.get(999_999).is_some());
        // Updating an existing key neither grows the map nor evicts.
        table.insert(999_999, 1.0);
        assert_eq!(table.len(), CHAIN_TABLE_CAPACITY);
        assert_eq!(table.get(999_999), Some(1.0));
    }

    #[test]
    fn dependent_stream_with_many_pcs_keeps_the_core_chain_bounded() {
        // End-to-end flavour of the same regression: distinct dependent PCs
        // flowing through `step` must not grow core state without bound.
        let config = SystemConfig::skylake_like(1);
        let controller =
            PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::NoPrefetching);
        let mut core = CoreModel::new(0, &config, controller);
        let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
        let distinct = u64::try_from(CHAIN_TABLE_CAPACITY).unwrap() * 3;
        for i in 0..distinct {
            let r = MemoryRecord::dependent_load(Pc::new(i * 4), Addr::new(0x10_0000 + i * 64), 2);
            core.step(&r, &mut hier);
        }
        assert_eq!(core.chain_table_len(), CHAIN_TABLE_CAPACITY);
        assert!(core.instructions() == distinct * 3);
    }

    #[test]
    fn report_contains_prefetcher_breakdown() {
        let report = run(SelectionAlgorithm::Ipcp, &stream_trace(1_000, 4));
        assert_eq!(report.prefetchers.len(), 3);
        assert!(report.prefetchers.iter().any(|p| p.stats.trainings > 0));
        assert!(report.training_occurrences > 0);
        assert!(report.prefetches_issued > 0);
    }
}
