//! Factory for the prefetcher-selection algorithms evaluated in the paper.

use alecto::{AlectoConfig, AlectoSelector};
use selectors::{
    BanditSelector, DolSelector, IpcpSelector, PpfFilterSelector, Selector, TriangelFilterSelector,
};

/// Which prefetcher-selection algorithm to run.
///
/// Each variant corresponds to one of the schemes compared in the paper's
/// evaluation; `NoPrefetching` is the normalisation baseline of every speedup
/// figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionAlgorithm {
    /// Prefetching disabled entirely (the speedup baseline).
    NoPrefetching,
    /// IPCP static output prioritisation.
    Ipcp,
    /// DOL sequential demand-request passing.
    Dol,
    /// Bandit with per-prefetcher degree 0 or 3.
    Bandit3,
    /// Bandit with per-prefetcher degree 0 or 6.
    Bandit6,
    /// The extended-arm Bandit of §VI-H (degrees 0, c, ..., c+M+1).
    BanditExtended,
    /// Alecto with the paper's default parameters.
    Alecto,
    /// Alecto with the fixed IA degree of the §VII-A ablation.
    AlectoFixedDegree(u32),
    /// IPCP plus the aggressive PPF perceptron filter (§VII-C).
    PpfAggressive,
    /// IPCP plus the conservative PPF perceptron filter (§VII-C).
    PpfConservative,
    /// Triangel-style temporal training management (Fig. 13).
    Triangel,
}

impl SelectionAlgorithm {
    /// Display label used in harness tables (matches the paper's legends).
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            SelectionAlgorithm::NoPrefetching => "NoPrefetch",
            SelectionAlgorithm::Ipcp => "IPCP",
            SelectionAlgorithm::Dol => "DOL",
            SelectionAlgorithm::Bandit3 => "Bandit3",
            SelectionAlgorithm::Bandit6 => "Bandit6",
            SelectionAlgorithm::BanditExtended => "BanditExt",
            SelectionAlgorithm::Alecto => "Alecto",
            SelectionAlgorithm::AlectoFixedDegree(_) => "Alecto_fix",
            SelectionAlgorithm::PpfAggressive => "IPCP+PPF_Agg",
            SelectionAlgorithm::PpfConservative => "IPCP+PPF_Con",
            SelectionAlgorithm::Triangel => "Triangel",
        }
    }

    /// The five algorithms compared in the main single-core figures
    /// (Figs. 8, 9, 11, 15, 16, 17).
    #[must_use]
    pub const fn main_comparison() -> [SelectionAlgorithm; 5] {
        [
            SelectionAlgorithm::Ipcp,
            SelectionAlgorithm::Dol,
            SelectionAlgorithm::Bandit3,
            SelectionAlgorithm::Bandit6,
            SelectionAlgorithm::Alecto,
        ]
    }
}

/// Builds the selector instance for `algorithm` scheduling `prefetcher_count`
/// prefetchers. Returns `None` for [`SelectionAlgorithm::NoPrefetching`].
#[must_use]
pub fn build_selector(
    algorithm: SelectionAlgorithm,
    prefetcher_count: usize,
) -> Option<Box<dyn Selector>> {
    match algorithm {
        SelectionAlgorithm::NoPrefetching => None,
        SelectionAlgorithm::Ipcp => Some(Box::new(IpcpSelector::default_config())),
        SelectionAlgorithm::Dol => Some(Box::new(DolSelector::default_config())),
        SelectionAlgorithm::Bandit3 => Some(Box::new(BanditSelector::bandit3(prefetcher_count))),
        SelectionAlgorithm::Bandit6 => Some(Box::new(BanditSelector::bandit6(prefetcher_count))),
        SelectionAlgorithm::BanditExtended => {
            let cfg = AlectoConfig::default();
            Some(Box::new(BanditSelector::extended(
                cfg.conservative_degree,
                cfg.max_aggressive,
                prefetcher_count,
            )))
        }
        SelectionAlgorithm::Alecto => {
            Some(Box::new(AlectoSelector::new(AlectoConfig::default(), prefetcher_count)))
        }
        SelectionAlgorithm::AlectoFixedDegree(degree) => Some(Box::new(AlectoSelector::new(
            AlectoConfig::fixed_degree(degree),
            prefetcher_count,
        ))),
        SelectionAlgorithm::PpfAggressive => Some(Box::new(PpfFilterSelector::aggressive())),
        SelectionAlgorithm::PpfConservative => Some(Box::new(PpfFilterSelector::conservative())),
        SelectionAlgorithm::Triangel => Some(Box::new(TriangelFilterSelector::default_config())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetching_builds_nothing() {
        assert!(build_selector(SelectionAlgorithm::NoPrefetching, 3).is_none());
    }

    #[test]
    fn every_other_algorithm_builds_a_selector() {
        let algos = [
            SelectionAlgorithm::Ipcp,
            SelectionAlgorithm::Dol,
            SelectionAlgorithm::Bandit3,
            SelectionAlgorithm::Bandit6,
            SelectionAlgorithm::BanditExtended,
            SelectionAlgorithm::Alecto,
            SelectionAlgorithm::AlectoFixedDegree(6),
            SelectionAlgorithm::PpfAggressive,
            SelectionAlgorithm::PpfConservative,
            SelectionAlgorithm::Triangel,
        ];
        for a in algos {
            let s = build_selector(a, 3).expect("selector should be built");
            assert_eq!(s.name(), a.label(), "label should match the selector name for {a:?}");
            assert!(s.storage_bits() > 0);
        }
    }

    #[test]
    fn main_comparison_has_five_entries_ending_with_alecto() {
        let m = SelectionAlgorithm::main_comparison();
        assert_eq!(m.len(), 5);
        assert_eq!(m[4], SelectionAlgorithm::Alecto);
    }

    #[test]
    fn alecto_storage_much_smaller_than_extended_bandit() {
        let alecto = build_selector(SelectionAlgorithm::Alecto, 3).unwrap();
        let ext = build_selector(SelectionAlgorithm::BanditExtended, 3).unwrap();
        // §VI-H: extended Bandit needs 4 KB, about 5.4× Alecto's requirement
        // (excluding the sandbox) and ~3× including it.
        assert!(ext.storage_bits() > 2 * alecto.storage_bits());
    }
}
