//! Result structures produced by a simulation run.

use memsys::{CacheStats, DramStats, PrefetchQuality, TimingStats};
use prefetch::TableStats;

/// Per-prefetcher metadata-table statistics with the prefetcher's name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetcherReport {
    /// Prefetcher display name (`"GS"`, `"CS"`, ...).
    pub name: String,
    /// Table statistics accumulated over the run.
    pub stats: TableStats,
}

/// Results of one core over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreReport {
    /// Workload (benchmark) name.
    pub workload: String,
    /// Selection algorithm name.
    pub selector: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Cycle accounting over the demand stream: access count, summed
    /// load-to-use latency, and the MSHR/DRAM-queue stall breakdown.
    pub timing: TimingStats,
    /// L1D statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Prefetch quality breakdown (Fig. 10).
    pub quality: PrefetchQuality,
    /// Per-prefetcher table statistics.
    pub prefetchers: Vec<PrefetcherReport>,
    /// Total prefetcher training occurrences (Fig. 18 energy proxy).
    pub training_occurrences: u64,
    /// Total prefetcher table misses (Fig. 1).
    pub table_misses: u64,
    /// Prefetch requests issued to the memory system.
    pub prefetches_issued: u64,
    /// Branch mispredicts per kilo-instruction. `None` for core models
    /// without a branch predictor (the Approx preset) — emitted as `null` in
    /// alecto-bench-v2 so old reports and the `compare` gate keep parsing.
    pub branch_mpki: Option<f64>,
    /// Mean reorder-buffer occupancy in entries, sampled once per record.
    /// `None` for core models without an explicit ROB (the Approx preset).
    pub rob_occupancy: Option<f64>,
}

impl CoreReport {
    /// Misses per kilo-instruction at the L1D (memory-intensity indicator).
    #[must_use]
    pub fn l1_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.l1.demand_misses as f64 / self.instructions as f64
        }
    }

    /// Average load-to-use latency per demand access, in cycles (0 when the
    /// core performed no memory accesses).
    #[must_use]
    pub fn avg_mem_latency(&self) -> f64 {
        self.timing.avg_demand_latency()
    }
}

/// Results of a full system run (all cores plus shared resources).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Selection algorithm name.
    pub selector: String,
    /// Composite prefetcher label.
    pub composite: String,
    /// Per-core results.
    pub cores: Vec<CoreReport>,
    /// Shared L3 statistics.
    pub l3: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Storage overhead of the selection hardware in bits.
    pub selector_storage_bits: u64,
}

impl SystemReport {
    /// Geometric-mean IPC across cores (`None` for an empty system).
    #[must_use]
    pub fn geomean_ipc(&self) -> Option<f64> {
        let ipcs: Vec<f64> = self.cores.iter().map(|c| c.ipc).collect();
        alecto_types::geomean(&ipcs)
    }

    /// Total simulated cycles of the run: the system is done when its
    /// slowest core retires the last instruction.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).max().unwrap_or(0)
    }

    /// Total instructions retired across all cores.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate cycle accounting across all cores.
    #[must_use]
    pub fn total_timing(&self) -> TimingStats {
        let mut t = TimingStats::default();
        for c in &self.cores {
            t.merge(&c.timing);
        }
        t
    }

    /// Average load-to-use latency per demand access across all cores, in
    /// cycles (0 when the run performed no memory accesses).
    #[must_use]
    pub fn avg_mem_latency(&self) -> f64 {
        self.total_timing().avg_demand_latency()
    }

    /// Aggregate prefetch quality across all cores.
    #[must_use]
    pub fn total_quality(&self) -> PrefetchQuality {
        let mut q = PrefetchQuality::default();
        for c in &self.cores {
            q.merge(&c.quality);
        }
        q
    }

    /// Total prefetcher training occurrences across all cores.
    #[must_use]
    pub fn total_training_occurrences(&self) -> u64 {
        self.cores.iter().map(|c| c.training_occurrences).sum()
    }

    /// Total prefetcher table misses across all cores (Fig. 1).
    #[must_use]
    pub fn total_table_misses(&self) -> u64 {
        self.cores.iter().map(|c| c.table_misses).sum()
    }

    /// Instruction-count-weighted mean of the per-core branch MPKI, `None`
    /// when no core carries the metric (every Approx-preset run).
    #[must_use]
    pub fn avg_branch_mpki(&self) -> Option<f64> {
        weighted_mean(self.cores.iter().filter_map(|c| c.branch_mpki.map(|v| (v, c.instructions))))
    }

    /// Instruction-count-weighted mean of the per-core ROB occupancy, `None`
    /// when no core carries the metric (every Approx-preset run).
    #[must_use]
    pub fn avg_rob_occupancy(&self) -> Option<f64> {
        weighted_mean(
            self.cores.iter().filter_map(|c| c.rob_occupancy.map(|v| (v, c.instructions))),
        )
    }

    /// Per-prefetcher training occurrences summed over cores, keyed by name
    /// (Fig. 18's x-axis).
    #[must_use]
    pub fn trainings_by_prefetcher(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for core in &self.cores {
            for p in &core.prefetchers {
                match out.iter_mut().find(|(n, _)| *n == p.name) {
                    Some((_, t)) => *t += p.stats.trainings,
                    None => out.push((p.name.clone(), p.stats.trainings)),
                }
            }
        }
        out
    }
}

/// Weighted arithmetic mean over `(value, weight)` pairs; `None` when no pair
/// contributes (or every weight is zero).
fn weighted_mean(pairs: impl Iterator<Item = (f64, u64)>) -> Option<f64> {
    let (mut sum, mut weight) = (0.0f64, 0u64);
    for (v, w) in pairs {
        sum += v * w as f64;
        weight += w;
    }
    if weight == 0 {
        None
    } else {
        Some(sum / weight as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_core(ipc: f64, trainings: u64) -> CoreReport {
        CoreReport {
            workload: "w".into(),
            selector: "s".into(),
            instructions: 1000,
            cycles: 500,
            ipc,
            timing: TimingStats {
                demand_accesses: 100,
                demand_latency_cycles: 2_000,
                mshr_stall_cycles: 40,
                dram_queue_cycles: 60,
            },
            l1: CacheStats { demand_misses: 50, demand_hits: 950, ..Default::default() },
            l2: CacheStats::default(),
            quality: PrefetchQuality {
                covered_timely: 10,
                covered_untimely: 5,
                uncovered: 5,
                overpredicted: 2,
            },
            prefetchers: vec![PrefetcherReport {
                name: "GS".into(),
                stats: TableStats { trainings, ..Default::default() },
            }],
            training_occurrences: trainings,
            table_misses: 7,
            prefetches_issued: 17,
            branch_mpki: None,
            rob_occupancy: None,
        }
    }

    #[test]
    fn mpki_computation() {
        let c = dummy_core(1.0, 10);
        assert!((c.l1_mpki() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn avg_mem_latency_per_core_and_aggregate() {
        let c = dummy_core(1.0, 10);
        assert!((c.avg_mem_latency() - 20.0).abs() < 1e-9);
        let empty = CoreReport { timing: TimingStats::default(), ..dummy_core(1.0, 0) };
        assert_eq!(empty.avg_mem_latency(), 0.0);
        let second_timing = TimingStats {
            demand_accesses: 300,
            demand_latency_cycles: 600,
            mshr_stall_cycles: 1,
            dram_queue_cycles: 2,
        };
        let report = SystemReport {
            selector: "Alecto".into(),
            composite: "GS+CS+PMP".into(),
            cores: vec![
                CoreReport { cycles: 400, ..dummy_core(1.0, 1) },
                CoreReport { timing: second_timing, ..dummy_core(2.0, 1) },
            ],
            l3: CacheStats::default(),
            dram: DramStats::default(),
            selector_storage_bits: 0,
        };
        assert_eq!(report.total_cycles(), 500);
        assert_eq!(report.total_instructions(), 2000);
        assert_eq!(report.total_timing().demand_accesses, 400);
        // (2000 + 600) cycles over (100 + 300) accesses.
        assert!((report.avg_mem_latency() - 6.5).abs() < 1e-9);
    }

    #[test]
    fn system_aggregations() {
        let report = SystemReport {
            selector: "Alecto".into(),
            composite: "GS+CS+PMP".into(),
            cores: vec![dummy_core(1.0, 10), dummy_core(4.0, 30)],
            l3: CacheStats::default(),
            dram: DramStats::default(),
            selector_storage_bits: 100,
        };
        assert!((report.geomean_ipc().unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(report.total_training_occurrences(), 40);
        assert_eq!(report.total_table_misses(), 14);
        let q = report.total_quality();
        assert_eq!(q.covered_timely, 20);
        let by_pf = report.trainings_by_prefetcher();
        assert_eq!(by_pf, vec![("GS".to_string(), 40)]);
    }

    #[test]
    fn pipeline_metrics_aggregate_only_when_present() {
        let mut report = SystemReport {
            selector: "Alecto".into(),
            composite: "GS+CS+PMP".into(),
            cores: vec![dummy_core(1.0, 0), dummy_core(2.0, 0)],
            l3: CacheStats::default(),
            dram: DramStats::default(),
            selector_storage_bits: 0,
        };
        // Approx-style reports: every core null, so the aggregate is null.
        assert_eq!(report.avg_branch_mpki(), None);
        assert_eq!(report.avg_rob_occupancy(), None);
        // Weighted by instructions: 2.0 over 1000 instr + 4.0 over 3000.
        report.cores[0].branch_mpki = Some(2.0);
        report.cores[1].branch_mpki = Some(4.0);
        report.cores[1].instructions = 3000;
        let mpki = report.avg_branch_mpki().expect("present");
        assert!((mpki - 3.5).abs() < 1e-9, "weighted mean, got {mpki}");
        // A lone core carrying the metric dominates the aggregate.
        report.cores[0].rob_occupancy = Some(128.0);
        assert_eq!(report.avg_rob_occupancy(), Some(128.0));
    }
}
