//! Load/store queue of the out-of-order core.
//!
//! Loads issue to the memory hierarchy as soon as their queue entry
//! allocates, so outstanding misses overlap up to the LQ size (and, inside
//! `memsys`, up to the MSHR limits) — this is where the model earns its
//! memory-level parallelism. A full queue stalls allocation until the
//! earliest-completing outstanding access returns; for loads that wake-up
//! time is re-queried live from the hierarchy's per-access completion probe
//! ([`memsys::Hierarchy::outstanding_completion`]) with the completion
//! recorded at issue as the fallback once the fill has left the MSHRs.

use std::collections::VecDeque;

use alecto_types::LineAddr;
use memsys::Hierarchy;

/// An outstanding load: the line it fetches and the completion recorded when
/// the access issued.
#[derive(Debug, Clone, Copy)]
struct LoadEntry {
    line: LineAddr,
    completion: u64,
}

/// Fixed-capacity load and store queues, integer cycles.
#[derive(Debug)]
pub struct LoadStoreQueue {
    load_capacity: usize,
    store_capacity: usize,
    loads: VecDeque<LoadEntry>,
    stores: VecDeque<u64>,
}

impl LoadStoreQueue {
    /// Creates queues of `load_capacity` / `store_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn new(load_capacity: usize, store_capacity: usize) -> Self {
        assert!(load_capacity > 0, "load queue needs at least one entry");
        assert!(store_capacity > 0, "store queue needs at least one entry");
        Self {
            load_capacity,
            store_capacity,
            loads: VecDeque::with_capacity(load_capacity.min(128)),
            stores: VecDeque::with_capacity(store_capacity.min(128)),
        }
    }

    /// Earliest cycle `>= now` at which a load-queue entry is free.
    ///
    /// Completed entries free their slots first; while the queue is still
    /// full, allocation waits for the earliest-completing outstanding load,
    /// asking the hierarchy's completion probe for the access's live
    /// completion (fills still in an MSHR) and falling back to the completion
    /// recorded at issue.
    pub fn load_slot_ready(&mut self, now: u64, hierarchy: &Hierarchy, core: usize) -> u64 {
        let mut now = now;
        self.loads.retain(|e| e.completion > now);
        while self.loads.len() >= self.load_capacity {
            let (idx, earliest) = self
                .loads
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    let live =
                        hierarchy.outstanding_completion(core, e.line, now).unwrap_or(e.completion);
                    (i, live)
                })
                .fold((0, u64::MAX), |best, (i, c)| if c < best.1 { (i, c) } else { best });
            now = now.max(earliest);
            self.loads.remove(idx);
        }
        now
    }

    /// Earliest cycle `>= now` at which a store-queue entry is free. Stores
    /// drain post-commit; only the structural limit stalls allocation.
    pub fn store_slot_ready(&mut self, now: u64) -> u64 {
        let mut now = now;
        self.stores.retain(|&c| c > now);
        while self.stores.len() >= self.store_capacity {
            let (idx, earliest) = self
                .stores
                .iter()
                .copied()
                .enumerate()
                .fold((0, u64::MAX), |best, (i, c)| if c < best.1 { (i, c) } else { best });
            now = now.max(earliest);
            self.stores.remove(idx);
        }
        now
    }

    /// Records an issued load fetching `line`, completing at `completion`.
    pub fn push_load(&mut self, line: LineAddr, completion: u64) {
        self.loads.push_back(LoadEntry { line, completion });
    }

    /// Records an issued store completing at `completion`.
    pub fn push_store(&mut self, completion: u64) {
        self.stores.push_back(completion);
    }

    /// Outstanding loads (exposed for capacity assertions in tests).
    #[must_use]
    pub fn loads_outstanding(&self) -> usize {
        self.loads.len()
    }

    /// Outstanding stores.
    #[must_use]
    pub fn stores_outstanding(&self) -> usize {
        self.stores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::HierarchyParams;

    fn empty_hierarchy() -> Hierarchy {
        Hierarchy::new(HierarchyParams::skylake_like(1))
    }

    #[test]
    fn free_slots_do_not_stall() {
        let hier = empty_hierarchy();
        let mut lsq = LoadStoreQueue::new(2, 2);
        assert_eq!(lsq.load_slot_ready(10, &hier, 0), 10);
        lsq.push_load(LineAddr::new(1), 50);
        assert_eq!(lsq.load_slot_ready(10, &hier, 0), 10);
        assert_eq!(lsq.loads_outstanding(), 1);
    }

    #[test]
    fn full_load_queue_waits_for_the_earliest_completion() {
        let hier = empty_hierarchy();
        let mut lsq = LoadStoreQueue::new(2, 2);
        lsq.push_load(LineAddr::new(1), 200);
        lsq.push_load(LineAddr::new(2), 90);
        // Queue full at cycle 10: the entry completing at 90 frees first,
        // even though it was allocated last.
        assert_eq!(lsq.load_slot_ready(10, &hier, 0), 90);
        assert_eq!(lsq.loads_outstanding(), 1);
    }

    #[test]
    fn completed_loads_free_their_slots_first() {
        let hier = empty_hierarchy();
        let mut lsq = LoadStoreQueue::new(2, 2);
        lsq.push_load(LineAddr::new(1), 20);
        lsq.push_load(LineAddr::new(2), 30);
        // By cycle 40 both completed: no stall, queue empty.
        assert_eq!(lsq.load_slot_ready(40, &hier, 0), 40);
        assert_eq!(lsq.loads_outstanding(), 0);
    }

    #[test]
    fn live_probe_overrides_the_recorded_completion() {
        let mut hier = empty_hierarchy();
        // A real outstanding miss in the hierarchy for line 0x100...
        let r = hier.demand_access(0, LineAddr::new(0x100), 0);
        let live = hier
            .outstanding_completion(0, LineAddr::new(0x100), 1)
            .expect("the miss is outstanding in an MSHR");
        assert!(live <= r.completion_cycle, "the MSHR fill precedes end-to-end completion");
        let mut lsq = LoadStoreQueue::new(1, 1);
        // ...recorded in the LSQ with a (stale) pessimistic completion. The
        // probe's live answer wins.
        lsq.push_load(LineAddr::new(0x100), r.completion_cycle + 1_000);
        assert_eq!(lsq.load_slot_ready(1, &hier, 0), live);
    }

    #[test]
    fn store_queue_stalls_independently() {
        let mut lsq = LoadStoreQueue::new(1, 1);
        lsq.push_store(70);
        assert_eq!(lsq.store_slot_ready(5), 70);
        assert_eq!(lsq.stores_outstanding(), 0);
        lsq.push_store(80);
        assert_eq!(lsq.store_slot_ready(90), 90);
    }
}
