//! The multi-core system driver: one [`CoreEngine`] per core (the timing
//! model [`SystemConfig::core_model`] selects, driven through the
//! [`CoreTiming`] trait), a shared [`memsys::Hierarchy`], and a
//! round-robin-by-time scheduler that keeps the cores in rough lockstep so
//! that shared-resource contention (L3, DRAM channels) is modelled
//! faithfully.
//!
//! # The batched producer/consumer pipeline
//!
//! Record production (trace generation, `.altr` decode) and record
//! consumption (the timing model) are separable: producers only decide
//! *where* each core's records come from, never the order the drive loop
//! consumes them in. [`DriveOptions`] exposes that split — records move from
//! sources to the drive loop in batches, optionally produced on background
//! threads feeding bounded per-core queues — and the serial min-time merge in
//! `System::drive` stays untouched, so every batch size × producer count
//! combination yields byte-identical reports (pinned by the determinism
//! suite).

use std::fmt;
use std::sync::mpsc;
use std::thread;

use alecto_types::{MemoryRecord, TraceSource, Workload};
use memsys::Hierarchy;
use prefetch::CompositeKind;

use crate::config::SystemConfig;
use crate::controller::PrefetchController;
use crate::core_timing::{CoreEngine, CoreTiming};
use crate::metrics::SystemReport;
use crate::selection::SelectionAlgorithm;

/// Records per batch moved from a producer to the drive loop when no other
/// size is requested. Matches the `.altr` block size, so a batch of a
/// replayed trace is one decoded block.
pub const DEFAULT_BATCH_RECORDS: usize = 4096;

/// Batches a producer may buffer ahead of the drive loop, per core. Bounds
/// the memory of a run at `cores × queue × batch` records while letting
/// producers stay ahead of the consumer.
const PRODUCER_QUEUE_BATCHES: usize = 4;

/// Validation error from [`System::run_sources`]: the run cannot start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The source list was empty — there is nothing to assign to the cores.
    NoSources,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSources => f.write_str("at least one workload is required"),
        }
    }
}

impl std::error::Error for RunError {}

/// Execution knobs for a run: how records move from the sources to the drive
/// loop. These change wall-clock behaviour only, never simulated results —
/// which is why they are deliberately *not* part of [`SystemConfig`] (whose
/// `Debug` rendering feeds the harness cell cache key) and are never folded
/// into trace fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOptions {
    /// Records per batch handed from a producer to the drive loop (min 1).
    /// Batching amortises per-record iterator dispatch; concatenating the
    /// batches reproduces the per-record stream exactly.
    pub batch_records: usize,
    /// Background producer threads generating/decoding record batches, one
    /// per core up to the core count (`0` produces inline on the driving
    /// thread). Each producer feeds a bounded queue the drive loop consumes
    /// in the usual deterministic timestamp-order merge.
    pub producer_threads: usize,
}

impl DriveOptions {
    /// The default execution knobs (batched, inline production).
    #[must_use]
    pub const fn new() -> Self {
        Self { batch_records: DEFAULT_BATCH_RECORDS, producer_threads: 0 }
    }
}

impl Default for DriveOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// A complete simulated system.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    algorithm: SelectionAlgorithm,
    composite: CompositeKind,
    hierarchy: Hierarchy,
    cores: Vec<CoreEngine>,
}

impl System {
    /// Builds a system with `config`, running `algorithm` over `composite` on
    /// every core.
    #[must_use]
    pub fn new(
        config: SystemConfig,
        algorithm: SelectionAlgorithm,
        composite: CompositeKind,
    ) -> Self {
        let hierarchy = Hierarchy::new(config.hierarchy.clone());
        let cores = (0..config.cores)
            .map(|id| CoreEngine::new(id, &config, PrefetchController::new(composite, algorithm)))
            .collect();
        Self { config, algorithm, composite, hierarchy, cores }
    }

    /// Configuration in use.
    #[must_use]
    pub const fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The selection algorithm being simulated.
    #[must_use]
    pub const fn algorithm(&self) -> SelectionAlgorithm {
        self.algorithm
    }

    /// Runs the system to completion over one workload per core and returns
    /// the report. Workloads are assigned to cores in order; if fewer
    /// workloads than cores are provided, the assignment wraps around
    /// (homogeneous mixes simply pass a single workload).
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    pub fn run(&mut self, workloads: &[Workload]) -> SystemReport {
        assert!(!workloads.is_empty(), "at least one workload is required");
        let names: Vec<&str> =
            (0..self.cores.len()).map(|i| workloads[i % workloads.len()].name.as_str()).collect();
        let streams: Vec<RecordStream<'_>> = (0..self.cores.len())
            .map(|i| {
                Box::new(workloads[i % workloads.len()].records.iter().copied()) as RecordStream<'_>
            })
            .collect();
        self.drive(&names, streams)
    }

    /// Streaming counterpart of [`System::run`]: one lazy [`TraceSource`]
    /// per core (wrapping around like `run`), generating records on demand —
    /// O(1) trace memory however long the run. Produces exactly the report
    /// `run` would produce over the materialised workloads.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::NoSources`] if `sources` is empty.
    pub fn run_sources(&mut self, sources: &[TraceSource]) -> Result<SystemReport, RunError> {
        self.run_sources_with(sources, DriveOptions::default())
    }

    /// [`System::run_sources`] with explicit execution knobs. Whatever the
    /// batch size or producer count, the drive loop consumes the identical
    /// per-core record sequences in the identical deterministic merge order,
    /// so the report is byte-identical to `run_sources` — `options` trades
    /// wall-clock for threads, nothing else.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::NoSources`] if `sources` is empty.
    pub fn run_sources_with(
        &mut self,
        sources: &[TraceSource],
        options: DriveOptions,
    ) -> Result<SystemReport, RunError> {
        if sources.is_empty() {
            return Err(RunError::NoSources);
        }
        let names: Vec<&str> =
            (0..self.cores.len()).map(|i| sources[i % sources.len()].name()).collect();
        let batch = options.batch_records.max(1);
        let producers = options.producer_threads.min(self.cores.len());
        // Each core replays its own iterator, even when several cores share
        // one source (homogeneous mixes).
        if producers == 0 {
            let streams: Vec<RecordStream<'_>> = (0..self.cores.len())
                .map(|i| {
                    Box::new(sources[i % sources.len()].record_batches(batch).flatten())
                        as RecordStream<'_>
                })
                .collect();
            return Ok(self.drive(&names, streams));
        }
        // The first `producers` cores get a dedicated background producer
        // feeding a bounded batch queue; any remaining cores produce inline.
        // Producers are independent per core, so the consumer blocking on one
        // core's queue can never deadlock another core's producer.
        let report = thread::scope(|scope| {
            let streams: Vec<RecordStream<'_>> = (0..self.cores.len())
                .map(|i| {
                    let batches = sources[i % sources.len()].record_batches(batch);
                    if i < producers {
                        let (tx, rx) = mpsc::sync_channel(PRODUCER_QUEUE_BATCHES);
                        scope.spawn(move || {
                            for b in batches {
                                // The drive loop always drains every stream,
                                // so a send only fails if it panicked.
                                if tx.send(b).is_err() {
                                    break;
                                }
                            }
                        });
                        Box::new(rx.into_iter().flatten()) as RecordStream<'_>
                    } else {
                        Box::new(batches.flatten()) as RecordStream<'_>
                    }
                })
                .collect();
            self.drive(&names, streams)
        });
        Ok(report)
    }

    /// Advances the core with the smallest local time that still has trace
    /// left, so cores interleave their accesses to the shared levels in
    /// approximate timestamp order. Only one record per core is ever held in
    /// memory — the whole point of the streaming data path.
    fn drive(&mut self, names: &[&str], mut streams: Vec<RecordStream<'_>>) -> SystemReport {
        // Single-core fast path: with one stream the min-time merge always
        // selects core 0, so step straight through the records and skip the
        // per-record scan and pending-slot juggling entirely. Byte-identical
        // to the general loop below by construction.
        if self.cores.len() == 1 {
            let stream = streams.pop().expect("one stream per core");
            let core = &mut self.cores[0];
            for record in stream {
                core.step(&record, &mut self.hierarchy);
            }
            return self.assemble_report(names);
        }
        let mut pending: Vec<Option<MemoryRecord>> =
            streams.iter_mut().map(Iterator::next).collect();
        loop {
            let mut next: Option<usize> = None;
            let mut best_time = f64::INFINITY;
            for (i, core) in self.cores.iter().enumerate() {
                if pending[i].is_some() {
                    let t = core.current_time();
                    if t < best_time {
                        best_time = t;
                        next = Some(i);
                    }
                }
            }
            let Some(i) = next else { break };
            let record = pending[i].take().expect("selected core has a pending record");
            pending[i] = streams[i].next();
            self.cores[i].step(&record, &mut self.hierarchy);
        }
        self.assemble_report(names)
    }

    fn assemble_report(&self, names: &[&str]) -> SystemReport {
        SystemReport {
            selector: self.cores.first().map_or_else(
                || "NoPrefetch".to_string(),
                |c| c.controller().selector_name().to_string(),
            ),
            composite: self.composite.label(),
            cores: self
                .cores
                .iter()
                .enumerate()
                .map(|(i, core)| core.report(names[i], &self.hierarchy))
                .collect(),
            l3: *self.hierarchy.l3_stats(),
            dram: *self.hierarchy.dram_stats(),
            selector_storage_bits: self
                .cores
                .first()
                .map_or(0, |c| c.controller().selector_storage_bits()),
        }
    }
}

/// One core's record feed during a run (borrowed from the workload slice or
/// minted by a [`TraceSource`] factory).
type RecordStream<'a> = Box<dyn Iterator<Item = MemoryRecord> + 'a>;

// The parallel experiment engine builds a `System` from a shared
// `&SystemConfig` on a worker thread and sends the `SystemReport` back, so
// all three must be `Send` (and the inputs `Sync`). Asserting it here keeps
// the whole dependency tree honest: reintroducing an `Rc`, a raw pointer or
// a non-`Send` trait object anywhere below breaks the build, not the harness.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<System>();
    assert_send::<SystemConfig>();
    assert_sync::<SystemConfig>();
    assert_send::<SystemReport>();
    assert_sync::<SystemReport>();
    assert_send::<Workload>();
    assert_sync::<Workload>();
    assert_send::<TraceSource>();
    assert_sync::<TraceSource>();
};

/// Convenience helper: run `algorithm` on a single-core system over one
/// workload and return the report. Used heavily by the harness and tests.
#[must_use]
pub fn run_single_core(
    config: SystemConfig,
    algorithm: SelectionAlgorithm,
    composite: CompositeKind,
    workload: &Workload,
) -> SystemReport {
    let mut system = System::new(config, algorithm, composite);
    system.run(std::slice::from_ref(workload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::{Addr, MemoryRecord, Pc};

    fn stream_workload(n: u64, name: &str) -> Workload {
        let records = (0..n)
            .map(|i| MemoryRecord::load(Pc::new(0x400), Addr::new(0x40_0000 + i * 64), 6))
            .collect();
        Workload::new(name, records, true)
    }

    #[test]
    fn single_core_run_produces_report() {
        let report = run_single_core(
            SystemConfig::skylake_like(1),
            SelectionAlgorithm::Alecto,
            CompositeKind::GsCsPmp,
            &stream_workload(3_000, "stream"),
        );
        assert_eq!(report.cores.len(), 1);
        assert_eq!(report.selector, "Alecto");
        assert_eq!(report.composite, "GS+CS+PMP");
        assert!(report.cores[0].ipc > 0.0);
        assert!(report.dram.accesses > 0);
    }

    #[test]
    fn eight_core_homogeneous_run() {
        let mut system = System::new(
            SystemConfig::skylake_like(8),
            SelectionAlgorithm::Ipcp,
            CompositeKind::GsCsPmp,
        );
        let report = system.run(&[stream_workload(800, "stream")]);
        assert_eq!(report.cores.len(), 8);
        assert!(report.cores.iter().all(|c| c.instructions > 0));
        assert!(report.geomean_ipc().unwrap() > 0.0);
    }

    #[test]
    fn out_of_order_system_runs_and_reports_pipeline_metrics() {
        let config =
            SystemConfig::skylake_like(2).with_core_model(crate::config::CoreModelKind::OutOfOrder);
        let mut system = System::new(config, SelectionAlgorithm::Alecto, CompositeKind::GsCsPmp);
        let report = system.run(&[stream_workload(1_200, "stream")]);
        assert_eq!(report.cores.len(), 2);
        for core in &report.cores {
            assert!(core.ipc > 0.0 && core.ipc.is_finite());
            assert!(core.branch_mpki.is_some());
            assert!(core.rob_occupancy.is_some());
        }
        assert!(report.avg_branch_mpki().is_some());
        assert!(report.avg_rob_occupancy().is_some());
    }

    #[test]
    fn heterogeneous_assignment_wraps_workloads() {
        let mut system = System::new(
            SystemConfig::skylake_like(4),
            SelectionAlgorithm::NoPrefetching,
            CompositeKind::GsCsPmp,
        );
        let a = stream_workload(500, "a");
        let b = stream_workload(700, "b");
        let report = system.run(&[a, b]);
        assert_eq!(report.cores[0].workload, "a");
        assert_eq!(report.cores[1].workload, "b");
        assert_eq!(report.cores[2].workload, "a");
        assert_eq!(report.cores[3].workload, "b");
    }

    #[test]
    fn shared_dram_contention_lowers_multicore_ipc() {
        // The same DRAM-heavy workload run alone vs eight *distinct* copies
        // (each in its own address space, like SPEC-rate): per-core IPC must
        // drop when eight cores fight for the shared L3 and DRAM.
        let make = |core: u64| {
            let records: Vec<MemoryRecord> = (0..2_000)
                .map(|i| {
                    MemoryRecord::load(
                        Pc::new(0x90),
                        Addr::new((core + 1) * (1 << 36) + ((i * 7919) % 100_000) * 4096),
                        2,
                    )
                })
                .collect();
            Workload::new(format!("mem{core}"), records, true)
        };
        let single = run_single_core(
            SystemConfig::skylake_like(1),
            SelectionAlgorithm::NoPrefetching,
            CompositeKind::GsCsPmp,
            &make(0),
        );
        let mut multi = System::new(
            SystemConfig::skylake_like(8),
            SelectionAlgorithm::NoPrefetching,
            CompositeKind::GsCsPmp,
        );
        let copies: Vec<Workload> = (0..8).map(make).collect();
        let multi_report = multi.run(&copies);
        let avg_multi: f64 =
            multi_report.cores.iter().map(|c| c.ipc).sum::<f64>() / multi_report.cores.len() as f64;
        assert!(
            avg_multi < single.cores[0].ipc,
            "8-core contention should lower per-core IPC ({avg_multi} vs {})",
            single.cores[0].ipc
        );
    }

    #[test]
    fn streamed_run_matches_materialised_run() {
        // The same trace fed lazily (TraceSource) and eagerly (Workload)
        // must produce byte-identical reports — single and multi core, with
        // wrap-around assignment sharing one source between cores.
        let mk_source =
            |n: u64, name: &'static str| {
                TraceSource::new(name, true, usize::try_from(n).unwrap(), move || {
                    Box::new((0..n).map(|i| {
                        MemoryRecord::load(Pc::new(0x400), Addr::new(0x40_0000 + i * 64), 6)
                    }))
                })
            };
        for cores in [1usize, 4] {
            let sources = [mk_source(900, "s"), mk_source(500, "t")];
            let workloads: Vec<Workload> = sources.iter().map(TraceSource::collect).collect();
            let mut eager = System::new(
                SystemConfig::skylake_like(cores),
                SelectionAlgorithm::Alecto,
                CompositeKind::GsCsPmp,
            );
            let mut lazy = System::new(
                SystemConfig::skylake_like(cores),
                SelectionAlgorithm::Alecto,
                CompositeKind::GsCsPmp,
            );
            let a = eager.run(&workloads);
            let b = lazy.run_sources(&sources).expect("non-empty sources");
            assert_eq!(a, b, "streamed vs collected reports diverged at {cores} cores");
        }
    }

    #[test]
    fn batched_and_threaded_runs_match_the_default_drive() {
        // Every batch size × producer count must reproduce the default run
        // byte for byte: the knobs move records in bigger units or on other
        // threads, they never reorder the deterministic merge.
        let mk_source =
            |n: u64, name: &'static str| {
                TraceSource::new(name, true, usize::try_from(n).unwrap(), move || {
                    Box::new((0..n).map(|i| {
                        MemoryRecord::load(Pc::new(0x400), Addr::new(0x40_0000 + i * 64), 6)
                    }))
                })
            };
        for cores in [1usize, 4] {
            let sources = [mk_source(900, "s"), mk_source(500, "t")];
            let run_with = |options: DriveOptions| {
                let mut system = System::new(
                    SystemConfig::skylake_like(cores),
                    SelectionAlgorithm::Alecto,
                    CompositeKind::GsCsPmp,
                );
                system.run_sources_with(&sources, options).expect("non-empty sources")
            };
            let reference = run_with(DriveOptions::default());
            for batch_records in [1usize, 7, 4096] {
                for producer_threads in [0usize, 1, 8] {
                    let report = run_with(DriveOptions { batch_records, producer_threads });
                    assert_eq!(
                        report, reference,
                        "batch {batch_records} × producers {producer_threads} diverged \
                         at {cores} cores"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_sources_is_a_validation_error() {
        let mut system = System::new(
            SystemConfig::skylake_like(1),
            SelectionAlgorithm::Alecto,
            CompositeKind::GsCsPmp,
        );
        let err = system.run_sources(&[]).unwrap_err();
        assert_eq!(err, RunError::NoSources);
        assert!(
            err.to_string().contains("at least one workload"),
            "error message should explain the validation failure"
        );
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_workloads_panics() {
        let mut system = System::new(
            SystemConfig::skylake_like(1),
            SelectionAlgorithm::Alecto,
            CompositeKind::GsCsPmp,
        );
        let _ = system.run(&[]);
    }
}
