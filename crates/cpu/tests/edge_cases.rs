//! Degenerate-input edge cases both core timing models must survive: empty
//! traces, instruction gaps at the `u32` ceiling, and a single memory access
//! whose latency dwarfs a full ROB drain. The contract under test is the
//! same for every case — cycles stay finite and at least 1, the per-core
//! clock never runs backwards, and the two presets agree on the instruction
//! accounting.

use alecto_types::{Addr, MemoryRecord, Pc, TraceSource, Workload};
use cpu::{
    CompositeKind, CoreEngine, CoreModelKind, CoreTiming, PrefetchController, SelectionAlgorithm,
    System, SystemConfig,
};
use memsys::{Hierarchy, HierarchyParams};

const BOTH: [CoreModelKind; 2] = [CoreModelKind::Approx, CoreModelKind::OutOfOrder];

fn engine(kind: CoreModelKind) -> (CoreEngine, Hierarchy) {
    let config = SystemConfig::skylake_like(1).with_core_model(kind);
    let controller =
        PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::NoPrefetching);
    (CoreEngine::new(0, &config, controller), Hierarchy::new(HierarchyParams::skylake_like(1)))
}

/// Steps `records` through a fresh engine of `kind`, asserting the clock is
/// monotone, and returns the final report.
fn run_checked(kind: CoreModelKind, records: &[MemoryRecord]) -> cpu::CoreReport {
    let (mut core, mut hier) = engine(kind);
    let mut last = core.current_time();
    for r in records {
        core.step(r, &mut hier);
        let now = core.current_time();
        assert!(now.is_finite(), "{kind:?}: clock went non-finite");
        assert!(now >= last, "{kind:?}: clock ran backwards ({now} < {last})");
        last = now;
    }
    let report = core.report("edge", &hier);
    assert!(report.cycles >= 1, "{kind:?}: reports must cover at least one cycle");
    assert!(report.ipc.is_finite(), "{kind:?}: IPC went non-finite");
    report
}

#[test]
fn zero_record_source_per_core_still_reports() {
    // A source that yields nothing: every core runs an empty trace. The
    // system must produce a well-formed report (cycles clamp to 1, IPC 0)
    // rather than divide by zero or panic, under both presets.
    let empty = TraceSource::from_workload(Workload::new("empty", Vec::new(), false));
    for kind in BOTH {
        let config = SystemConfig::skylake_like(2).with_core_model(kind);
        let mut system = System::new(config, SelectionAlgorithm::Alecto, CompositeKind::GsCsPmp);
        let report =
            system.run_sources(std::slice::from_ref(&empty)).expect("one source is enough");
        assert_eq!(report.cores.len(), 2);
        for core in &report.cores {
            assert_eq!(core.instructions, 0, "{kind:?}: no records means no instructions");
            assert!(core.cycles >= 1, "{kind:?}: cycles must stay positive");
            assert!(
                core.ipc.abs() < f64::EPSILON && core.ipc.is_finite(),
                "{kind:?}: empty trace must report IPC 0, got {}",
                core.ipc
            );
        }
    }
}

#[test]
fn gap_instructions_at_the_u32_ceiling_does_not_overflow() {
    // One record claiming u32::MAX non-memory instructions before its
    // access: the fetch/retire arithmetic must absorb ~4 billion
    // instructions without overflow in either model, and both must account
    // the identical instruction total.
    let records = [
        MemoryRecord::load(Pc::new(0x10), Addr::new(0x8000), u32::MAX),
        MemoryRecord::load(Pc::new(0x18), Addr::new(0x8040), 3),
    ];
    let expected = u64::from(u32::MAX) + 1 + 4;
    for kind in BOTH {
        let report = run_checked(kind, &records);
        assert_eq!(report.instructions, expected, "{kind:?}: instruction accounting diverged");
        // ~2^32 instructions through a ≤8-wide front end takes at least
        // 2^29 cycles; a finite-but-tiny cycle count would mean the gap
        // arithmetic silently wrapped.
        assert!(
            report.cycles > expected / 16,
            "{kind:?}: {} cycles cannot cover {expected} instructions",
            report.cycles
        );
        assert!(report.ipc > 0.0, "{kind:?}: IPC collapsed");
    }
}

#[test]
fn one_miss_longer_than_a_full_rob_drain_stays_finite_and_ordered() {
    // A burst of L1-resident hits, then a single cold DRAM miss with no gap:
    // the miss latency (hundreds of cycles) exceeds the time to drain the
    // entire ROB at commit width, so the window fills and retirement parks
    // behind the fill. Cycles must extend past the miss, stay finite, and
    // the hit-burst prefix must not be charged for it.
    let mut records = Vec::new();
    for i in 0..400u64 {
        // 8 hot lines, revisited: after the first touches these all hit.
        records.push(MemoryRecord::load(Pc::new(0x20), Addr::new(0x1000 + (i % 8) * 64), 0));
    }
    records.push(MemoryRecord::load(Pc::new(0x28), Addr::new(0xDEAD_0000), 0));
    for kind in BOTH {
        let prefix = run_checked(kind, &records[..400]);
        let full = run_checked(kind, &records);
        assert!(
            full.cycles > prefix.cycles,
            "{kind:?}: the cold miss must extend the run ({} vs {})",
            full.cycles,
            prefix.cycles
        );
        // The single miss costs DRAM latency, not a multiple of the whole
        // prefix: the total stays within an order of magnitude.
        assert!(
            full.cycles < prefix.cycles + 10_000,
            "{kind:?}: one miss exploded the cycle count ({} vs {})",
            full.cycles,
            prefix.cycles
        );
    }
}
