use cpu::*;
fn main() {
    let w = traces::spec06::workload("libquantum", 12_000);
    for algo in [
        SelectionAlgorithm::NoPrefetching,
        SelectionAlgorithm::Ipcp,
        SelectionAlgorithm::Bandit6,
        SelectionAlgorithm::Alecto,
    ] {
        let r = run_single_core(SystemConfig::skylake_like(1), algo, CompositeKind::GsCsPmp, &w);
        let c = &r.cores[0];
        println!("{:12} ipc={:.3} l1hit={} l1miss={} l1merge={} l2hits={} cov_t={} cov_u={} uncov={} over={} pf={} dram={}",
            r.selector, c.ipc, c.l1.demand_hits, c.l1.demand_misses, c.l1.demand_mshr_merges, c.l2.demand_hits,
            c.quality.covered_timely, c.quality.covered_untimely, c.quality.uncovered, c.quality.overpredicted,
            c.prefetches_issued, r.dram.accesses);
    }
}
