//! The Micro-Armed-Bandit RL selection scheme (Fig. 3c), adapted as in §V-B:
//! each prefetcher's degree is either 0 or X, giving `2^P` arms; the reward is
//! the number of committed instructions observed during the epoch in which an
//! arm was active.
//!
//! Two stock configurations are provided — `Bandit3` (X = 3) and `Bandit6`
//! (X = 6) — plus the extended variant of §VI-H where each prefetcher's degree
//! may take any of `M + 3` values, yielding `(M+3)^P` arms and the storage
//! blow-up the paper criticises.

use alecto_types::{DemandAccess, PrefetchRequest};
use prefetch::Prefetcher;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::{AllocationDecision, DegreeAllocation, Selector};

/// Which stock Bandit variant is being run (affects only the display name and
/// the candidate degree set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Bandit3,
    Bandit6,
    Extended,
}

/// Bandit configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BanditConfig {
    /// Candidate degree values each prefetcher may be assigned.
    pub degree_choices: Vec<u32>,
    /// Number of prefetchers being scheduled.
    pub prefetchers: usize,
    /// Exploration probability of the epsilon-greedy policy.
    pub epsilon: f64,
    /// RNG seed (fixed for reproducible simulations).
    pub seed: u64,
}

impl BanditConfig {
    /// Bandit with on/off degree `x` for `prefetchers` prefetchers (2^P arms).
    #[must_use]
    pub fn on_off(x: u32, prefetchers: usize) -> Self {
        Self { degree_choices: vec![0, x], prefetchers, epsilon: 0.1, seed: 0xa1ec70 }
    }

    /// The extended-arm configuration of §VI-H: degrees {0, c, c+1, ..., c+M+1}.
    #[must_use]
    pub fn extended(c: u32, m: u32, prefetchers: usize) -> Self {
        let mut degree_choices = vec![0];
        for d in c..=(c + m + 1) {
            degree_choices.push(d);
        }
        Self { degree_choices, prefetchers, epsilon: 0.1, seed: 0xa1ec70 }
    }

    /// Number of arms = `choices ^ prefetchers`.
    #[must_use]
    pub fn num_arms(&self) -> usize {
        self.degree_choices.len().pow(self.prefetchers as u32)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ArmState {
    pulls: u64,
    mean_reward: f64,
}

/// The Bandit selector.
#[derive(Debug, Clone)]
pub struct BanditSelector {
    config: BanditConfig,
    variant: Variant,
    arms: Vec<ArmState>,
    current_arm: usize,
    epochs: u64,
    rng: StdRng,
}

impl BanditSelector {
    fn new_with_variant(config: BanditConfig, variant: Variant) -> Self {
        let arms = vec![ArmState::default(); config.num_arms()];
        let rng = StdRng::seed_from_u64(config.seed);
        // Start from the most aggressive arm (all prefetchers on), which is
        // also what the hardware proposal boots with.
        let current_arm = config.num_arms() - 1;
        Self { config, variant, arms, current_arm, epochs: 0, rng }
    }

    /// Bandit3: every prefetcher degree is 0 or 3.
    #[must_use]
    pub fn bandit3(prefetchers: usize) -> Self {
        Self::new_with_variant(BanditConfig::on_off(3, prefetchers), Variant::Bandit3)
    }

    /// Bandit6: every prefetcher degree is 0 or 6.
    #[must_use]
    pub fn bandit6(prefetchers: usize) -> Self {
        Self::new_with_variant(BanditConfig::on_off(6, prefetchers), Variant::Bandit6)
    }

    /// The extended-arm variant of §VI-H with Alecto's (c, M) degree range.
    #[must_use]
    pub fn extended(c: u32, m: u32, prefetchers: usize) -> Self {
        Self::new_with_variant(BanditConfig::extended(c, m, prefetchers), Variant::Extended)
    }

    /// Custom configuration (treated as an extended variant for naming).
    #[must_use]
    pub fn with_config(config: BanditConfig) -> Self {
        Self::new_with_variant(config, Variant::Extended)
    }

    /// Configuration in use.
    #[must_use]
    pub const fn config(&self) -> &BanditConfig {
        &self.config
    }

    /// Decodes an arm index into per-prefetcher degrees.
    #[must_use]
    pub fn arm_degrees(&self, arm: usize) -> Vec<u32> {
        let base = self.config.degree_choices.len();
        let mut degrees = Vec::with_capacity(self.config.prefetchers);
        let mut rest = arm;
        for _ in 0..self.config.prefetchers {
            degrees.push(self.config.degree_choices[rest % base]);
            rest /= base;
        }
        degrees
    }

    /// Index of the arm currently in use.
    #[must_use]
    pub const fn current_arm(&self) -> usize {
        self.current_arm
    }

    /// Number of reward epochs observed so far.
    #[must_use]
    pub const fn epochs(&self) -> u64 {
        self.epochs
    }

    fn pick_next_arm(&mut self) {
        // Epsilon-greedy with optimistic initialisation: unexplored arms are
        // preferred, otherwise the best empirical mean wins.
        if self.rng.gen::<f64>() < self.config.epsilon {
            self.current_arm = self.rng.gen_range(0..self.arms.len());
            return;
        }
        if let Some(unexplored) = self.arms.iter().position(|a| a.pulls == 0) {
            self.current_arm = unexplored;
            return;
        }
        self.current_arm = self
            .arms
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.mean_reward.partial_cmp(&b.1.mean_reward).expect("rewards are finite")
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
    }
}

impl Selector for BanditSelector {
    fn name(&self) -> &'static str {
        match self.variant {
            Variant::Bandit3 => "Bandit3",
            Variant::Bandit6 => "Bandit6",
            Variant::Extended => "BanditExt",
        }
    }

    fn allocate(
        &mut self,
        _access: &DemandAccess,
        prefetchers: &[Box<dyn Prefetcher>],
    ) -> AllocationDecision {
        // Bandit does not gate training: every prefetcher observes every
        // demand request; only the output degree is controlled by the arm.
        let degrees = self.arm_degrees(self.current_arm);
        let per_prefetcher = (0..prefetchers.len())
            .map(|i| Some(DegreeAllocation::l1(degrees.get(i).copied().unwrap_or(0))))
            .collect();
        AllocationDecision { per_prefetcher }
    }

    fn select_requests(
        &mut self,
        _access: &DemandAccess,
        candidates: Vec<PrefetchRequest>,
    ) -> Vec<PrefetchRequest> {
        candidates
    }

    fn on_epoch(&mut self, committed_instructions: u64, cycles: u64) {
        let reward = if cycles == 0 { 0.0 } else { committed_instructions as f64 / cycles as f64 };
        let arm = &mut self.arms[self.current_arm];
        arm.pulls += 1;
        arm.mean_reward += (reward - arm.mean_reward) / arm.pulls as f64;
        self.epochs += 1;
        self.pick_next_arm();
    }

    fn storage_bits(&self) -> u64 {
        // §VI-H: 8 bytes per arm.
        8 * 8 * self.config.num_arms() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::{Addr, Pc};
    use prefetch::{build_composite, CompositeKind};

    #[test]
    fn arm_counts_match_paper() {
        assert_eq!(BanditSelector::bandit3(3).config().num_arms(), 8);
        assert_eq!(BanditSelector::bandit6(3).config().num_arms(), 8);
        // Extended: M = 5 → M + 3 = 8 values per prefetcher → 8^3 arms.
        let ext = BanditSelector::extended(3, 5, 3);
        assert_eq!(ext.config().num_arms(), 512);
    }

    #[test]
    fn storage_matches_section_vi_h() {
        // Bandit: 8 × #arms bytes = 64 bytes for 8 arms.
        assert_eq!(BanditSelector::bandit6(3).storage_bits(), 64 * 8);
        // Extended: 8 × 8^3 bytes = 4 KB.
        assert_eq!(BanditSelector::extended(3, 5, 3).storage_bits(), 4 * 1024 * 8);
    }

    #[test]
    fn arm_decoding_covers_all_degrees() {
        let b = BanditSelector::bandit3(3);
        let all_off = b.arm_degrees(0);
        assert_eq!(all_off, vec![0, 0, 0]);
        let all_on = b.arm_degrees(7);
        assert_eq!(all_on, vec![3, 3, 3]);
        let mixed = b.arm_degrees(5); // binary 101
        assert_eq!(mixed, vec![3, 0, 3]);
    }

    #[test]
    fn allocation_uses_current_arm_degrees() {
        let mut b = BanditSelector::bandit6(3);
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        let d = b.allocate(&DemandAccess::load(Pc::new(1), Addr::new(0x40)), &prefetchers);
        // Initial arm = all prefetchers at degree 6.
        assert!(d.per_prefetcher.iter().all(|a| a.unwrap().total == 6));
        assert_eq!(d.allocated_count(), 3);
    }

    #[test]
    fn learning_prefers_rewarding_arm() {
        let mut b = BanditSelector::bandit3(3);
        // Feed rewards: arm 7 (all on) gets high reward, everything else low.
        for _ in 0..200 {
            let reward = if b.current_arm() == 7 { 2_000 } else { 500 };
            b.on_epoch(reward, 1_000);
        }
        // After convergence the greedy choice should usually be arm 7.
        let mut wins = 0;
        for _ in 0..50 {
            b.on_epoch(if b.current_arm() == 7 { 2_000 } else { 500 }, 1_000);
            if b.current_arm() == 7 {
                wins += 1;
            }
        }
        assert!(wins > 25, "bandit should exploit the best arm most of the time, got {wins}");
    }

    #[test]
    fn extended_bandit_converges_slower() {
        // With 512 arms and the same number of epochs, the extended bandit has
        // explored a much smaller fraction of its arms than the 8-arm bandit.
        let mut small = BanditSelector::bandit6(3);
        let mut big = BanditSelector::extended(3, 5, 3);
        for _ in 0..64 {
            small.on_epoch(1_000, 1_000);
            big.on_epoch(1_000, 1_000);
        }
        let explored_small =
            small.arms.iter().filter(|a| a.pulls > 0).count() as f64 / small.arms.len() as f64;
        let explored_big =
            big.arms.iter().filter(|a| a.pulls > 0).count() as f64 / big.arms.len() as f64;
        assert!(explored_small > explored_big);
    }

    #[test]
    fn zero_cycle_epoch_is_safe() {
        let mut b = BanditSelector::bandit3(3);
        b.on_epoch(100, 0);
        assert_eq!(b.epochs(), 1);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(BanditSelector::bandit3(3).name(), "Bandit3");
        assert_eq!(BanditSelector::bandit6(3).name(), "Bandit6");
        assert_eq!(BanditSelector::extended(3, 5, 3).name(), "BanditExt");
    }
}
