//! IPCP-style selection: every prefetcher trains on every demand request and
//! the *outputs* are chosen by a static priority (Fig. 3b).
//!
//! §II-A(2): "these prefetchers accept all demand requests from the CPU core
//! ... When a single demand request could be serviced by more than one
//! prefetcher, IPCP implements a static strategy to select the output of
//! prefetchers based on a predetermined priority: P1 > P2 > P3", i.e. in the
//! composite order stream > stride > spatial.

use alecto_types::{DemandAccess, PrefetchRequest};
use prefetch::Prefetcher;

use crate::traits::{AllocationDecision, Selector};

/// The IPCP static-priority selector.
#[derive(Debug, Clone)]
pub struct IpcpSelector {
    degree: u32,
    requests_selected: u64,
    requests_dropped: u64,
}

impl IpcpSelector {
    /// Creates an IPCP selector where each prefetcher may emit up to `degree`
    /// candidates per training event.
    #[must_use]
    pub fn new(degree: u32) -> Self {
        Self { degree, requests_selected: 0, requests_dropped: 0 }
    }

    /// Default degree of 4, comparable to the conservative end of Bandit.
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(4)
    }

    /// Requests selected (passed through the priority mux) so far.
    #[must_use]
    pub const fn requests_selected(&self) -> u64 {
        self.requests_selected
    }

    /// Requests dropped by the priority mux so far.
    #[must_use]
    pub const fn requests_dropped(&self) -> u64 {
        self.requests_dropped
    }
}

impl Selector for IpcpSelector {
    fn name(&self) -> &'static str {
        "IPCP"
    }

    fn allocate(
        &mut self,
        _access: &DemandAccess,
        prefetchers: &[Box<dyn Prefetcher>],
    ) -> AllocationDecision {
        // Non-selective training: everyone sees the request.
        AllocationDecision::all(prefetchers.len(), self.degree)
    }

    fn select_requests(
        &mut self,
        _access: &DemandAccess,
        candidates: Vec<PrefetchRequest>,
    ) -> Vec<PrefetchRequest> {
        // Keep only the output of the highest-priority prefetcher that
        // produced anything (lowest issuer index wins).
        let Some(winner) = candidates.iter().map(|r| r.issuer).min_by_key(|p| p.index()) else {
            return Vec::new();
        };
        let (selected, dropped): (Vec<_>, Vec<_>) =
            candidates.into_iter().partition(|r| r.issuer == winner);
        self.requests_selected += selected.len() as u64;
        self.requests_dropped += dropped.len() as u64;
        selected
    }

    fn storage_bits(&self) -> u64 {
        // A priority mux has no table state; a handful of configuration bits.
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::{Addr, LineAddr, Pc, PrefetcherId};
    use prefetch::{build_composite, CompositeKind};

    fn req(issuer: usize, line: u64) -> PrefetchRequest {
        PrefetchRequest::new(LineAddr::new(line), Pc::new(0x10), PrefetcherId(issuer))
    }

    #[test]
    fn all_prefetchers_are_trained() {
        let mut s = IpcpSelector::default_config();
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        let d = s.allocate(&DemandAccess::load(Pc::new(1), Addr::new(0x100)), &prefetchers);
        assert_eq!(d.allocated_count(), 3);
        assert!(d.per_prefetcher.iter().all(|a| a.unwrap().total == 4));
    }

    #[test]
    fn highest_priority_output_wins() {
        let mut s = IpcpSelector::default_config();
        let access = DemandAccess::load(Pc::new(1), Addr::new(0x100));
        let out = s.select_requests(&access, vec![req(2, 10), req(0, 20), req(1, 30), req(0, 21)]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.issuer == PrefetcherId(0)));
        assert_eq!(s.requests_selected(), 2);
        assert_eq!(s.requests_dropped(), 2);
    }

    #[test]
    fn lower_priority_used_when_alone() {
        let mut s = IpcpSelector::default_config();
        let access = DemandAccess::load(Pc::new(1), Addr::new(0x100));
        let out = s.select_requests(&access, vec![req(2, 10), req(2, 11)]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.issuer == PrefetcherId(2)));
    }

    #[test]
    fn empty_candidates_yield_nothing() {
        let mut s = IpcpSelector::default_config();
        let access = DemandAccess::load(Pc::new(1), Addr::new(0x100));
        assert!(s.select_requests(&access, Vec::new()).is_empty());
    }

    #[test]
    fn uses_external_filter_and_tiny_storage() {
        let s = IpcpSelector::default_config();
        assert!(s.needs_external_filter());
        assert!(s.storage_bits() < 64);
        assert_eq!(s.name(), "IPCP");
    }
}
