//! PPF — Perceptron-based Prefetch Filtering, layered on top of IPCP
//! scheduling (the §VII-C comparison).
//!
//! PPF does not change which prefetcher trains on what; it filters the
//! *output* of the composite prefetcher with a perceptron that predicts
//! whether each prefetch will be useful, based on simple features of the
//! trigger access and prefetch target. The paper tunes it into an aggressive
//! and a conservative version and shows that pure output filtering raises
//! accuracy but sacrifices coverage, which demand-request allocation does not.

use std::collections::BTreeMap;

use alecto_types::{fold_pc, DemandAccess, LineAddr, PrefetchRequest};
use prefetch::Prefetcher;

use crate::ipcp::IpcpSelector;
use crate::traits::{AllocationDecision, PrefetchOutcome, Selector};

const FEATURE_TABLE_BITS: u32 = 8;
const FEATURE_TABLE_SIZE: usize = 1 << FEATURE_TABLE_BITS;
const NUM_FEATURES: usize = 4;
const WEIGHT_MAX: i32 = 31;
const WEIGHT_MIN: i32 = -32;

/// PPF tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpfConfig {
    /// Perceptron sum required to let a prefetch through. Higher = more
    /// aggressive filtering.
    pub filter_threshold: i32,
    /// Magnitude below which training updates are applied even on correct
    /// predictions (perceptron margin).
    pub training_threshold: i32,
    /// Per-prefetcher degree handed to the underlying IPCP scheduling.
    pub degree: u32,
}

impl PpfConfig {
    /// The aggressive tuning of §VII-C (filters more).
    #[must_use]
    pub const fn aggressive() -> Self {
        Self { filter_threshold: 0, training_threshold: 16, degree: 4 }
    }

    /// The conservative tuning of §VII-C (filters less).
    #[must_use]
    pub const fn conservative() -> Self {
        Self { filter_threshold: -6, training_threshold: 16, degree: 4 }
    }
}

/// IPCP scheduling plus a perceptron prefetch filter.
#[derive(Debug, Clone)]
pub struct PpfFilterSelector {
    config: PpfConfig,
    aggressive: bool,
    inner: IpcpSelector,
    weights: Vec<Vec<i32>>,
    /// Features of still-in-flight prefetches, keyed by line, so that outcome
    /// feedback can train the same weights the decision used.
    pending: BTreeMap<LineAddr, [usize; NUM_FEATURES]>,
    filtered: u64,
    passed: u64,
}

impl PpfFilterSelector {
    /// Creates a PPF selector.
    #[must_use]
    pub fn new(config: PpfConfig, aggressive: bool) -> Self {
        Self {
            inner: IpcpSelector::new(config.degree),
            config,
            aggressive,
            weights: vec![vec![0; FEATURE_TABLE_SIZE]; NUM_FEATURES],
            pending: BTreeMap::new(),
            filtered: 0,
            passed: 0,
        }
    }

    /// The aggressive configuration of §VII-C.
    #[must_use]
    pub fn aggressive() -> Self {
        Self::new(PpfConfig::aggressive(), true)
    }

    /// The conservative configuration of §VII-C.
    #[must_use]
    pub fn conservative() -> Self {
        Self::new(PpfConfig::conservative(), false)
    }

    /// Prefetch requests dropped by the perceptron so far.
    #[must_use]
    pub const fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Prefetch requests allowed through so far.
    #[must_use]
    pub const fn passed(&self) -> u64 {
        self.passed
    }

    fn features(access: &DemandAccess, req: &PrefetchRequest) -> [usize; NUM_FEATURES] {
        let pc_hash = fold_pc(access.pc, FEATURE_TABLE_BITS) as usize;
        let line = req.line.raw();
        let offset = (line & 0x3f) as usize;
        let delta = req.line.delta_from(access.line());
        let delta_hash = ((delta.unsigned_abs() ^ ((delta < 0) as u64) << 7) & 0xff) as usize;
        let pc_xor_offset = (pc_hash ^ offset) & (FEATURE_TABLE_SIZE - 1);
        let issuer_pc = (pc_hash ^ (req.issuer.index() << 5)) & (FEATURE_TABLE_SIZE - 1);
        [pc_hash, pc_xor_offset, delta_hash, issuer_pc]
    }

    fn sum(&self, features: &[usize; NUM_FEATURES]) -> i32 {
        features.iter().enumerate().map(|(t, &i)| self.weights[t][i]).sum()
    }

    fn train(&mut self, features: &[usize; NUM_FEATURES], useful: bool) {
        let sum = self.sum(features);
        let correct = (sum >= self.config.filter_threshold) == useful;
        if correct && sum.abs() > self.config.training_threshold {
            return;
        }
        for (t, &i) in features.iter().enumerate() {
            let w = &mut self.weights[t][i];
            if useful {
                *w = (*w + 1).min(WEIGHT_MAX);
            } else {
                *w = (*w - 1).max(WEIGHT_MIN);
            }
        }
    }
}

impl Selector for PpfFilterSelector {
    fn name(&self) -> &'static str {
        if self.aggressive {
            "IPCP+PPF_Agg"
        } else {
            "IPCP+PPF_Con"
        }
    }

    fn allocate(
        &mut self,
        access: &DemandAccess,
        prefetchers: &[Box<dyn Prefetcher>],
    ) -> AllocationDecision {
        self.inner.allocate(access, prefetchers)
    }

    fn select_requests(
        &mut self,
        access: &DemandAccess,
        candidates: Vec<PrefetchRequest>,
    ) -> Vec<PrefetchRequest> {
        let prioritized = self.inner.select_requests(access, candidates);
        let mut out = Vec::with_capacity(prioritized.len());
        for req in prioritized {
            let features = Self::features(access, &req);
            if self.sum(&features) >= self.config.filter_threshold {
                self.pending.insert(req.line, features);
                if self.pending.len() > 4096 {
                    // Bound the bookkeeping; the map is ordered, so dropping
                    // the smallest line address is deterministic run-to-run
                    // (a HashMap's "first key" would not be).
                    let key = *self.pending.keys().next().expect("non-empty map");
                    self.pending.remove(&key);
                }
                self.passed += 1;
                out.push(req);
            } else {
                self.filtered += 1;
                // Rejected prefetches still train toward "useless" slowly via
                // an implicit negative outcome when the demand never arrives;
                // PPF proper uses a reject table — approximated by immediate
                // weak negative training.
                self.train(&features, false);
            }
        }
        out
    }

    fn on_prefetch_outcome(&mut self, outcome: &PrefetchOutcome) {
        if let Some(features) = self.pending.remove(&outcome.line) {
            self.train(&features, outcome.useful);
        }
    }

    fn storage_bits(&self) -> u64 {
        // Weight tables (6-bit weights) plus the prefetch bookkeeping table.
        (NUM_FEATURES * FEATURE_TABLE_SIZE) as u64 * 6 + 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::{Addr, Pc, PrefetcherId};
    use prefetch::{build_composite, CompositeKind};

    fn access(pc: u64, addr: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(pc), Addr::new(addr))
    }

    fn req(issuer: usize, line: u64) -> PrefetchRequest {
        PrefetchRequest::new(LineAddr::new(line), Pc::new(0x10), PrefetcherId(issuer))
    }

    #[test]
    fn allocation_is_ipcp_like() {
        let mut ppf = PpfFilterSelector::aggressive();
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        let d = ppf.allocate(&access(1, 0x40), &prefetchers);
        assert_eq!(d.allocated_count(), 3);
    }

    #[test]
    fn useless_feedback_teaches_filtering() {
        let mut ppf = PpfFilterSelector::aggressive();
        let a = access(0x33, 0x8000);
        // Keep issuing the same kind of prefetch and reporting it useless.
        for i in 0..200u64 {
            let reqs = ppf.select_requests(&a, vec![req(0, 0x200 + i)]);
            for r in reqs {
                ppf.on_prefetch_outcome(&PrefetchOutcome {
                    issuer: r.issuer,
                    trigger_pc: Some(a.pc),
                    line: r.line,
                    useful: false,
                });
            }
        }
        // Eventually the perceptron should start rejecting these prefetches.
        assert!(ppf.filtered() > 0, "aggressive PPF must learn to reject useless prefetches");
    }

    #[test]
    fn useful_feedback_keeps_prefetches_flowing() {
        let mut ppf = PpfFilterSelector::conservative();
        let a = access(0x44, 0x9000);
        for i in 0..100u64 {
            let reqs = ppf.select_requests(&a, vec![req(0, 0x600 + i)]);
            for r in reqs {
                ppf.on_prefetch_outcome(&PrefetchOutcome {
                    issuer: r.issuer,
                    trigger_pc: Some(a.pc),
                    line: r.line,
                    useful: true,
                });
            }
        }
        assert_eq!(ppf.filtered(), 0, "conservative PPF with useful prefetches should not filter");
        assert!(ppf.passed() >= 100);
    }

    #[test]
    fn aggressive_filters_more_than_conservative() {
        let mut agg = PpfFilterSelector::aggressive();
        let mut con = PpfFilterSelector::conservative();
        let a = access(0x55, 0xa000);
        // Mixed outcomes: 50% useful. The aggressive threshold rejects these
        // borderline prefetches earlier than the conservative one.
        for ppf in [&mut agg, &mut con] {
            for i in 0..300u64 {
                let reqs = ppf.select_requests(&a, vec![req(1, 0x900 + i)]);
                for r in reqs {
                    ppf.on_prefetch_outcome(&PrefetchOutcome {
                        issuer: r.issuer,
                        trigger_pc: Some(a.pc),
                        line: r.line,
                        useful: i % 2 == 0,
                    });
                }
            }
        }
        assert!(agg.filtered() >= con.filtered());
    }

    #[test]
    fn names_and_storage() {
        assert_eq!(PpfFilterSelector::aggressive().name(), "IPCP+PPF_Agg");
        assert_eq!(PpfFilterSelector::conservative().name(), "IPCP+PPF_Con");
        assert!(PpfFilterSelector::aggressive().storage_bits() > 0);
        assert!(PpfFilterSelector::aggressive().needs_external_filter());
    }
}
