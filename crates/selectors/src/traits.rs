//! The [`Selector`] trait: the interface between the L1D prefetch controller
//! and a prefetcher-selection algorithm.
//!
//! The controller drives a selector through three hooks per demand access:
//!
//! 1. [`Selector::allocate`] — *before* training, decide which prefetchers may
//!    see the request and with what degree (this is where Alecto's dynamic
//!    demand request allocation happens, and where the baselines simply say
//!    "everyone trains"),
//! 2. [`Selector::select_requests`] — *after* the allowed prefetchers emitted
//!    candidates, decide which prefetch requests are actually sent to the
//!    prefetch queue (static output priority for IPCP, filtering for PPF and
//!    for Alecto's Sandbox Table),
//! 3. [`Selector::on_prefetch_outcome`] / [`Selector::on_epoch`] — learn from
//!    prefetch usefulness feedback and periodic performance rewards.

use alecto_types::{DemandAccess, LineAddr, Pc, PrefetchRequest, PrefetcherId};
use prefetch::Prefetcher;

/// Degree granted to one prefetcher for one demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeAllocation {
    /// Total number of candidate lines the prefetcher may emit.
    pub total: u32,
    /// How many of those lines should be filled into the L1 (the rest go to
    /// the L2, as Alecto does for its aggressive extra lines, §IV-B).
    pub l1_portion: u32,
}

impl DegreeAllocation {
    /// All lines fill the L1 (what the baselines do).
    #[must_use]
    pub const fn l1(total: u32) -> Self {
        Self { total, l1_portion: total }
    }

    /// Split allocation: `l1` lines into L1 and `l2` additional lines into L2.
    #[must_use]
    pub const fn split(l1: u32, l2: u32) -> Self {
        Self { total: l1 + l2, l1_portion: l1 }
    }
}

/// Per-prefetcher training/degree decision for one demand access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationDecision {
    /// Indexed by prefetcher position in the composite; `None` means the
    /// prefetcher must not observe (train on) this demand request.
    pub per_prefetcher: Vec<Option<DegreeAllocation>>,
}

impl AllocationDecision {
    /// Every prefetcher trains with the same L1-filling degree.
    #[must_use]
    pub fn all(prefetchers: usize, degree: u32) -> Self {
        Self { per_prefetcher: vec![Some(DegreeAllocation::l1(degree)); prefetchers] }
    }

    /// Nobody trains (prefetching disabled for this access).
    #[must_use]
    pub fn none(prefetchers: usize) -> Self {
        Self { per_prefetcher: vec![None; prefetchers] }
    }

    /// Number of prefetchers that were allocated the request.
    #[must_use]
    pub fn allocated_count(&self) -> usize {
        self.per_prefetcher.iter().filter(|d| d.is_some()).count()
    }
}

/// Usefulness feedback about a previously issued prefetch, delivered when the
/// prefetched line is either used by a demand access or evicted unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchOutcome {
    /// Which prefetcher issued the prefetch.
    pub issuer: PrefetcherId,
    /// PC that triggered the prefetch, when known.
    pub trigger_pc: Option<Pc>,
    /// The prefetched line.
    pub line: LineAddr,
    /// `true` if a demand access hit the line, `false` if it was evicted
    /// without use.
    pub useful: bool,
}

/// A prefetcher selection algorithm.
///
/// `Send` is a supertrait so systems holding a boxed selector can be built
/// and executed on worker threads of the parallel experiment engine.
pub trait Selector: Send {
    /// Display name used in harness output (e.g. `"Bandit6"`).
    fn name(&self) -> &'static str;

    /// Decides which prefetchers may train on `access` and with what degree.
    /// `prefetchers` allows read-only probing (DOL's coordinator).
    fn allocate(
        &mut self,
        access: &DemandAccess,
        prefetchers: &[Box<dyn Prefetcher>],
    ) -> AllocationDecision;

    /// Post-processes the candidate prefetch requests produced by the allowed
    /// prefetchers and returns the ones to issue, most important first.
    fn select_requests(
        &mut self,
        access: &DemandAccess,
        candidates: Vec<PrefetchRequest>,
    ) -> Vec<PrefetchRequest>;

    /// Learns from the usefulness of a previously issued prefetch.
    fn on_prefetch_outcome(&mut self, outcome: &PrefetchOutcome) {
        let _ = outcome;
    }

    /// Periodic reward delivery: `committed_instructions` retired over the
    /// last `cycles` cycles (the Bandit reward signal).
    fn on_epoch(&mut self, committed_instructions: u64, cycles: u64) {
        let _ = (committed_instructions, cycles);
    }

    /// Whether the CPU model should interpose the shared [`crate::PrefetchFilter`]
    /// between this selector and the prefetch queue. Alecto's Sandbox Table
    /// already performs duplicate filtering, so it opts out.
    fn needs_external_filter(&self) -> bool {
        true
    }

    /// Storage overhead of the selection hardware in bits (Table III and the
    /// Bandit arm-count analysis of §VI-H).
    fn storage_bits(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_allocation_helpers() {
        let a = DegreeAllocation::l1(3);
        assert_eq!(a.total, 3);
        assert_eq!(a.l1_portion, 3);
        let b = DegreeAllocation::split(3, 4);
        assert_eq!(b.total, 7);
        assert_eq!(b.l1_portion, 3);
    }

    #[test]
    fn allocation_decision_helpers() {
        let all = AllocationDecision::all(3, 2);
        assert_eq!(all.allocated_count(), 3);
        assert!(all.per_prefetcher.iter().all(|d| d == &Some(DegreeAllocation::l1(2))));
        let none = AllocationDecision::none(3);
        assert_eq!(none.allocated_count(), 0);
    }
}
