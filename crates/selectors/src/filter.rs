//! A conventional prefetch filter: a small table of recently issued prefetch
//! lines used to drop duplicate requests.
//!
//! §V-B: "Considering Alecto naturally has a prefetch filter, we additionally
//! add a prefetch filter for other configurations to better reflect
//! real-world conditions." This is that filter. It is deliberately simple —
//! a direct-mapped array of line tags — because its only job is to stop the
//! same line being prefetched over and over by the baselines.

use alecto_types::LineAddr;

/// A direct-mapped recently-prefetched-line filter.
#[derive(Debug, Clone)]
pub struct PrefetchFilter {
    entries: Vec<Option<LineAddr>>,
    inserted: u64,
    dropped: u64,
}

impl PrefetchFilter {
    /// Creates a filter with `entries` slots (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0 && entries.is_power_of_two(), "filter size must be a power of two");
        Self { entries: vec![None; entries], inserted: 0, dropped: 0 }
    }

    /// The default 512-entry filter (same entry count as Alecto's Sandbox
    /// Table, for a fair baseline).
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(512)
    }

    fn index(&self, line: LineAddr) -> usize {
        (alecto_types::hash::mix64(line.raw()) as usize) & (self.entries.len() - 1)
    }

    /// Returns `true` if the line was recently prefetched and the request
    /// should be dropped; otherwise records it and returns `false`.
    pub fn check_and_insert(&mut self, line: LineAddr) -> bool {
        let idx = self.index(line);
        if self.entries[idx] == Some(line) {
            self.dropped += 1;
            return true;
        }
        self.entries[idx] = Some(line);
        self.inserted += 1;
        false
    }

    /// Number of requests recorded.
    #[must_use]
    pub const fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Number of requests dropped as duplicates.
    #[must_use]
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Storage in bits (tag per entry, ~22-bit partial tags).
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * 22
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_dropped() {
        let mut f = PrefetchFilter::new(64);
        assert!(!f.check_and_insert(LineAddr::new(10)));
        assert!(f.check_and_insert(LineAddr::new(10)));
        assert_eq!(f.dropped(), 1);
        assert_eq!(f.inserted(), 1);
    }

    #[test]
    fn distinct_lines_pass() {
        let mut f = PrefetchFilter::new(64);
        let mut dropped = 0;
        for i in 0..32u64 {
            if f.check_and_insert(LineAddr::new(i * 1024 + 7)) {
                dropped += 1;
            }
        }
        assert!(dropped <= 2, "few collisions expected among 32 distinct lines in 64 slots");
    }

    #[test]
    fn capacity_conflicts_eventually_forget() {
        let mut f = PrefetchFilter::new(8);
        f.check_and_insert(LineAddr::new(1));
        // Flood with many other lines, likely overwriting slot of line 1.
        for i in 2..200u64 {
            f.check_and_insert(LineAddr::new(i));
        }
        // Line 1 may or may not still be present, but re-inserting never panics
        // and the counters stay consistent.
        let _ = f.check_and_insert(LineAddr::new(1));
        assert!(f.inserted() + f.dropped() == 200);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = PrefetchFilter::new(100);
    }

    #[test]
    fn storage_scales_with_entries() {
        assert!(PrefetchFilter::new(512).storage_bits() > PrefetchFilter::new(64).storage_bits());
    }
}
