//! Prefetcher *selection* algorithms: the baselines the paper compares
//! Alecto against, plus shared infrastructure (the [`Selector`] trait and the
//! plain prefetch filter every baseline configuration is given per §V-B).
//!
//! * [`IpcpSelector`] — static output prioritisation (Fig. 3b),
//! * [`DolSelector`] — static sequential demand-request passing (Fig. 3a),
//! * [`BanditSelector`] — the Micro-Armed-Bandit RL scheme controlling
//!   per-prefetcher degree (Fig. 3c), including the extended-arm variant of
//!   §VI-H,
//! * [`PpfFilterSelector`] — IPCP plus a perceptron-based prefetch filter
//!   (the §VII-C comparison),
//! * [`TriangelFilterSelector`] — Triangel-style training filtering for the
//!   temporal-prefetching configuration of Fig. 13.
//!
//! The Alecto selector itself lives in the `alecto` crate; it implements the
//! same [`Selector`] trait so the CPU model can schedule any of them
//! interchangeably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandit;
pub mod dol;
pub mod filter;
pub mod ipcp;
pub mod ppf;
pub mod traits;
pub mod triangel;

pub use bandit::{BanditConfig, BanditSelector};
pub use dol::DolSelector;
pub use filter::PrefetchFilter;
pub use ipcp::IpcpSelector;
pub use ppf::{PpfConfig, PpfFilterSelector};
pub use traits::{AllocationDecision, DegreeAllocation, PrefetchOutcome, Selector};
pub use triangel::TriangelFilterSelector;
