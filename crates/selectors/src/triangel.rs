//! Triangel-style training management for temporal prefetching (Fig. 7b).
//!
//! Triangel lets the non-temporal L1 prefetchers behave exactly as under IPCP
//! but decides, per PC, whether the *temporal* prefetcher should be trained on
//! the access stream: non-temporal PCs and rarely recurring PCs are filtered
//! out so they do not waste the metadata table. Unlike Alecto (§IV-F) it has
//! no notion of "this PC is already handled by a cheaper prefetcher", which is
//! precisely the gap Fig. 13 measures.

use std::collections::HashMap;

use alecto_types::{DemandAccess, Pc, PrefetchRequest};
use prefetch::Prefetcher;

use crate::traits::{AllocationDecision, DegreeAllocation, Selector};

/// Per-PC reuse tracking state.
#[derive(Debug, Clone, Copy, Default)]
struct PcReuse {
    trainings: u32,
    temporal_hits: u32,
}

/// Triangel-style selector: IPCP for the non-temporal prefetchers plus
/// reuse-based training filtering for the temporal prefetcher (assumed to be
/// the last prefetcher in the composite).
#[derive(Debug, Clone)]
pub struct TriangelFilterSelector {
    degree: u32,
    temporal_degree: u32,
    /// Accesses during which a PC trains unconditionally while its reuse
    /// behaviour is being measured.
    bootstrap_trainings: u32,
    /// Minimum fraction of temporal-table hits for a PC to keep training the
    /// temporal prefetcher after bootstrap.
    reuse_threshold: f64,
    reuse: HashMap<Pc, PcReuse>,
    filtered_temporal_trainings: u64,
    allowed_temporal_trainings: u64,
}

impl TriangelFilterSelector {
    /// Creates a Triangel-style selector.
    #[must_use]
    pub fn new(degree: u32, temporal_degree: u32) -> Self {
        Self {
            degree,
            temporal_degree,
            bootstrap_trainings: 64,
            reuse_threshold: 0.05,
            reuse: HashMap::new(),
            filtered_temporal_trainings: 0,
            allowed_temporal_trainings: 0,
        }
    }

    /// Default configuration: degree 4 for the L1 prefetchers, degree 1 for
    /// the temporal prefetcher (§V-C).
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(4, 1)
    }

    /// Temporal training events suppressed so far.
    #[must_use]
    pub const fn filtered_temporal_trainings(&self) -> u64 {
        self.filtered_temporal_trainings
    }

    /// Temporal training events allowed so far.
    #[must_use]
    pub const fn allowed_temporal_trainings(&self) -> u64 {
        self.allowed_temporal_trainings
    }
}

impl Selector for TriangelFilterSelector {
    fn name(&self) -> &'static str {
        "Triangel"
    }

    fn allocate(
        &mut self,
        access: &DemandAccess,
        prefetchers: &[Box<dyn Prefetcher>],
    ) -> AllocationDecision {
        let mut per_prefetcher = vec![Some(DegreeAllocation::l1(self.degree)); prefetchers.len()];
        // Identify the temporal prefetcher (by convention the last one; fall
        // back to a kind check so other layouts still work).
        let temporal_idx = prefetchers.iter().rposition(|p| p.is_temporal());
        let Some(idx) = temporal_idx else {
            return AllocationDecision { per_prefetcher };
        };

        let entry = self.reuse.entry(access.pc).or_default();
        entry.trainings += 1;
        if prefetchers[idx].probe(access) {
            entry.temporal_hits += 1;
        }
        let allow = if entry.trainings <= self.bootstrap_trainings {
            true
        } else {
            f64::from(entry.temporal_hits) / f64::from(entry.trainings) >= self.reuse_threshold
        };
        if allow {
            per_prefetcher[idx] = Some(DegreeAllocation::l1(self.temporal_degree));
            self.allowed_temporal_trainings += 1;
        } else {
            per_prefetcher[idx] = None;
            self.filtered_temporal_trainings += 1;
        }
        AllocationDecision { per_prefetcher }
    }

    fn select_requests(
        &mut self,
        _access: &DemandAccess,
        candidates: Vec<PrefetchRequest>,
    ) -> Vec<PrefetchRequest> {
        candidates
    }

    fn storage_bits(&self) -> u64 {
        // Triangel's PC-classification structures dominate: the paper quotes
        // > 17 KB of filtering metadata. Model 2K PCs × ~70 bits.
        2048 * 70
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::Addr;
    use prefetch::{build_composite, CompositeKind};

    fn composite() -> Vec<Box<dyn Prefetcher>> {
        build_composite(CompositeKind::GsCsPmpTemporal { metadata_bytes: 64 * 1024 })
    }

    fn access(pc: u64, line: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(pc), Addr::new(line * 64))
    }

    #[test]
    fn non_temporal_prefetchers_always_train() {
        let mut s = TriangelFilterSelector::default_config();
        let prefetchers = composite();
        let d = s.allocate(&access(1, 100), &prefetchers);
        assert!(d.per_prefetcher[0].is_some());
        assert!(d.per_prefetcher[1].is_some());
        assert!(d.per_prefetcher[2].is_some());
    }

    #[test]
    fn temporal_training_allowed_during_bootstrap() {
        let mut s = TriangelFilterSelector::default_config();
        let prefetchers = composite();
        let d = s.allocate(&access(0x77, 100), &prefetchers);
        assert!(d.per_prefetcher[3].is_some());
        assert_eq!(d.per_prefetcher[3].unwrap().total, 1);
    }

    #[test]
    fn non_recurring_pc_is_eventually_filtered() {
        let mut s = TriangelFilterSelector::default_config();
        let mut prefetchers = composite();
        // A streaming PC that never revisits a line: the temporal prefetcher's
        // table never hits, so after bootstrap the PC is filtered.
        let mut line = 0u64;
        let mut filtered_any = false;
        for _ in 0..300 {
            let a = access(0x99, line);
            let d = s.allocate(&a, &prefetchers);
            if d.per_prefetcher[3].is_none() {
                filtered_any = true;
            }
            // Train the prefetchers that were allocated the request, as the
            // controller would.
            let mut out = Vec::new();
            for (i, alloc) in d.per_prefetcher.iter().enumerate() {
                if let Some(a_) = alloc {
                    prefetchers[i].train_and_predict(&a, a_.total, &mut out);
                }
            }
            line += 3;
        }
        assert!(filtered_any, "a never-recurring PC should lose its temporal training slot");
        assert!(s.filtered_temporal_trainings() > 0);
    }

    #[test]
    fn recurring_pc_keeps_training() {
        let mut s = TriangelFilterSelector::default_config();
        let mut prefetchers = composite();
        // A pointer-chase loop over 50 lines, repeated: the temporal table
        // hits constantly, so training is never cut off.
        let seq: Vec<u64> = (0..50).map(|i| (i * 7919 + 13) % 10_000).collect();
        for _ in 0..10 {
            for &l in &seq {
                let a = access(0xbb, l);
                let d = s.allocate(&a, &prefetchers);
                let mut out = Vec::new();
                for (i, alloc) in d.per_prefetcher.iter().enumerate() {
                    if let Some(a_) = alloc {
                        prefetchers[i].train_and_predict(&a, a_.total, &mut out);
                    }
                }
            }
        }
        assert_eq!(
            s.filtered_temporal_trainings(),
            0,
            "a strongly recurring PC must keep its temporal training"
        );
        assert!(s.allowed_temporal_trainings() > 400);
    }

    #[test]
    fn works_without_temporal_prefetcher() {
        let mut s = TriangelFilterSelector::default_config();
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        let d = s.allocate(&access(1, 5), &prefetchers);
        assert_eq!(d.allocated_count(), 3);
        assert_eq!(s.name(), "Triangel");
        assert!(s.storage_bits() > 8 * 1024 * 8, "Triangel metadata should exceed 8 KB");
    }
}
