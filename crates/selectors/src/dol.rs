//! DOL-style selection: a coordinator statically prioritises prefetchers and
//! passes each demand request through them *sequentially*, stopping at the
//! first prefetcher able to handle it (Fig. 3a).
//!
//! §II-A(1): "demand requests are initially routed to P1. Only if P1 is unable
//! to handle the demand request, is it then forwarded to P2, followed by P3."
//! Crucially for the paper's Limitation 1, the request leaves traces in the
//! tables of every prefetcher it passes through, so DOL trains a prefix of
//! the priority chain rather than only the suitable prefetcher.

use alecto_types::{DemandAccess, PrefetchRequest};
use prefetch::Prefetcher;

use crate::traits::{AllocationDecision, DegreeAllocation, Selector};

/// The DOL sequential-coordinator selector.
#[derive(Debug, Clone)]
pub struct DolSelector {
    degree: u32,
    chain_lengths: u64,
    allocations: u64,
}

impl DolSelector {
    /// Creates a DOL selector with per-prefetcher degree `degree`.
    #[must_use]
    pub fn new(degree: u32) -> Self {
        Self { degree, chain_lengths: 0, allocations: 0 }
    }

    /// Default degree of 4 (same as the IPCP baseline).
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(4)
    }

    /// Average number of prefetchers each demand request passed through.
    #[must_use]
    pub fn average_chain_length(&self) -> f64 {
        if self.allocations == 0 {
            0.0
        } else {
            self.chain_lengths as f64 / self.allocations as f64
        }
    }
}

impl Selector for DolSelector {
    fn name(&self) -> &'static str {
        "DOL"
    }

    fn allocate(
        &mut self,
        access: &DemandAccess,
        prefetchers: &[Box<dyn Prefetcher>],
    ) -> AllocationDecision {
        // Walk the static priority chain; every prefetcher up to and including
        // the first one that claims the access gets trained.
        let mut per_prefetcher = vec![None; prefetchers.len()];
        let mut handled_at = prefetchers.len();
        for (i, pf) in prefetchers.iter().enumerate() {
            per_prefetcher[i] = Some(DegreeAllocation::l1(self.degree));
            if pf.probe(access) {
                handled_at = i;
                break;
            }
        }
        let chain = handled_at.min(prefetchers.len() - 1) + 1;
        self.chain_lengths += chain as u64;
        self.allocations += 1;
        AllocationDecision { per_prefetcher }
    }

    fn select_requests(
        &mut self,
        _access: &DemandAccess,
        candidates: Vec<PrefetchRequest>,
    ) -> Vec<PrefetchRequest> {
        // The handling prefetcher is the only one that was allowed to emit, so
        // everything passes through.
        candidates
    }

    fn storage_bits(&self) -> u64 {
        // The coordinator is a priority chain with no learned state.
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::{Addr, Pc};
    use prefetch::{build_composite, CompositeKind, StridePrefetcher};

    #[test]
    fn cold_tables_train_the_whole_chain() {
        let mut s = DolSelector::default_config();
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        let d = s.allocate(&DemandAccess::load(Pc::new(1), Addr::new(0x100)), &prefetchers);
        // Nobody claims a never-seen access: the request walks the full chain.
        assert_eq!(d.allocated_count(), 3);
    }

    #[test]
    fn chain_stops_at_first_claiming_prefetcher() {
        let mut s = DolSelector::default_config();
        let mut prefetchers = build_composite(CompositeKind::GsCsPmp);
        // Make the stride prefetcher (index 1) confident about PC 0x40.
        {
            let stride = &mut prefetchers[1];
            let mut out = Vec::new();
            for i in 0..4u64 {
                stride.train_and_predict(
                    &DemandAccess::load(Pc::new(0x40), Addr::new(0x1000 + i * 64)),
                    0,
                    &mut out,
                );
            }
        }
        let d = s
            .allocate(&DemandAccess::load(Pc::new(0x40), Addr::new(0x1000 + 4 * 64)), &prefetchers);
        // GS (0) and CS (1) are trained; PMP (2) never sees the request.
        assert!(d.per_prefetcher[0].is_some());
        assert!(d.per_prefetcher[1].is_some());
        assert!(d.per_prefetcher[2].is_none());
        assert!(s.average_chain_length() > 0.0);
    }

    #[test]
    fn single_prefetcher_composite_works() {
        let mut s = DolSelector::new(2);
        let prefetchers: Vec<Box<dyn Prefetcher>> =
            vec![Box::new(StridePrefetcher::default_config())];
        let d = s.allocate(&DemandAccess::load(Pc::new(5), Addr::new(0x40)), &prefetchers);
        assert_eq!(d.allocated_count(), 1);
        assert_eq!(d.per_prefetcher[0].unwrap().total, 2);
    }

    #[test]
    fn select_requests_passes_through() {
        use alecto_types::{LineAddr, PrefetcherId};
        let mut s = DolSelector::default_config();
        let access = DemandAccess::load(Pc::new(1), Addr::new(0x100));
        let reqs = vec![PrefetchRequest::new(LineAddr::new(1), Pc::new(1), PrefetcherId(0))];
        assert_eq!(s.select_requests(&access, reqs.clone()), reqs);
        assert_eq!(s.name(), "DOL");
        assert!(s.storage_bits() < 64);
    }
}
