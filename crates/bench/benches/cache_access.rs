//! Hot-path comparison: the flat-array cache (`memsys::Cache`) versus the
//! original `Vec<Vec<LineMeta>>` layout it replaced, on the exact
//! demand-lookup + fill sequence a simulated access performs.
//!
//! `LegacyCache` below is a faithful copy of the pre-rewrite implementation
//! (per-set `Vec` of metadata structs, line scan over whole 56-byte entries,
//! `min_by_key` eviction). The benchmark drives both through identical
//! workloads covering the regimes the simulator mixes per access:
//!
//! * steady-state **hit service** (`*_hits`, `*_l3`) — the common case for a
//!   provisioned cache, where the packed tag lane + tag-bit flags let a hit
//!   touch two cache lines instead of walking metadata structs; this is
//!   where the rewrite targets ≥2× (measured ≈1.8–2.0× on an unloaded
//!   machine, L2 and L3 geometries alike);
//! * **residency probes** (`*_probe`) — the 1–3 `contains` checks every
//!   prefetch issue performs (≈1.5×);
//! * the all-miss **eviction storm** (`flat_array_new` vs
//!   `vec_of_vec_legacy`) — the adversarial bound where every access scans,
//!   misses and evicts; the old layout's single 448 B block is hard to beat
//!   here and the flat layout concedes ~10–25%, which end-to-end grid
//!   timings show is fully absorbed by the rest of the simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsys::{Cache, CacheParams};

use alecto_types::{LineAddr, Pc, PrefetcherId};

// --- The pre-rewrite implementation, kept verbatim for the comparison. ----

#[derive(Debug, Clone, Copy)]
#[allow(dead_code)] // mirrors the old layout byte for byte; some fields exist only for size
struct LegacyLineMeta {
    line: LineAddr,
    dirty: bool,
    prefetched_unused: bool,
    prefetch_issuer: Option<PrefetcherId>,
    trigger_pc: Option<Pc>,
    lru_stamp: u64,
}

struct LegacyCache {
    ways: usize,
    num_sets: usize,
    sets: Vec<Vec<LegacyLineMeta>>,
    stamp: u64,
    demand_hits: u64,
    demand_misses: u64,
}

impl LegacyCache {
    fn new(params: CacheParams) -> Self {
        let num_sets = params.num_sets();
        Self {
            ways: params.ways,
            num_sets,
            sets: vec![Vec::with_capacity(params.ways); num_sets],
            stamp: 0,
            demand_hits: 0,
            demand_misses: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.num_sets - 1)
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn demand_lookup(&mut self, line: LineAddr, is_store: bool) -> Option<LegacyLineMeta> {
        let idx = self.set_index(line);
        let stamp = self.next_stamp();
        let entry = self.sets[idx].iter_mut().find(|e| e.line == line);
        match entry {
            Some(e) => {
                let before = *e;
                e.lru_stamp = stamp;
                if is_store {
                    e.dirty = true;
                }
                e.prefetched_unused = false;
                self.demand_hits += 1;
                Some(before)
            }
            None => {
                self.demand_misses += 1;
                None
            }
        }
    }

    fn contains(&self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].iter().any(|e| e.line == line)
    }

    fn fill(&mut self, line: LineAddr) -> Option<LegacyLineMeta> {
        let idx = self.set_index(line);
        let stamp = self.next_stamp();
        if let Some(e) = self.sets[idx].iter_mut().find(|e| e.line == line) {
            e.lru_stamp = stamp;
            return None;
        }
        let meta = LegacyLineMeta {
            line,
            dirty: false,
            prefetched_unused: false,
            prefetch_issuer: None,
            trigger_pc: None,
            lru_stamp: stamp,
        };
        if self.sets[idx].len() < self.ways {
            self.sets[idx].push(meta);
            return None;
        }
        let victim_pos = self.sets[idx]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.lru_stamp)
            .map(|(i, _)| i)
            .expect("set is non-empty when full");
        let victim = self.sets[idx][victim_pos];
        self.sets[idx][victim_pos] = meta;
        Some(victim)
    }
}

// --- Shared drive sequence --------------------------------------------------

/// A deterministic mixed line sequence: one streaming walker, one strided
/// walker and one xorshift "random" walker, interleaved — enough conflict
/// pressure to keep the L2 sets full and evicting, like a real run.
fn access_sequence(len: usize) -> Vec<LineAddr> {
    let mut out = Vec::with_capacity(len);
    let mut streaming = 0x10_0000u64;
    let mut strided = 0x40_0000u64;
    let mut rnd = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..len {
        let line = match i % 3 {
            0 => {
                streaming += 1;
                streaming
            }
            1 => {
                strided += 5;
                strided
            }
            _ => {
                rnd ^= rnd << 13;
                rnd ^= rnd >> 7;
                rnd ^= rnd << 17;
                0x80_0000 + (rnd % (1 << 16))
            }
        };
        out.push(LineAddr::new(line));
    }
    out
}

fn l2_params() -> CacheParams {
    CacheParams::l2_default()
}

fn l3_params() -> CacheParams {
    CacheParams::l3_default(1)
}

/// Cache-resident reuse: a realistic L2 steady state where most lookups hit.
fn reuse_sequence(len: usize) -> Vec<LineAddr> {
    let mut rnd = 12345u64;
    (0..len)
        .map(|_| {
            rnd ^= rnd << 13;
            rnd ^= rnd >> 7;
            rnd ^= rnd << 17;
            LineAddr::new(rnd % 2048)
        })
        .collect()
}

fn bench_cache_access(c: &mut Criterion) {
    let seq = access_sequence(64 * 1024);
    let hot_seq = reuse_sequence(64 * 1024);
    let mut group = c.benchmark_group("cache_access_path");

    // One iteration = one full pass over the 64K-access sequence, so the
    // reported ns/iter divided by the sequence length is the per-access cost.
    group.bench_function("flat_array_new", |b| {
        let mut cache = Cache::new(l2_params());
        b.iter(|| {
            let mut hits = 0u64;
            for &line in &seq {
                if cache.demand_lookup(line, false).is_none() {
                    cache.fill(line, None, None, false);
                } else {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    group.bench_function("vec_of_vec_legacy", |b| {
        let mut cache = LegacyCache::new(l2_params());
        b.iter(|| {
            let mut hits = 0u64;
            for &line in &seq {
                if cache.demand_lookup(line, false).is_none() {
                    cache.fill(line);
                } else {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    group.bench_function("flat_array_new_hits", |b| {
        let mut cache = Cache::new(l2_params());
        b.iter(|| {
            let mut hits = 0u64;
            for &line in &hot_seq {
                if cache.demand_lookup(line, false).is_none() {
                    cache.fill(line, None, None, false);
                } else {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    group.bench_function("vec_of_vec_legacy_hits", |b| {
        let mut cache = LegacyCache::new(l2_params());
        b.iter(|| {
            let mut hits = 0u64;
            for &line in &hot_seq {
                if cache.demand_lookup(line, false).is_none() {
                    cache.fill(line);
                } else {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    // The shared L3 (2048 sets × 16 ways): the widest scan in Table I, where
    // the packed tag lane (2 cache lines) replaces a walk over 16 × 56 B of
    // metadata structs.
    let l3_seq: Vec<LineAddr> = {
        let mut rnd = 777u64;
        (0..64 * 1024)
            .map(|_| {
                rnd ^= rnd << 13;
                rnd ^= rnd >> 7;
                rnd ^= rnd << 17;
                // ~24K distinct lines over 2048 sets: ~12 of 16 ways live.
                LineAddr::new(rnd % 24_576)
            })
            .collect()
    };
    group.bench_function("flat_array_new_l3", |b| {
        let mut cache = Cache::new(l3_params());
        b.iter(|| {
            let mut hits = 0u64;
            for &line in &l3_seq {
                if cache.demand_lookup(line, false).is_none() {
                    cache.fill(line, None, None, false);
                } else {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    group.bench_function("vec_of_vec_legacy_l3", |b| {
        let mut cache = LegacyCache::new(l3_params());
        b.iter(|| {
            let mut hits = 0u64;
            for &line in &l3_seq {
                if cache.demand_lookup(line, false).is_none() {
                    cache.fill(line);
                } else {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    // Prefetch-probe path: every issued prefetch performs 1-3 residency
    // probes (`contains`) against the private levels before any fill.
    group.bench_function("flat_array_new_probe", |b| {
        let mut cache = Cache::new(l2_params());
        for &line in &hot_seq {
            cache.fill(line, None, None, false);
        }
        b.iter(|| {
            let mut resident = 0u64;
            for &line in &hot_seq {
                if cache.contains(line) {
                    resident += 1;
                }
                if cache.contains(LineAddr::new(line.raw() + (1 << 30))) {
                    resident += 1;
                }
            }
            black_box(resident)
        });
    });

    group.bench_function("vec_of_vec_legacy_probe", |b| {
        let mut cache = LegacyCache::new(l2_params());
        for &line in &hot_seq {
            cache.fill(line);
        }
        b.iter(|| {
            let mut resident = 0u64;
            for &line in &hot_seq {
                if cache.contains(line) {
                    resident += 1;
                }
                if cache.contains(LineAddr::new(line.raw() + (1 << 30))) {
                    resident += 1;
                }
            }
            black_box(resident)
        });
    });

    group.finish();
}

criterion_group! {
    name = cache_access_group;
    config = Criterion::default().sample_size(60);
    targets = bench_cache_access,
}
criterion_main!(cache_access_group);
