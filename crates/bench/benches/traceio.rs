//! Throughput of the `.altr` codec against the raw generator path: encoding
//! a stream to the block/delta/varint wire format, decoding it back, and —
//! the baseline every trace replay competes with — regenerating the same
//! records straight from the in-process generator. Decode must stay within
//! shouting distance of generation for file-backed experiments to be a
//! wall-clock win (they save the *simulation-independent* generation cost on
//! every replaying cell).

use std::io::Cursor;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use traceio::{decode_document, TraceWriter};

const ACCESSES: usize = 20_000;

/// One encoded document per pattern family: sequential (best case for delta
/// encoding) and pointer-chase (worst case: wide, sign-alternating deltas).
fn corpora() -> Vec<(&'static str, Vec<u8>)> {
    [("stream", "lbm"), ("chase", "mcf")]
        .into_iter()
        .map(|(label, bench)| {
            let source = traces::spec06::source(bench, ACCESSES);
            let mut writer =
                TraceWriter::new(Cursor::new(Vec::new()), bench, true, 0).expect("header");
            writer.write_all(source.records()).expect("encode");
            (label, writer.finish_into_inner().expect("finish").1.into_inner())
        })
        .collect()
}

fn encode_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("traceio_encode");
    for (label, bench) in [("stream", "lbm"), ("chase", "mcf")] {
        let source = traces::spec06::source(bench, ACCESSES);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut writer =
                    TraceWriter::new(Cursor::new(Vec::new()), bench, true, 0).expect("header");
                writer.write_all(source.records()).expect("encode");
                black_box(writer.finish_into_inner().expect("finish").1.into_inner().len())
            });
        });
    }
    group.finish();
}

fn decode_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("traceio_decode");
    for (label, bytes) in corpora() {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (_, records) = decode_document(black_box(&bytes)).expect("decode");
                black_box(records.len())
            });
        });
    }
    group.finish();
}

fn raw_replay_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("traceio_raw_generate");
    for (label, bench) in [("stream", "lbm"), ("chase", "mcf")] {
        let source = traces::spec06::source(bench, ACCESSES);
        group.bench_function(label, |b| {
            b.iter(|| black_box(source.records().count()));
        });
    }
    group.finish();
}

criterion_group!(benches, encode_throughput, decode_throughput, raw_replay_baseline);
criterion_main!(benches);
