//! Serial vs block-parallel `.altr` decode on a large in-memory document.
//! The acceptance bar for the parallel reader: at 4 workers the wall-clock
//! must beat the serial decoder on a multi-block trace (the output is
//! byte-identical by construction — pinned by the traceio tests — so speed
//! is the only thing left to measure).

use std::io::Cursor;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use traceio::{decode_document, decode_document_parallel, TraceWriter};

const ACCESSES: usize = 200_000;

/// One large encoded document per pattern family: sequential (cheap blocks)
/// and pointer-chase (expensive, wide-delta blocks — where parallel decode
/// pays off most).
fn corpora() -> Vec<(&'static str, Vec<u8>)> {
    [("stream", "lbm"), ("chase", "mcf")]
        .into_iter()
        .map(|(label, bench)| {
            let source = traces::spec06::source(bench, ACCESSES);
            let mut writer =
                TraceWriter::new(Cursor::new(Vec::new()), bench, true, 0).expect("header");
            writer.write_all(source.records()).expect("encode");
            (label, writer.finish_into_inner().expect("finish").1.into_inner())
        })
        .collect()
}

fn serial_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_serial");
    group.sample_size(10);
    for (label, bytes) in corpora() {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (_, records) = decode_document(black_box(&bytes)).expect("decode");
                black_box(records.len())
            });
        });
    }
    group.finish();
}

fn parallel_decode(c: &mut Criterion) {
    for workers in [2usize, 4] {
        let name = format!("decode_parallel_w{workers}");
        let mut group = c.benchmark_group(&name);
        group.sample_size(10);
        for (label, bytes) in corpora() {
            group.bench_function(label, |b| {
                b.iter(|| {
                    let (_, records) =
                        decode_document_parallel(black_box(&bytes), workers).expect("decode");
                    black_box(records.len())
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, serial_decode, parallel_decode);
criterion_main!(benches);
