//! Micro-benchmarks of the building blocks: per-access cost of the selection
//! algorithms, the prefetchers and the memory hierarchy. These are ablation
//! benches for the design choices called out in DESIGN.md (cost of DDRA per
//! demand access, cost of the simulator substrate per simulated access).

use cpu::{CompositeKind, SelectionAlgorithm, SystemConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsys::{Hierarchy, HierarchyParams};
use prefetch::build_composite;

fn selector_per_access_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("selector_per_access");
    let workload = traces::spec06::workload("GemsFDTD", 4_000);
    for algorithm in [
        SelectionAlgorithm::Ipcp,
        SelectionAlgorithm::Dol,
        SelectionAlgorithm::Bandit6,
        SelectionAlgorithm::Alecto,
    ] {
        group.bench_function(algorithm.label(), |b| {
            let mut selector = cpu::build_selector(algorithm, 3).expect("selector");
            let prefetchers = build_composite(CompositeKind::GsCsPmp);
            let mut idx = 0usize;
            b.iter(|| {
                let record = &workload.records[idx % workload.records.len()];
                idx += 1;
                black_box(selector.allocate(&record.demand(), &prefetchers))
            });
        });
    }
    group.finish();
}

fn prefetcher_training_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetcher_train");
    let workload = traces::spec06::workload("soplex", 4_000);
    for kind in [CompositeKind::GsCsPmp, CompositeKind::GsBertiCplx] {
        for mut pf in build_composite(kind) {
            let label = format!("{}_{}", kind.label(), pf.name());
            group.bench_function(label, |b| {
                let mut out = Vec::new();
                let mut idx = 0usize;
                b.iter(|| {
                    let record = &workload.records[idx % workload.records.len()];
                    idx += 1;
                    out.clear();
                    pf.train_and_predict(&record.demand(), 4, &mut out);
                    black_box(out.len())
                });
            });
        }
    }
    group.finish();
}

fn hierarchy_demand_access_cost(c: &mut Criterion) {
    c.bench_function("hierarchy_demand_access", |b| {
        let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
        let mut line = 0u64;
        let mut cycle = 0u64;
        b.iter(|| {
            line += 3;
            cycle += 10;
            black_box(hier.demand_access(0, alecto_types::LineAddr::new(line % 100_000), cycle))
        });
    });
}

fn full_system_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_throughput");
    group.sample_size(10);
    let workload = traces::spec06::workload("GemsFDTD", 3_000);
    for algorithm in [SelectionAlgorithm::NoPrefetching, SelectionAlgorithm::Alecto] {
        group.bench_function(algorithm.label(), |b| {
            b.iter(|| {
                black_box(cpu::run_single_core(
                    SystemConfig::skylake_like(1),
                    algorithm,
                    CompositeKind::GsCsPmp,
                    &workload,
                ))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets =
        selector_per_access_cost,
        prefetcher_training_cost,
        hierarchy_demand_access_cost,
        full_system_simulation_throughput,
}
criterion_main!(micro);
