//! Batched vs scalar hot paths in the memory system: the amortised
//! `Hierarchy::demand_access_batch` against a per-request `demand_access_kind`
//! loop, and the wide-compare `Cache::contains_batch` probe against scalar
//! `contains` calls. Results are identical by construction (pinned by the
//! memsys tests) — these benches exist to show the dispatch amortisation and
//! the packed-tag wide scan are wall-clock wins, and to catch regressions in
//! either.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsys::{Cache, CacheParams, DemandRequest, Hierarchy, HierarchyParams};

use alecto_types::LineAddr;

const BATCH: usize = 4096;

/// A deterministic mixed request sequence, timestamps advancing the way a
/// core's retirement time does: streaming + strided + xorshift-random lines,
/// one store in eight.
fn request_sequence(len: usize) -> Vec<DemandRequest> {
    let mut out = Vec::with_capacity(len);
    let mut streaming = 0x10_0000u64;
    let mut strided = 0x40_0000u64;
    let mut rnd = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..len {
        let line = match i % 3 {
            0 => {
                streaming += 1;
                streaming
            }
            1 => {
                strided += 5;
                strided
            }
            _ => {
                rnd ^= rnd << 13;
                rnd ^= rnd >> 7;
                rnd ^= rnd << 17;
                0x80_0000 + (rnd % (1 << 16))
            }
        };
        out.push(DemandRequest {
            line: LineAddr::new(line),
            now: (i as u64) * 3,
            is_store: i % 8 == 0,
        });
    }
    out
}

fn bench_demand_batch(c: &mut Criterion) {
    let requests = request_sequence(64 * 1024);
    let mut group = c.benchmark_group("hierarchy_demand");
    group.sample_size(20);

    group.bench_function("scalar_loop", |b| {
        let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
        b.iter(|| {
            let mut latency = 0u64;
            for r in &requests {
                latency += hier.demand_access_kind(0, r.line, r.now, r.is_store).latency;
            }
            black_box(latency)
        });
    });

    group.bench_function("batched", |b| {
        let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
        let mut results = Vec::with_capacity(BATCH);
        b.iter(|| {
            let mut latency = 0u64;
            for chunk in requests.chunks(BATCH) {
                results.clear();
                hier.demand_access_batch(0, chunk, &mut results);
                latency += results.iter().map(|r| r.latency).sum::<u64>();
            }
            black_box(latency)
        });
    });

    group.finish();
}

fn bench_probe_batch(c: &mut Criterion) {
    // A resident working set over the L3's 16 ways — the widest scan in
    // Table I, where the chunked wide compare earns its keep.
    let lines: Vec<LineAddr> = {
        let mut rnd = 777u64;
        (0..64 * 1024)
            .map(|_| {
                rnd ^= rnd << 13;
                rnd ^= rnd >> 7;
                rnd ^= rnd << 17;
                LineAddr::new(rnd % 24_576)
            })
            .collect()
    };
    let mut cache = Cache::new(CacheParams::l3_default(1));
    for &line in &lines {
        cache.fill(line, None, None, false);
    }
    let mut group = c.benchmark_group("cache_probe");
    group.sample_size(20);

    group.bench_function("scalar_contains", |b| {
        b.iter(|| {
            let mut resident = 0usize;
            for &line in &lines {
                resident += usize::from(cache.contains(line));
            }
            black_box(resident)
        });
    });

    group.bench_function("contains_batch", |b| {
        let mut out = Vec::with_capacity(BATCH);
        b.iter(|| {
            let mut resident = 0usize;
            for chunk in lines.chunks(BATCH) {
                out.clear();
                cache.contains_batch(chunk, &mut out);
                resident += out.iter().filter(|&&r| r).count();
            }
            black_box(resident)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_demand_batch, bench_probe_batch);
criterion_main!(benches);
