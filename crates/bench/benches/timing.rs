//! Benchmarks of the cycle-level timing model: the overhead of the DRAM
//! admission queue on the hot demand path, and the full drive loop under the
//! latency-sensitive vs bandwidth-bound presets. The timing model is pure
//! bookkeeping — these benches exist to catch it growing a real cost.

use alecto_types::LineAddr;
use cpu::{CompositeKind, SelectionAlgorithm, System, SystemConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsys::{BandwidthQueue, Hierarchy, HierarchyParams, TimingParams};

fn bandwidth_queue_admit(c: &mut Criterion) {
    let mut group = c.benchmark_group("bandwidth_queue_admit");
    for (label, params) in [
        ("latency_sensitive", TimingParams::latency_sensitive()),
        ("balanced", TimingParams::balanced()),
        ("bandwidth_bound", TimingParams::bandwidth_bound()),
    ] {
        group.bench_function(label, |b| {
            let mut queue = BandwidthQueue::new(params);
            let mut now = 0u64;
            b.iter(|| {
                now += 3;
                black_box(queue.admit(now))
            });
        });
    }
    group.finish();
}

fn demand_access_with_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_access_timing");
    for (label, params) in [
        ("balanced", TimingParams::balanced()),
        ("bandwidth_bound", TimingParams::bandwidth_bound()),
    ] {
        group.bench_function(label, |b| {
            let mut hier = Hierarchy::new(HierarchyParams::with_timing(1, params));
            let mut line = 0u64;
            let mut cycle = 0u64;
            b.iter(|| {
                line = line.wrapping_add(1);
                cycle += 7;
                black_box(hier.demand_access(0, LineAddr::new(line % 100_000), cycle))
            });
        });
    }
    group.finish();
}

fn drive_loop_under_timing_presets(c: &mut Criterion) {
    let mut group = c.benchmark_group("drive_loop_timing");
    group.sample_size(10);
    for (label, params) in [
        ("latency_sensitive", TimingParams::latency_sensitive()),
        ("bandwidth_bound", TimingParams::bandwidth_bound()),
    ] {
        group.bench_function(label, |b| {
            let source = traces::db::source("seq-scan", 4_000);
            b.iter(|| {
                let mut system = System::new(
                    SystemConfig::with_timing(1, params),
                    SelectionAlgorithm::Alecto,
                    CompositeKind::GsCsPmp,
                );
                let report =
                    system.run_sources(std::slice::from_ref(&source)).expect("non-empty sources");
                black_box(report.avg_mem_latency())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bandwidth_queue_admit,
    demand_access_with_timing,
    drive_loop_under_timing_presets
);
criterion_main!(benches);
