//! Per-record `step` cost of the two core timing models. The analytic
//! Approx model is the sweep default precisely because it is cheap; the
//! staged OutOfOrder pipeline buys fidelity with more bookkeeping (ROB
//! groups, LSQ scans, gshare lookups). These benches pin the price of that
//! trade on the two regimes that bracket it: a hit-heavy stream where the
//! step overhead *is* the simulation cost, and a miss-heavy stream where
//! hierarchy latency dominates and the models should converge.

use alecto_types::{Addr, MemoryRecord, Pc};
use cpu::{
    CompositeKind, CoreEngine, CoreModelKind, CoreTiming, PrefetchController, SelectionAlgorithm,
    SystemConfig,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsys::{Hierarchy, HierarchyParams};

/// A stream that stays resident in the L1: 16 hot lines revisited forever.
fn hit_heavy(n: u64) -> Vec<MemoryRecord> {
    (0..n)
        .map(|i| MemoryRecord::load(Pc::new(0x40), Addr::new(0x1_0000 + (i % 16) * 64), 6))
        .collect()
}

/// A stream that misses everywhere: a large-stride walk over a DRAM-sized
/// footprint, spread across channels and banks.
fn miss_heavy(n: u64) -> Vec<MemoryRecord> {
    (0..n)
        .map(|i| MemoryRecord::load(Pc::new(0x48), Addr::new(((i * 7919) % 200_000) * 64), 6))
        .collect()
}

fn core_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_step");
    group.sample_size(10);
    for (regime, records) in [("hit_heavy", hit_heavy(4_000)), ("miss_heavy", miss_heavy(4_000))] {
        for kind in [CoreModelKind::Approx, CoreModelKind::OutOfOrder] {
            let label = match kind {
                CoreModelKind::Approx => format!("{regime}/approx"),
                CoreModelKind::OutOfOrder => format!("{regime}/ooo"),
            };
            group.bench_function(&label, |b| {
                let config = SystemConfig::skylake_like(1).with_core_model(kind);
                b.iter(|| {
                    let controller =
                        PrefetchController::new(CompositeKind::GsCsPmp, SelectionAlgorithm::Alecto);
                    let mut core = CoreEngine::new(0, &config, controller);
                    let mut hier = Hierarchy::new(HierarchyParams::skylake_like(1));
                    for r in &records {
                        core.step(r, &mut hier);
                    }
                    black_box(core.current_time())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, core_step);
criterion_main!(benches);
