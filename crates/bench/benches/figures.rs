//! Criterion benchmarks, one group per paper table/figure.
//!
//! Each benchmark regenerates the corresponding experiment at a reduced
//! trace scale (so a full `cargo bench` stays tractable) and reports the
//! wall-clock cost of reproducing it. The harness binary (`alecto-harness`)
//! runs the same experiments at full scale and prints the result tables.

use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, RunScale};

fn bench_scale() -> RunScale {
    RunScale::with_accesses(2_000, 800)
}

fn fig01_table_misses(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig01_table_misses", |b| b.iter(|| figures::fig1(&scale)));
}

fn fig02_gemsfdtd_patterns(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig02_gemsfdtd_patterns", |b| b.iter(|| figures::fig2(&scale)));
}

fn table1_system_config(c: &mut Criterion) {
    let scale = RunScale::default();
    c.bench_function("table1_system_config", |b| b.iter(|| figures::table1(&scale)));
}

fn table2_prefetchers(c: &mut Criterion) {
    c.bench_function("table2_prefetchers", |b| b.iter(figures::table2));
}

fn table3_storage(c: &mut Criterion) {
    c.bench_function("table3_storage", |b| b.iter(figures::table3));
}

fn fig08_spec06_speedup(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig08_spec06_speedup", |b| b.iter(|| figures::fig8(&scale)));
}

fn fig09_spec17_speedup(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig09_spec17_speedup", |b| b.iter(|| figures::fig9(&scale)));
}

fn fig10_prefetch_metrics(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig10_prefetch_metrics", |b| b.iter(|| figures::fig10(&scale)));
}

fn fig11_alt_composite(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig11_alt_composite", |b| b.iter(|| figures::fig11(&scale)));
}

fn fig12_noncomposite(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig12_noncomposite", |b| b.iter(|| figures::fig12(&scale)));
}

fn fig13_temporal(c: &mut Criterion) {
    let scale = RunScale::with_accesses(1_000, 400);
    c.bench_function("fig13_temporal", |b| b.iter(|| figures::fig13(&scale)));
}

fn fig14_metadata_sweep(c: &mut Criterion) {
    let scale = RunScale::with_accesses(600, 300);
    c.bench_function("fig14_metadata_sweep", |b| b.iter(|| figures::fig14(&scale)));
}

fn fig15_llc_sweep(c: &mut Criterion) {
    let scale = RunScale::with_accesses(800, 400);
    c.bench_function("fig15_llc_sweep", |b| b.iter(|| figures::fig15(&scale)));
}

fn fig16_dram_bw(c: &mut Criterion) {
    let scale = RunScale::with_accesses(800, 400);
    c.bench_function("fig16_dram_bw", |b| b.iter(|| figures::fig16(&scale)));
}

fn fig17_multicore(c: &mut Criterion) {
    let scale = RunScale::with_accesses(800, 400);
    c.bench_function("fig17_multicore", |b| b.iter(|| figures::fig17(&scale)));
}

fn fig18_training_energy(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig18_training_energy", |b| b.iter(|| figures::fig18(&scale)));
}

fn fig19_ablation(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig19_ablation", |b| b.iter(|| figures::fig19(&scale)));
}

fn fig20_ppf(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig20_ppf", |b| b.iter(|| figures::fig20(&scale)));
}

fn vi_h_extended_bandit(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("vi_h_extended_bandit", |b| b.iter(|| figures::bandit_extended(&scale)));
}

criterion_group! {
    name = figures_group;
    config = Criterion::default().sample_size(10);
    targets =
        fig01_table_misses,
        fig02_gemsfdtd_patterns,
        table1_system_config,
        table2_prefetchers,
        table3_storage,
        fig08_spec06_speedup,
        fig09_spec17_speedup,
        fig10_prefetch_metrics,
        fig11_alt_composite,
        fig12_noncomposite,
        fig13_temporal,
        fig14_metadata_sweep,
        fig15_llc_sweep,
        fig16_dram_bw,
        fig17_multicore,
        fig18_training_energy,
        fig19_ablation,
        fig20_ppf,
        vi_h_extended_bandit,
}
criterion_main!(figures_group);
