//! Bench-only crate: the Criterion benchmark targets live in `benches/`.
//! One group per paper table/figure (`figures.rs`) plus micro-benchmarks of
//! the substrate (`microbench.rs`).
