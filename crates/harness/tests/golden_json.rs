//! Golden snapshot test for the machine-readable report: a `quick --json`
//! run must emit a document that our own strict parser accepts, that names
//! every experiment, that carries every benchmark × algorithm cell of the
//! grid-backed figures, and whose speedups are all finite and positive.

use std::process::Command;

use harness::report::json::{self, JsonValue};
use harness::JSON_SCHEMA;

fn run_quick_json(extra: &[&str]) -> JsonValue {
    let path = std::env::temp_dir().join(format!(
        "alecto-golden-{}-{}.json",
        std::process::id(),
        extra.len()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_alecto-harness"))
        .args(["quick", "--accesses", "60", "--json"])
        .arg(&path)
        .args(extra)
        .output()
        .expect("spawn harness");
    assert!(output.status.success(), "quick --json failed: {:?}", output.status);
    let text = std::fs::read_to_string(&path).expect("JSON report written");
    let _ = std::fs::remove_file(&path);
    json::parse(&text).expect("emitted report must parse")
}

fn experiments(doc: &JsonValue) -> &[JsonValue] {
    doc.get("experiments").and_then(JsonValue::as_array).expect("experiments array")
}

fn experiment<'a>(doc: &'a JsonValue, id: &str) -> &'a JsonValue {
    experiments(doc)
        .iter()
        .find(|e| e.get("id").and_then(JsonValue::as_str) == Some(id))
        .unwrap_or_else(|| panic!("report is missing experiment {id}"))
}

#[test]
fn quick_json_report_is_complete_and_well_formed() {
    let doc = run_quick_json(&[]);
    assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some(JSON_SCHEMA));

    // Every experiment of the evaluation appears, in run order.
    let ids: Vec<&str> =
        experiments(&doc).iter().filter_map(|e| e.get("id").and_then(JsonValue::as_str)).collect();
    for id in [
        "fig1", "fig2", "table1", "table2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig15", "fig16", "fig17", "table3", "vi_h", "fig18", "fig19", "fig20", "stress",
        "timing",
    ] {
        assert!(ids.contains(&id), "missing {id} in {ids:?}");
    }

    // The grid-backed figures carry one cell per benchmark × algorithm pair,
    // each with a finite, positive speedup and quality/energy metrics.
    let main_algorithms = ["IPCP", "DOL", "Bandit3", "Bandit6", "Alecto"];
    for (id, benchmarks) in [("fig8", 29), ("fig9", 21), ("fig17", 6)] {
        let cells = experiment(&doc, id).get("cells").and_then(JsonValue::as_array).unwrap();
        assert_eq!(cells.len(), benchmarks * main_algorithms.len(), "{id}: wrong cell count");
        let mut bench_names: Vec<&str> =
            cells.iter().filter_map(|c| c.get("benchmark").and_then(JsonValue::as_str)).collect();
        bench_names.sort_unstable();
        bench_names.dedup();
        assert_eq!(bench_names.len(), benchmarks, "{id}: benchmark set incomplete");
        for bench in bench_names {
            for algo in main_algorithms {
                let cell = cells
                    .iter()
                    .find(|c| {
                        c.get("benchmark").and_then(JsonValue::as_str) == Some(bench)
                            && c.get("algorithm").and_then(JsonValue::as_str) == Some(algo)
                    })
                    .unwrap_or_else(|| panic!("{id}: missing cell {bench} × {algo}"));
                let speedup = cell.get("speedup").and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
                assert!(
                    speedup.is_finite() && speedup > 0.0,
                    "{id}: {bench} × {algo} speedup {speedup} not finite-positive"
                );
                for metric in ["ipc", "baseline_ipc", "accuracy", "coverage", "hierarchy_nj"] {
                    let v = cell.get(metric).and_then(JsonValue::as_f64);
                    assert!(v.is_some(), "{id}: {bench} × {algo} missing {metric}");
                }
                // The v2 timing fields: every simulated cell retired real
                // instructions over real cycles and saw real memory latency.
                for metric in ["instructions", "cycles", "avg_mem_latency"] {
                    let v = cell.get(metric).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
                    assert!(
                        v.is_finite() && v > 0.0,
                        "{id}: {bench} × {algo} {metric} {v} not finite-positive"
                    );
                }
            }
        }
    }

    // Static tables have a table body but no cells.
    let table1 = experiment(&doc, "table1");
    assert_eq!(table1.get("cells").and_then(JsonValue::as_array).map(<[_]>::len), Some(0));
    let rows = table1.get("table").and_then(|t| t.get("rows")).and_then(JsonValue::as_array);
    assert!(rows.is_some_and(|r| !r.is_empty()));
}

#[test]
fn json_report_is_identical_across_worker_counts() {
    let serial = run_quick_json(&["--jobs", "1"]);
    let parallel = run_quick_json(&["--jobs", "4"]);
    assert_eq!(serial, parallel, "JSON report must not depend on --jobs");
}
