//! End-to-end exercise of the sweep server over real sockets: submit,
//! poll, fetch results, verify byte-identity with the in-process pipeline
//! (the same one the CLI's `--json` writes through), and verify the second,
//! identical submission is served entirely from the cell cache.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use harness::report::experiments_to_json;
use harness::report::json::{self, JsonValue};
use harness::{figures, RunScale, Server, ServerConfig};

/// Issues one HTTP/1.1 request and returns `(status, body)`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Submits a sweep and returns its job id.
fn submit(addr: &str, request: &str) -> String {
    let (status, body) = http(addr, "POST", "/v1/sweep", request);
    assert_eq!(status, 202, "submission should be accepted: {body}");
    let doc = json::parse(&body).expect("submission response is JSON");
    doc.get("id").and_then(JsonValue::as_str).expect("submission carries an id").to_string()
}

/// Polls `/v1/jobs/<id>` until the job leaves the queued/running states,
/// returning the final job document.
fn await_job(addr: &str, id: &str) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "job {id} should be pollable: {body}");
        let doc = json::parse(&body).expect("job document is JSON");
        match doc.get("status").and_then(JsonValue::as_str) {
            Some("queued" | "running") => {
                assert!(Instant::now() < deadline, "job {id} did not finish in time");
                std::thread::sleep(Duration::from_millis(25));
            }
            Some("done" | "failed") => return doc,
            other => panic!("job {id} has unexpected status {other:?}"),
        }
    }
}

/// Starts a server on an ephemeral port and returns its `host:port`.
fn start_server(config: ServerConfig) -> String {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("resolved address").to_string();
    std::thread::spawn(move || server.run());
    addr
}

const REPLAY_LBM: &str = r#"{"experiment":"replay","traces":["lbm"],"accesses":300}"#;

#[test]
fn sweep_lifecycle_cache_reuse_and_byte_identity() {
    let addr = start_server(ServerConfig::default());

    let (status, body) = http(&addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "health body: {body}");

    // Cold sweep: simulated from scratch, every cell a cache miss.
    let cold_id = submit(&addr, REPLAY_LBM);
    let cold_job = await_job(&addr, &cold_id);
    assert_eq!(cold_job.get("status").and_then(JsonValue::as_str), Some("done"));
    let cold_cells = cold_job.get("cells").expect("cells member");
    let completed = cold_cells.get("completed").and_then(JsonValue::as_f64).unwrap();
    assert!(completed >= 2.0, "replay runs a baseline plus algorithms");
    assert_eq!(cold_cells.get("cache_hits").and_then(JsonValue::as_f64), Some(0.0));
    assert_eq!(cold_cells.get("cache_misses").and_then(JsonValue::as_f64), Some(completed));
    let per_cell =
        cold_job.get("completed_cells").and_then(JsonValue::as_array).expect("per-cell progress");
    assert_eq!(per_cell.len() as f64, completed);
    assert!(per_cell.iter().all(|c| c.get("cached").and_then(JsonValue::as_bool) == Some(false)));

    let (status, cold_result) = http(&addr, "GET", &format!("/v1/results/{cold_id}"), "");
    assert_eq!(status, 200);

    // Byte-identity with the CLI pipeline: the server must serve exactly
    // what `alecto-harness trace replay lbm --accesses 300 --json` writes.
    let source = traces::Suite::of("lbm").expect("lbm registered").source("lbm", 300);
    let expected = experiments_to_json(&[figures::replay(
        std::slice::from_ref(&source),
        &RunScale::resolve(false, Some(300), None, Some(0)),
    )]);
    assert_eq!(cold_result, expected, "server result differs from the CLI pipeline");

    // Warm sweep: identical request, 100% served from the cell cache, and
    // the report is byte-identical to the cold one.
    let warm_id = submit(&addr, REPLAY_LBM);
    let warm_job = await_job(&addr, &warm_id);
    assert_eq!(warm_job.get("status").and_then(JsonValue::as_str), Some("done"));
    let warm_cells = warm_job.get("cells").expect("cells member");
    assert_eq!(warm_cells.get("cache_hits").and_then(JsonValue::as_f64), Some(completed));
    assert_eq!(warm_cells.get("cache_misses").and_then(JsonValue::as_f64), Some(0.0));
    let (status, warm_result) = http(&addr, "GET", &format!("/v1/results/{warm_id}"), "");
    assert_eq!(status, 200);
    assert_eq!(warm_result, cold_result, "cached sweep must be byte-identical");

    // The stats counters agree: at least half of all lookups hit (the warm
    // sweep is all hits) and the worker pool is visible.
    let (status, stats) = http(&addr, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let stats = json::parse(&stats).expect("stats is JSON");
    let cache = stats.get("cache").expect("cache member");
    assert_eq!(cache.get("hits").and_then(JsonValue::as_f64), Some(completed));
    assert_eq!(cache.get("misses").and_then(JsonValue::as_f64), Some(completed));
    assert!(cache.get("hit_rate").and_then(JsonValue::as_f64).unwrap() >= 0.5);
    let workers = stats.get("workers").expect("workers member");
    assert!(workers.get("total").and_then(JsonValue::as_f64).unwrap() >= 1.0);
}

#[test]
fn concurrent_submissions_all_complete() {
    let addr = start_server(ServerConfig { sweep_workers: 2, ..ServerConfig::default() });
    let addr = Arc::new(addr);
    let ids: Vec<String> = (0..4)
        .map(|i| {
            let addr = Arc::clone(&addr);
            std::thread::spawn(move || {
                // Two distinct benchmarks so some submissions share cells
                // and some don't — both paths must complete.
                let bench = if i % 2 == 0 { "lbm" } else { "povray" };
                submit(
                    &addr,
                    &format!(r#"{{"experiment":"replay","traces":["{bench}"],"accesses":200}}"#),
                )
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("submission thread"))
        .collect();
    assert_eq!(ids.len(), 4);
    let mut results = Vec::new();
    for id in &ids {
        let job = await_job(&addr, id);
        assert_eq!(job.get("status").and_then(JsonValue::as_str), Some("done"), "job {id}");
        let (status, body) = http(&addr, "GET", &format!("/v1/results/{id}"), "");
        assert_eq!(status, 200);
        results.push(body);
    }
    // Same benchmark → byte-identical reports, whatever the submission
    // interleaving; different benchmark → different reports.
    assert_eq!(results[0], results[2]);
    assert_eq!(results[1], results[3]);
    assert_ne!(results[0], results[1]);
}

#[test]
fn protocol_errors_use_the_error_envelope() {
    let addr = start_server(ServerConfig::default());
    let expect_code = |status: u16, body: &str, code: &str| {
        let doc = json::parse(body).unwrap_or_else(|e| panic!("body {body:?} not JSON: {e}"));
        let got = doc.get("error").and_then(|e| e.get("code")).and_then(JsonValue::as_str);
        assert_eq!(got, Some(code), "status {status} body {body}");
    };

    let (status, body) = http(&addr, "POST", "/v1/sweep", "not json");
    assert_eq!(status, 400);
    expect_code(status, &body, "invalid_json");

    let (status, body) = http(&addr, "POST", "/v1/sweep", r#"{"experiment":"fig99"}"#);
    assert_eq!(status, 400);
    expect_code(status, &body, "unknown_experiment");

    let (status, body) = http(&addr, "POST", "/v1/sweep", r#"{"experiment":"replay"}"#);
    assert_eq!(status, 400);
    expect_code(status, &body, "missing_traces");

    // An explicitly empty benchmark list is the same validation error — it
    // must come back as a 400 envelope, never reach `System::run_sources`
    // (whose empty-source case is a `RunError`, not a panic) and never kill
    // a sweep worker thread.
    let (status, body) = http(&addr, "POST", "/v1/sweep", r#"{"experiment":"replay","traces":[]}"#);
    assert_eq!(status, 400);
    expect_code(status, &body, "missing_traces");

    let (status, body) =
        http(&addr, "POST", "/v1/sweep", r#"{"experiment":"fig8","traces":["lbm"]}"#);
    assert_eq!(status, 400);
    expect_code(status, &body, "invalid_traces");

    let (status, body) = http(&addr, "POST", "/v1/sweep", r#"{"experiment":"fig8","jobs":0}"#);
    assert_eq!(status, 400);
    expect_code(status, &body, "invalid_scale");

    let (status, body) = http(
        &addr,
        "POST",
        "/v1/sweep",
        r#"{"experiment":"replay","traces":["file:/no/such.altr"]}"#,
    );
    assert_eq!(status, 400);
    expect_code(status, &body, "invalid_trace");

    let (status, body) = http(&addr, "GET", "/v1/jobs/999", "");
    assert_eq!(status, 404);
    expect_code(status, &body, "unknown_job");

    let (status, body) = http(&addr, "GET", "/v1/results/999", "");
    assert_eq!(status, 404);
    expect_code(status, &body, "unknown_job");

    let (status, body) = http(&addr, "PUT", "/v1/sweep", "{}");
    assert_eq!(status, 405);
    expect_code(status, &body, "method_not_allowed");

    let (status, body) = http(&addr, "GET", "/v2/anything", "");
    assert_eq!(status, 404);
    expect_code(status, &body, "not_found");
}

#[test]
fn cache_dir_serves_warm_sweeps_across_server_instances() {
    let dir = std::env::temp_dir().join(format!("alecto-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let first =
        start_server(ServerConfig { cache_dir: Some(dir.clone()), ..ServerConfig::default() });
    let cold_id = submit(&first, REPLAY_LBM);
    await_job(&first, &cold_id);
    let (_, cold_result) = http(&first, "GET", &format!("/v1/results/{cold_id}"), "");

    // A brand-new server instance (fresh memory tier) over the same
    // directory serves the identical bytes from disk.
    let second =
        start_server(ServerConfig { cache_dir: Some(dir.clone()), ..ServerConfig::default() });
    let warm_id = submit(&second, REPLAY_LBM);
    let warm_job = await_job(&second, &warm_id);
    let cells = warm_job.get("cells").expect("cells member");
    let hits = cells.get("cache_hits").and_then(JsonValue::as_f64).unwrap();
    assert_eq!(cells.get("cache_misses").and_then(JsonValue::as_f64), Some(0.0));
    assert!(hits >= 2.0, "all cells should come from the persisted tier");
    let (status, warm_result) = http(&second, "GET", &format!("/v1/results/{warm_id}"), "");
    assert_eq!(status, 200);
    assert_eq!(warm_result, cold_result, "disk-tier reports must be byte-identical");

    let (_, stats) = http(&second, "GET", "/v1/stats", "");
    let stats = json::parse(&stats).expect("stats is JSON");
    let disk_hits =
        stats.get("cache").and_then(|c| c.get("disk_hits")).and_then(JsonValue::as_f64).unwrap();
    assert!(disk_hits >= 2.0, "the warm sweep's hits are disk hits: {stats:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn machine_sweeps_match_the_cli_and_echo_their_identity() {
    let addr = start_server(ServerConfig::default());

    // An unknown machine name is a 400 envelope, same as every other
    // validation failure — nothing reaches the sweep queue.
    let (status, body) = http(
        &addr,
        "POST",
        "/v1/sweep",
        r#"{"experiment":"replay","traces":["lbm"],"machine":"laptop"}"#,
    );
    assert_eq!(status, 400);
    let doc = json::parse(&body).expect("error body is JSON");
    let code = doc.get("error").and_then(|e| e.get("code")).and_then(JsonValue::as_str);
    assert_eq!(code, Some("invalid_machine"), "body: {body}");

    // A built-in machine runs to completion and the job document echoes the
    // machine's name and fingerprint in its scale line.
    let spec = machine::builtin("server").expect("server is a built-in");
    let id = submit(
        &addr,
        r#"{"experiment":"replay","traces":["lbm"],"accesses":300,"machine":"server"}"#,
    );
    let job = await_job(&addr, &id);
    assert_eq!(job.get("status").and_then(JsonValue::as_str), Some("done"), "job: {job:?}");
    let echoed = job.get("scale").and_then(|s| s.get("machine")).expect("scale echoes machine");
    assert_eq!(echoed.get("name").and_then(JsonValue::as_str), Some("server"));
    assert_eq!(
        echoed.get("fingerprint").and_then(JsonValue::as_str),
        Some(format!("0x{}", spec.fingerprint_hex()).as_str())
    );

    // Byte-identity with the CLI pipeline: the server must serve exactly what
    // `alecto-harness trace replay lbm --accesses 300 --machine server --json`
    // writes.
    let (status, result) = http(&addr, "GET", &format!("/v1/results/{id}"), "");
    assert_eq!(status, 200);
    let source = traces::Suite::of("lbm").expect("lbm registered").source("lbm", 300);
    let scale = RunScale::resolve(false, Some(300), None, Some(0)).with_machine(spec);
    let expected = experiments_to_json(&[figures::replay(std::slice::from_ref(&source), &scale)]);
    assert_eq!(result, expected, "machine sweep differs from the CLI pipeline");

    // A machine-less job keeps the old null echo.
    let plain_id = submit(&addr, REPLAY_LBM);
    let plain_job = await_job(&addr, &plain_id);
    let echoed = plain_job.get("scale").and_then(|s| s.get("machine")).expect("machine member");
    assert!(matches!(echoed, JsonValue::Null), "machine-less scale must echo null: {plain_job:?}");
}
