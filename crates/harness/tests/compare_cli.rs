//! End-to-end tests for the `alecto-harness compare` perf gate: the exact
//! exit-code contract CI's `perf-gate` job relies on — 0 in tolerance, 1 on
//! regression (with a per-cell diff table), 2 on usage or parse errors.

use std::path::PathBuf;
use std::process::Command;

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alecto-harness"))
}

/// A minimal but schema-complete report with one grid-backed experiment.
fn report_doc(speedup: f64, ipc: f64) -> String {
    format!(
        "{{\"schema\":\"alecto-bench-v2\",\"experiments\":[{{\"id\":\"fig8\",\
         \"title\":\"t\",\"notes\":[],\"table\":{{\"headers\":[],\"rows\":[]}},\
         \"cells\":[{{\"benchmark\":\"mcf\",\"memory_intensive\":true,\
         \"algorithm\":\"Alecto\",\"speedup\":{speedup},\"ipc\":{ipc},\
         \"baseline_ipc\":1.0,\"accuracy\":0.5,\"coverage\":0.5,\
         \"hierarchy_nj\":1.0,\"prefetcher_nj\":1.0,\"instructions\":1000,\
         \"cycles\":800,\"avg_mem_latency\":12.5}}]}}]}}\n"
    )
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("alecto-compare-{}-{name}", std::process::id()));
    std::fs::write(&path, content).expect("write fixture");
    path
}

#[test]
fn identical_reports_exit_zero() {
    let base = write_temp("eq-base.json", &report_doc(1.20, 0.80));
    let cand = write_temp("eq-cand.json", &report_doc(1.20, 0.80));
    let output = harness().arg("compare").args([&base, &cand]).output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(0), "identical reports must pass");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("PASS"), "pass verdict missing:\n{stdout}");
    assert!(stdout.contains("1 shared cell"), "cell count missing:\n{stdout}");
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(cand);
}

#[test]
fn injected_regression_exits_one_with_diff_table() {
    // The injected-regression fixture: candidate speedup is 25% below the
    // baseline — far outside any sane tolerance — so the gate must fail
    // and name the offending cell and metric.
    let base = write_temp("reg-base.json", &report_doc(1.20, 0.80));
    let cand = write_temp("reg-cand.json", &report_doc(0.90, 0.80));
    let output = harness()
        .arg("compare")
        .args([&base, &cand])
        .args(["--tolerance", "5"])
        .output()
        .expect("spawn harness");
    assert_eq!(output.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("FAIL"), "fail verdict missing:\n{stdout}");
    for needle in ["fig8", "mcf", "Alecto", "speedup", "-25.00%"] {
        assert!(stdout.contains(needle), "diff table is missing {needle:?}:\n{stdout}");
    }
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(cand);
}

#[test]
fn regression_within_explicit_tolerance_exits_zero() {
    let base = write_temp("tol-base.json", &report_doc(1.00, 1.00));
    let cand = write_temp("tol-cand.json", &report_doc(0.90, 0.92));
    let output = harness()
        .arg("compare")
        .args([&base, &cand])
        .args(["--tolerance", "15"])
        .output()
        .expect("spawn harness");
    assert_eq!(output.status.code(), Some(0), "a 10% drop passes a 15% tolerance");
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(cand);
}

#[test]
fn usage_and_parse_errors_exit_two() {
    let good = write_temp("err-good.json", &report_doc(1.0, 1.0));
    let bad = write_temp("err-bad.json", "this is not json");

    // Missing operands.
    let output = harness().arg("compare").output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("usage: alecto-harness"), "usage missing:\n{stderr}");

    // Only one operand.
    let output = harness().arg("compare").arg(&good).output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));

    // Nonexistent file.
    let output = harness()
        .arg("compare")
        .arg(&good)
        .arg("/nonexistent-dir-xyz/report.json")
        .output()
        .expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("cannot read"), "io error not surfaced:\n{stderr}");

    // Malformed candidate JSON.
    let output = harness().arg("compare").args([&good, &bad]).output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("candidate:"), "side of the error not named:\n{stderr}");

    // Malformed tolerance values.
    for tolerance in ["-3", "lots", ""] {
        let output = harness()
            .arg("compare")
            .args([&good, &good])
            .args(["--tolerance", tolerance])
            .output()
            .expect("spawn harness");
        assert_eq!(output.status.code(), Some(2), "--tolerance {tolerance:?} must be rejected");
    }

    // Unknown flags.
    let output = harness()
        .arg("compare")
        .args([&good, &good])
        .arg("--bogus")
        .output()
        .expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));

    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(bad);
}

#[test]
fn disjoint_reports_exit_two_not_pass() {
    // A comparison that gates nothing must not read as a pass — a renamed
    // experiment id would otherwise silently disarm the CI perf gate.
    let base = write_temp("disj-base.json", &report_doc(1.0, 1.0));
    let renamed = report_doc(1.0, 1.0).replace("\"id\":\"fig8\"", "\"id\":\"fig8-renamed\"");
    let cand = write_temp("disj-cand.json", &renamed);
    let output = harness().arg("compare").args([&base, &cand]).output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2), "zero shared cells must not pass");
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("share no cells"), "cause not named:\n{stderr}");
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(cand);
}

#[test]
fn real_reports_round_trip_through_the_gate() {
    // Generate two real (tiny) reports with the harness itself and gate one
    // against the other: same binary, same seed, same scale — must pass at
    // zero tolerance. This is exactly the CI perf-gate flow in miniature.
    let dir = std::env::temp_dir();
    let base = dir.join(format!("alecto-gate-base-{}.json", std::process::id()));
    let cand = dir.join(format!("alecto-gate-cand-{}.json", std::process::id()));
    for path in [&base, &cand] {
        let output = harness()
            .args(["stress", "--accesses", "120", "--jobs", "2", "--json"])
            .arg(path)
            .output()
            .expect("spawn harness");
        assert!(output.status.success(), "report generation failed: {:?}", output.status);
    }
    let output = harness()
        .arg("compare")
        .args([&base, &cand])
        .args(["--tolerance", "0"])
        .output()
        .expect("spawn harness");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert_eq!(
        output.status.code(),
        Some(0),
        "deterministic reruns must pass a zero-tolerance gate:\n{stdout}"
    );
    assert!(!stdout.contains("compared 0 shared cell"), "gate compared nothing:\n{stdout}");
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(cand);
}
