//! End-to-end tests of the `list` and `trace` subcommands: the record →
//! info → replay pipeline, the `file:` scheme, the importer, and the
//! argument-validation contract (exit 2 + usage on bad flags, before any
//! simulation runs).

use std::path::PathBuf;
use std::process::Command;

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alecto-harness"))
}

/// A collision-free scratch path, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Self(
            std::env::temp_dir()
                .join(format!("alecto-trace-cli-{}-{unique}-{name}", std::process::id())),
        )
    }

    fn as_str(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn list_prints_every_suite_and_experiment_and_exits_zero() {
    let output = harness().arg("list").output().expect("spawn harness");
    assert!(output.status.success(), "list must exit 0, got {:?}", output.status);
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    // Every suite of the registry, a member of each, every experiment id,
    // and the file scheme all appear.
    for needle in [
        "spec06",
        "spec17",
        "parsec",
        "ligra",
        "pointer-chase",
        "web-serve",
        "database",
        "mcf",
        "canneal",
        "BFS",
        "web-cache",
        "hash-join",
        "fig8",
        "fig17",
        "stress",
        "timing",
        "quick",
        "file:<PATH>",
    ] {
        assert!(stdout.contains(needle), "list output is missing {needle}:\n{stdout}");
    }
}

#[test]
fn record_info_replay_round_trip_is_byte_identical_to_the_generated_run() {
    let trace = Scratch::new("rt.altr");
    let replayed_json = Scratch::new("replayed.json");
    let generated_json = Scratch::new("generated.json");

    // Record a small trace of a registered benchmark.
    let output = harness()
        .args(["trace", "record", "web-cache", "--accesses", "400", "--out", trace.as_str()])
        .output()
        .expect("spawn harness");
    assert!(output.status.success(), "record failed: {output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    assert!(stdout.contains("recorded 400 record(s) of web-cache"), "{stdout}");

    // info verifies the checksum and reports the header.
    let output = harness().args(["trace", "info", trace.as_str()]).output().expect("spawn harness");
    assert!(output.status.success(), "info failed: {output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    for needle in ["web-cache", "records", "400", "(verified)", "format version"] {
        assert!(stdout.contains(needle), "info output is missing {needle}:\n{stdout}");
    }

    // Replaying the file and running the generated source emit
    // byte-identical reports, whatever the worker count.
    let output = harness()
        .args([
            "trace",
            "replay",
            &format!("file:{}", trace.as_str()),
            "--jobs",
            "3",
            "--json",
            replayed_json.as_str(),
        ])
        .output()
        .expect("spawn harness");
    assert!(output.status.success(), "file replay failed: {output:?}");
    let output = harness()
        .args([
            "trace",
            "replay",
            "web-cache",
            "--accesses",
            "400",
            "--jobs",
            "1",
            "--json",
            generated_json.as_str(),
        ])
        .output()
        .expect("spawn harness");
    assert!(output.status.success(), "generated replay failed: {output:?}");
    let replayed = std::fs::read(&replayed_json.0).expect("replayed report");
    let generated = std::fs::read(&generated_json.0).expect("generated report");
    assert!(!replayed.is_empty());
    assert_eq!(replayed, generated, "file replay diverged from the generated-source run");
}

#[test]
fn import_converts_champsim_text_and_rejects_malformed_lines() {
    let csv = Scratch::new("ext.csv");
    let trace = Scratch::new("ext.altr");
    std::fs::write(&csv.0, "# comment\n0x400, 0x1000, L, 3\n0x404 0x2000 S\n8,12288,w,5,1\n")
        .expect("write csv");
    let output = harness()
        .args(["trace", "import", csv.as_str(), "--out", trace.as_str(), "--memory-intensive"])
        .output()
        .expect("spawn harness");
    assert!(output.status.success(), "import failed: {output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    assert!(stdout.contains("imported 3 record(s)"), "{stdout}");

    // The imported trace is a first-class replay source.
    let output = harness()
        .args(["trace", "replay", &format!("file:{}", trace.as_str())])
        .output()
        .expect("spawn harness");
    assert!(output.status.success(), "imported replay failed: {output:?}");

    // A malformed line is rejected with its line number.
    std::fs::write(&csv.0, "0x400, 0x1000, L\nnot-a-record\n").expect("write csv");
    let output = harness()
        .args(["trace", "import", csv.as_str(), "--out", trace.as_str()])
        .output()
        .expect("spawn harness");
    assert_eq!(output.status.code(), Some(2), "malformed import must exit 2");
    let stderr = String::from_utf8(output.stderr).expect("utf-8");
    assert!(stderr.contains("line 2"), "error names the line:\n{stderr}");
}

#[test]
fn zero_accesses_exits_two_with_usage_everywhere() {
    // Satellite contract: `--accesses 0` is rejected exactly like
    // `--jobs 0`, in the experiment path and in every trace action.
    let cases: &[&[&str]] = &[
        &["quick", "--accesses", "0"],
        &["fig8", "--accesses", "0"],
        &["trace", "record", "mcf", "--accesses", "0", "--out", "x.altr"],
        &["trace", "replay", "mcf", "--accesses", "0"],
    ];
    for args in cases {
        let output = harness().args(*args).output().expect("spawn harness");
        assert_eq!(output.status.code(), Some(2), "{args:?} must exit 2");
        let stderr = String::from_utf8(output.stderr).expect("utf-8");
        assert!(stderr.contains("usage: alecto-harness"), "{args:?} must print usage");
    }
}

#[test]
fn unwritable_out_path_exits_two_with_usage_before_recording() {
    let output = harness()
        .args([
            "trace",
            "record",
            "mcf",
            "--accesses",
            "60",
            "--out",
            "/nonexistent-dir-xyz/t.altr",
        ])
        .output()
        .expect("spawn harness");
    assert_eq!(output.status.code(), Some(2), "bad --out must exit 2");
    let stderr = String::from_utf8(output.stderr).expect("utf-8");
    assert!(stderr.contains("error: --out"), "error names the flag:\n{stderr}");
    assert!(stderr.contains("usage: alecto-harness"), "usage follows:\n{stderr}");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    assert!(stdout.is_empty(), "nothing may be recorded before the path check:\n{stdout}");
}

#[test]
fn trace_usage_errors_exit_two() {
    let missing = Scratch::new("missing.altr");
    let probe = Scratch::new("probe.altr");
    let out = probe.as_str();
    let cases: &[&[&str]] = &[
        // Unknown action, missing operands, unknown flags.
        &["trace"],
        &["trace", "frobnicate"],
        &["trace", "record", "--out", out],
        &["trace", "record", "mcf"],
        &["trace", "record", "mcf", "extra", "--out", out],
        &["trace", "replay", "--jobs", "2"],
        &["trace", "record", "mcf", "--bogus", "--out", out],
        // Unknown benchmark and unreadable trace file.
        &["trace", "record", "no-such-bench", "--out", out],
    ];
    for args in cases {
        let output = harness().args(*args).output().expect("spawn harness");
        assert_eq!(output.status.code(), Some(2), "{args:?} must exit 2");
    }
    let output =
        harness().args(["trace", "info", missing.as_str()]).output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2), "missing trace file must exit 2");
    let stderr = String::from_utf8(output.stderr).expect("utf-8");
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn corrupt_trace_files_are_rejected_before_any_simulation() {
    let trace = Scratch::new("corrupt.altr");
    let output = harness()
        .args(["trace", "record", "seq-scan", "--accesses", "300", "--out", trace.as_str()])
        .output()
        .expect("spawn harness");
    assert!(output.status.success());
    // Flip a byte deep in the body.
    let mut bytes = std::fs::read(&trace.0).expect("read trace");
    let idx = bytes.len() - 40;
    bytes[idx] ^= 0x55;
    std::fs::write(&trace.0, &bytes).expect("rewrite");
    let spec = format!("file:{}", trace.as_str());
    for args in [vec!["trace", "info", trace.as_str()], vec!["trace", "replay", spec.as_str()]] {
        let output = harness().args(&args).output().expect("spawn harness");
        assert_eq!(output.status.code(), Some(2), "{args:?} must exit 2 on corruption");
        let stderr = String::from_utf8(output.stderr).expect("utf-8");
        assert!(
            stderr.contains("checksum") || stderr.contains("error"),
            "corruption must be named:\n{stderr}"
        );
    }
}
