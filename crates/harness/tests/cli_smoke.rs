//! Smoke tests for the `alecto-harness` CLI: the binary must stay runnable,
//! not just compilable, so CI exercises an end-to-end `quick` run on a tiny
//! access budget and the usage/exit-code contract.

use std::process::Command;

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alecto-harness"))
}

#[test]
fn quick_on_a_tiny_budget_exits_zero_and_emits_a_report() {
    let output = harness().args(["quick", "--accesses", "60"]).output().expect("spawn harness");
    assert!(output.status.success(), "expected exit 0, got {:?}", output.status);
    let stdout = String::from_utf8(output.stdout).expect("utf-8 report");
    // Every experiment of the evaluation must appear, rendered as a table.
    for id in ["fig1", "fig8", "fig17", "table1", "table3", "vi_h"] {
        assert!(stdout.contains(&format!("== {id} ")), "report is missing {id}:\n{stdout}");
    }
    assert!(stdout.lines().count() > 50, "report looks truncated:\n{stdout}");
}

#[test]
fn single_experiment_respects_accesses_override() {
    // fig2 is scale-dependent: its table reports per-PC access counts out of
    // the workload's total, so an honored `--accesses 120` bounds their sum
    // (the default scale would show thousands).
    let output = harness().args(["fig2", "--accesses", "120"]).output().expect("spawn harness");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8 report");
    let per_pc_total: u64 = stdout
        .lines()
        .filter(|l| l.starts_with("0x"))
        .filter_map(|l| l.split_whitespace().nth(1)?.parse::<u64>().ok())
        .sum();
    assert!(per_pc_total > 0, "fig2 table has no per-PC rows:\n{stdout}");
    assert!(per_pc_total <= 120, "override ignored: {per_pc_total} accesses listed\n{stdout}");
}

#[test]
fn scale_independent_experiment_renders() {
    let output = harness().args(["table2"]).output().expect("spawn harness");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8 report");
    assert!(stdout.contains("Prefetchers being selected"));
}

#[test]
fn jobs_flag_keeps_output_byte_identical() {
    // The worker count is a pure wall-clock knob: the full quick report —
    // every table of every experiment — must not change by a byte.
    let serial =
        harness().args(["quick", "--accesses", "60", "--jobs", "1"]).output().expect("spawn");
    let parallel =
        harness().args(["quick", "--accesses", "60", "--jobs", "4"]).output().expect("spawn");
    assert!(serial.status.success() && parallel.status.success());
    assert_eq!(serial.stdout, parallel.stdout, "--jobs changed the report");
}

#[test]
fn accesses_flag_derives_the_multicore_budget_explicitly() {
    // `--accesses N` sets the multi-core per-core budget to max(N / 3, 100);
    // for N = 90 that derivation floors at 100, so spelling the same value
    // out with `--multicore-accesses` must reproduce the report exactly...
    let derived = harness().args(["quick", "--accesses", "90"]).output().expect("spawn");
    let explicit = harness()
        .args(["quick", "--accesses", "90", "--multicore-accesses", "100"])
        .output()
        .expect("spawn");
    assert!(derived.status.success() && explicit.status.success());
    assert_eq!(derived.stdout, explicit.stdout);
    // ...while a different override must change the multi-core figures.
    let smaller = harness()
        .args(["quick", "--accesses", "90", "--multicore-accesses", "40"])
        .output()
        .expect("spawn");
    assert!(smaller.status.success());
    assert_ne!(derived.stdout, smaller.stdout);
}

#[test]
fn zero_or_malformed_jobs_exits_two_with_usage() {
    for jobs in ["0", "many", "-1"] {
        let output = harness().args(["quick", "--jobs", jobs]).output().expect("spawn harness");
        assert_eq!(output.status.code(), Some(2), "--jobs {jobs} must be rejected");
        let stderr = String::from_utf8(output.stderr).expect("utf-8 usage");
        assert!(stderr.contains("usage: alecto-harness"));
    }
    // A missing value is rejected too.
    let output = harness().args(["quick", "--jobs"]).output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn unwritable_json_path_exits_two_with_usage() {
    // A bad --json path (missing parent directory) is a flag error like any
    // other: exit 2 with the usage text, not a raw io error with exit 1 —
    // and it must fail *before* the experiments run, not after minutes.
    let output = harness()
        .args(["quick", "--accesses", "60", "--json", "/nonexistent-dir-xyz/report.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(output.status.code(), Some(2), "bad --json path must exit 2");
    let stderr = String::from_utf8(output.stderr).expect("utf-8 usage");
    assert!(stderr.contains("error: --json"), "error names the flag:\n{stderr}");
    assert!(stderr.contains("usage: alecto-harness"), "usage follows:\n{stderr}");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    assert!(stdout.is_empty(), "no experiment may run before the path check:\n{stdout}");
}

#[test]
fn stress_experiment_sweeps_access_counts() {
    let output =
        harness().args(["stress", "--accesses", "200", "--jobs", "2"]).output().expect("spawn");
    assert!(output.status.success(), "stress must exit 0, got {:?}", output.status);
    let stdout = String::from_utf8(output.stdout).expect("utf-8 report");
    assert!(stdout.contains("== stress "), "missing stress header:\n{stdout}");
    for row in ["linked-list@1x", "web-cache@2x", "hash-join@4x", "mcf@4x"] {
        assert!(stdout.contains(row), "stress table is missing {row}:\n{stdout}");
    }
}

#[test]
fn timing_experiment_contrasts_both_regimes() {
    let output =
        harness().args(["timing", "--accesses", "200", "--jobs", "2"]).output().expect("spawn");
    assert!(output.status.success(), "timing must exit 0, got {:?}", output.status);
    let stdout = String::from_utf8(output.stdout).expect("utf-8 report");
    assert!(stdout.contains("== timing "), "missing timing header:\n{stdout}");
    for row in ["mcf@lat", "mcf@bw", "seq-scan@lat", "seq-scan@bw"] {
        assert!(stdout.contains(row), "timing table is missing {row}:\n{stdout}");
    }
    assert!(stdout.contains("avg mem lat"), "latency column missing:\n{stdout}");
}

#[test]
fn unknown_experiment_exits_two_with_usage() {
    let output = harness().arg("fig99").output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).expect("utf-8 usage");
    assert!(stderr.contains("usage: alecto-harness"), "no usage on stderr:\n{stderr}");
}

#[test]
fn no_arguments_exits_two_with_usage() {
    let output = harness().output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).expect("utf-8 usage");
    assert!(stderr.contains("experiments:"));
}

#[test]
fn machine_flag_unknown_name_exits_two_with_usage() {
    // Machine resolution is a flag error like any other: exit 2 with usage,
    // and it must fail *before* any simulation runs.
    let output = harness()
        .args(["quick", "--accesses", "60", "--machine", "laptop"])
        .output()
        .expect("spawn");
    assert_eq!(output.status.code(), Some(2), "unknown machine must exit 2");
    let stderr = String::from_utf8(output.stderr).expect("utf-8 usage");
    assert!(stderr.contains("error: --machine"), "error names the flag:\n{stderr}");
    assert!(stderr.contains("not a built-in"), "error lists the registry:\n{stderr}");
    assert!(stderr.contains("usage: alecto-harness"), "usage follows:\n{stderr}");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    assert!(stdout.is_empty(), "no experiment may run before the machine check:\n{stdout}");
}

#[test]
fn machine_flag_unreadable_or_invalid_file_exits_two_with_usage() {
    // A path that does not exist...
    let output = harness()
        .args(["quick", "--accesses", "60", "--machine", "/nonexistent-dir-xyz/m.toml"])
        .output()
        .expect("spawn");
    assert_eq!(output.status.code(), Some(2), "unreadable machine file must exit 2");
    let stderr = String::from_utf8(output.stderr).expect("utf-8 usage");
    assert!(stderr.contains("error: --machine"), "error names the flag:\n{stderr}");
    assert!(
        stderr.contains("cannot read machine file"),
        "error explains the io failure:\n{stderr}"
    );
    assert!(stderr.contains("usage: alecto-harness"), "usage follows:\n{stderr}");

    // ...and a file that exists but fails to parse, with the offending line.
    let path = std::env::temp_dir().join(format!("alecto-bad-machine-{}.toml", std::process::id()));
    std::fs::write(&path, "format = \"alecto-machine-v1\"\nname = \"bad\"\ncores = oops\n")
        .expect("write temp machine");
    let output = harness()
        .args(["quick", "--accesses", "60", "--machine", path.to_str().unwrap()])
        .output()
        .expect("spawn");
    std::fs::remove_file(&path).ok();
    assert_eq!(output.status.code(), Some(2), "invalid machine file must exit 2");
    let stderr = String::from_utf8(output.stderr).expect("utf-8 usage");
    assert!(stderr.contains("error: --machine"), "error names the flag:\n{stderr}");
    assert!(stderr.contains("line 3"), "error carries the offending line:\n{stderr}");
    assert!(stderr.contains("usage: alecto-harness"), "usage follows:\n{stderr}");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    assert!(stdout.is_empty(), "no experiment may run before the machine check:\n{stdout}");
}

#[test]
fn machines_subcommand_lists_shows_and_checks() {
    // `machines` (and `machines list`) tabulate the built-in registry.
    let output = harness().arg("machines").output().expect("spawn");
    assert!(output.status.success(), "machines must exit 0, got {:?}", output.status);
    let stdout = String::from_utf8(output.stdout).expect("utf-8 listing");
    for name in ["mobile", "desktop", "server", "manycore"] {
        assert!(stdout.contains(name), "listing is missing {name}:\n{stdout}");
    }
    assert!(stdout.contains("fingerprint"), "listing is missing fingerprints:\n{stdout}");

    // `machines show <name>` prints the canonical, re-parseable text.
    let output = harness().args(["machines", "show", "desktop"]).output().expect("spawn");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8 canonical text");
    assert!(stdout.contains("format = \"alecto-machine-v1\""), "not canonical:\n{stdout}");
    assert!(stdout.contains("name = \"desktop\""), "wrong machine:\n{stdout}");
    assert!(stdout.contains("# fingerprint: 0x"), "fingerprint footer missing:\n{stdout}");

    // `machines check` validates every named target; a bad one exits 2.
    let output = harness()
        .args(["machines", "check", "mobile", "desktop", "server", "manycore"])
        .output()
        .expect("spawn");
    assert!(output.status.success(), "built-ins must pass their own check");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 check report");
    assert_eq!(stdout.matches("ok (machine ").count(), 4, "one ok line per target:\n{stdout}");
    let output = harness().args(["machines", "check", "laptop"]).output().expect("spawn");
    assert_eq!(output.status.code(), Some(2), "unknown target must fail the check");
}

#[test]
fn machine_flag_selects_a_builtin_and_changes_the_report() {
    // A valid --machine runs to completion and actually changes the numbers
    // (desktop differs from the anonymous default in cache geometry), while
    // the flag's absence keeps today's report untouched.
    let default = harness().args(["fig8", "--accesses", "60"]).output().expect("spawn");
    let desktop = harness()
        .args(["fig8", "--accesses", "60", "--machine", "desktop"])
        .output()
        .expect("spawn");
    let mobile = harness()
        .args(["fig8", "--accesses", "60", "--machine", "mobile"])
        .output()
        .expect("spawn");
    assert!(default.status.success() && desktop.status.success() && mobile.status.success());
    assert_ne!(default.stdout, mobile.stdout, "mobile must change the report");
    assert_ne!(desktop.stdout, mobile.stdout, "distinct machines must differ");
}
