//! Smoke tests for the `alecto-harness` CLI: the binary must stay runnable,
//! not just compilable, so CI exercises an end-to-end `quick` run on a tiny
//! access budget and the usage/exit-code contract.

use std::process::Command;

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alecto-harness"))
}

#[test]
fn quick_on_a_tiny_budget_exits_zero_and_emits_a_report() {
    let output = harness().args(["quick", "--accesses", "60"]).output().expect("spawn harness");
    assert!(output.status.success(), "expected exit 0, got {:?}", output.status);
    let stdout = String::from_utf8(output.stdout).expect("utf-8 report");
    // Every experiment of the evaluation must appear, rendered as a table.
    for id in ["fig1", "fig8", "fig17", "table1", "table3", "vi_h"] {
        assert!(stdout.contains(&format!("== {id} ")), "report is missing {id}:\n{stdout}");
    }
    assert!(stdout.lines().count() > 50, "report looks truncated:\n{stdout}");
}

#[test]
fn single_experiment_respects_accesses_override() {
    // fig2 is scale-dependent: its table reports per-PC access counts out of
    // the workload's total, so an honored `--accesses 120` bounds their sum
    // (the default scale would show thousands).
    let output = harness().args(["fig2", "--accesses", "120"]).output().expect("spawn harness");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8 report");
    let per_pc_total: u64 = stdout
        .lines()
        .filter(|l| l.starts_with("0x"))
        .filter_map(|l| l.split_whitespace().nth(1)?.parse::<u64>().ok())
        .sum();
    assert!(per_pc_total > 0, "fig2 table has no per-PC rows:\n{stdout}");
    assert!(per_pc_total <= 120, "override ignored: {per_pc_total} accesses listed\n{stdout}");
}

#[test]
fn scale_independent_experiment_renders() {
    let output = harness().args(["table2"]).output().expect("spawn harness");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8 report");
    assert!(stdout.contains("Prefetchers being selected"));
}

#[test]
fn unknown_experiment_exits_two_with_usage() {
    let output = harness().arg("fig99").output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).expect("utf-8 usage");
    assert!(stderr.contains("usage: alecto-harness"), "no usage on stderr:\n{stderr}");
}

#[test]
fn no_arguments_exits_two_with_usage() {
    let output = harness().output().expect("spawn harness");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).expect("utf-8 usage");
    assert!(stderr.contains("experiments:"));
}
