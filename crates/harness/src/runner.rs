//! Generic experiment runner: sweeps selection algorithms over benchmark
//! sets and collects speedups against the no-prefetching baseline, the way
//! every speedup figure in the paper is constructed.

use alecto_types::{geomean, Workload};
use cpu::{CompositeKind, SelectionAlgorithm, System, SystemConfig, SystemReport};

use crate::report::Table;

/// How large the generated traces are. The defaults keep a full-suite sweep
/// tractable in a release build; the integration tests use smaller values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Memory accesses per single-core workload.
    pub accesses: usize,
    /// Memory accesses per core in multi-core runs.
    pub multicore_accesses: usize,
}

impl Default for RunScale {
    fn default() -> Self {
        Self { accesses: 20_000, multicore_accesses: 6_000 }
    }
}

impl RunScale {
    /// A reduced scale for smoke tests and CI.
    #[must_use]
    pub const fn quick() -> Self {
        Self { accesses: 4_000, multicore_accesses: 1_500 }
    }
}

/// Result of one benchmark under one selection algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Speedup of geomean IPC over the no-prefetching baseline.
    pub speedup: f64,
    /// Full system report for deeper metrics.
    pub report: SystemReport,
}

/// Result of one benchmark across all algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Whether the benchmark is memory intensive.
    pub memory_intensive: bool,
    /// No-prefetching baseline report.
    pub baseline: SystemReport,
    /// Per-algorithm results.
    pub algorithms: Vec<AlgoResult>,
}

/// A grid of speedups: benchmarks × algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupGrid {
    /// Algorithm labels, in run order.
    pub algorithm_labels: Vec<String>,
    /// Per-benchmark results.
    pub benchmarks: Vec<BenchResult>,
}

impl SpeedupGrid {
    /// Speedup of `algorithm` on `benchmark`, if present.
    #[must_use]
    pub fn speedup(&self, benchmark: &str, algorithm: &str) -> Option<f64> {
        self.benchmarks
            .iter()
            .find(|b| b.benchmark == benchmark)?
            .algorithms
            .iter()
            .find(|a| a.algorithm == algorithm)
            .map(|a| a.speedup)
    }

    /// Geomean speedup of `algorithm` over the selected benchmarks
    /// (`memory_intensive_only` restricts to the dotted-box subset).
    #[must_use]
    pub fn geomean_speedup(&self, algorithm: &str, memory_intensive_only: bool) -> Option<f64> {
        let values: Vec<f64> = self
            .benchmarks
            .iter()
            .filter(|b| !memory_intensive_only || b.memory_intensive)
            .filter_map(|b| {
                b.algorithms.iter().find(|a| a.algorithm == algorithm).map(|a| a.speedup)
            })
            .collect();
        geomean(&values)
    }

    /// Renders the grid as a speedup table with per-benchmark rows plus
    /// `Geomean-Mem` and `Geomean-All` summary rows (as in Figs. 8/9).
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(self.algorithm_labels.clone());
        let mut table = Table::new(headers);
        for bench in &self.benchmarks {
            let mut row = vec![format!(
                "{}{}",
                bench.benchmark,
                if bench.memory_intensive { " *" } else { "" }
            )];
            for label in &self.algorithm_labels {
                let s = bench
                    .algorithms
                    .iter()
                    .find(|a| &a.algorithm == label)
                    .map_or(f64::NAN, |a| a.speedup);
                row.push(format!("{s:.3}"));
            }
            table.push_row(row);
        }
        for (label_row, mem_only) in [("Geomean-Mem", true), ("Geomean-All", false)] {
            let mut row = vec![label_row.to_string()];
            for label in &self.algorithm_labels {
                let g = self.geomean_speedup(label, mem_only).unwrap_or(f64::NAN);
                row.push(format!("{g:.3}"));
            }
            table.push_row(row);
        }
        table
    }
}

/// Runs `algorithms` (plus the implicit no-prefetching baseline) on every
/// workload, single-core, and returns the speedup grid.
#[must_use]
pub fn run_single_core_suite(
    workloads: &[Workload],
    algorithms: &[SelectionAlgorithm],
    composite: CompositeKind,
    config: &SystemConfig,
) -> SpeedupGrid {
    let mut benchmarks = Vec::with_capacity(workloads.len());
    for workload in workloads {
        let baseline = run_one(
            config.clone(),
            SelectionAlgorithm::NoPrefetching,
            composite,
            std::slice::from_ref(workload),
        );
        let base_ipc = baseline.geomean_ipc().unwrap_or(1e-9);
        let mut algo_results = Vec::with_capacity(algorithms.len());
        for &algo in algorithms {
            let report = run_one(config.clone(), algo, composite, std::slice::from_ref(workload));
            let ipc = report.geomean_ipc().unwrap_or(0.0);
            algo_results.push(AlgoResult {
                algorithm: algo.label().to_string(),
                speedup: ipc / base_ipc,
                report,
            });
        }
        benchmarks.push(BenchResult {
            benchmark: workload.name.clone(),
            memory_intensive: workload.memory_intensive,
            baseline,
            algorithms: algo_results,
        });
    }
    SpeedupGrid {
        algorithm_labels: algorithms.iter().map(|a| a.label().to_string()).collect(),
        benchmarks,
    }
}

/// Runs `algorithms` (plus the baseline) on a multi-core system where core
/// `i` executes `workloads[i % workloads.len()]`. The grid contains a single
/// "benchmark" entry named `mix_name`.
#[must_use]
pub fn run_multicore_mix(
    mix_name: &str,
    workloads: &[Workload],
    algorithms: &[SelectionAlgorithm],
    composite: CompositeKind,
    config: &SystemConfig,
) -> SpeedupGrid {
    let baseline = run_one(config.clone(), SelectionAlgorithm::NoPrefetching, composite, workloads);
    let base_ipc = baseline.geomean_ipc().unwrap_or(1e-9);
    let mut algo_results = Vec::with_capacity(algorithms.len());
    for &algo in algorithms {
        let report = run_one(config.clone(), algo, composite, workloads);
        let ipc = report.geomean_ipc().unwrap_or(0.0);
        algo_results.push(AlgoResult {
            algorithm: algo.label().to_string(),
            speedup: ipc / base_ipc,
            report,
        });
    }
    SpeedupGrid {
        algorithm_labels: algorithms.iter().map(|a| a.label().to_string()).collect(),
        benchmarks: vec![BenchResult {
            benchmark: mix_name.to_string(),
            memory_intensive: workloads.iter().any(|w| w.memory_intensive),
            baseline,
            algorithms: algo_results,
        }],
    }
}

fn run_one(
    config: SystemConfig,
    algorithm: SelectionAlgorithm,
    composite: CompositeKind,
    workloads: &[Workload],
) -> SystemReport {
    let mut system = System::new(config, algorithm, composite);
    system.run(workloads)
}

/// Merges several grids that share the same algorithm labels (used to combine
/// the SPEC06 and SPEC17 halves of a figure).
///
/// # Panics
///
/// Panics if the grids disagree on algorithm labels.
#[must_use]
pub fn merge_grids(grids: Vec<SpeedupGrid>) -> SpeedupGrid {
    let mut iter = grids.into_iter();
    let mut first = iter.next().expect("at least one grid to merge");
    for grid in iter {
        assert_eq!(grid.algorithm_labels, first.algorithm_labels, "grids must share algorithms");
        first.benchmarks.extend(grid.benchmarks);
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workloads() -> Vec<Workload> {
        vec![traces::spec06::workload("lbm", 1_500), traces::spec06::workload("povray", 1_500)]
    }

    #[test]
    fn grid_contains_all_benchmarks_and_algorithms() {
        let grid = run_single_core_suite(
            &tiny_workloads(),
            &[SelectionAlgorithm::Ipcp, SelectionAlgorithm::Alecto],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
        );
        assert_eq!(grid.benchmarks.len(), 2);
        assert_eq!(grid.algorithm_labels, vec!["IPCP", "Alecto"]);
        assert!(grid.speedup("lbm", "Alecto").unwrap() > 0.5);
        assert!(grid.geomean_speedup("IPCP", false).is_some());
        let table = grid.to_table();
        assert!(table.render().contains("Geomean-All"));
    }

    #[test]
    fn memory_intensive_geomean_filters() {
        let grid = run_single_core_suite(
            &tiny_workloads(),
            &[SelectionAlgorithm::Ipcp],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
        );
        // Only lbm is memory intensive in the tiny set.
        let mem = grid.geomean_speedup("IPCP", true).unwrap();
        let lbm = grid.speedup("lbm", "IPCP").unwrap();
        assert!((mem - lbm).abs() < 1e-12);
    }

    #[test]
    fn multicore_mix_produces_single_entry() {
        let grid = run_multicore_mix(
            "homog-lbm",
            &traces::parsec::per_core_workloads("streamcluster", 600, 2),
            &[SelectionAlgorithm::Ipcp],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(2),
        );
        assert_eq!(grid.benchmarks.len(), 1);
        assert_eq!(grid.benchmarks[0].baseline.cores.len(), 2);
    }

    #[test]
    fn merge_concatenates_benchmarks() {
        let a = run_single_core_suite(
            &[traces::spec06::workload("lbm", 800)],
            &[SelectionAlgorithm::Ipcp],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
        );
        let b = run_single_core_suite(
            &[traces::spec17::workload("lbm_17", 800)],
            &[SelectionAlgorithm::Ipcp],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
        );
        let merged = merge_grids(vec![a, b]);
        assert_eq!(merged.benchmarks.len(), 2);
    }

    #[test]
    fn scale_presets() {
        assert!(RunScale::default().accesses > RunScale::quick().accesses);
    }
}
