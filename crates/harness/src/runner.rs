//! Generic experiment runner: sweeps selection algorithms over benchmark
//! sets and collects speedups against the no-prefetching baseline, the way
//! every speedup figure in the paper is constructed.
//!
//! # The parallel experiment engine
//!
//! Every benchmark × algorithm cell of a sweep — the baseline included — is
//! an *independent* simulation: it builds its own [`System`] from a shared
//! `&SystemConfig` and streams its records from a shared, immutable
//! [`TraceSource`] (each cell replays its own lazy iterator, so traces are
//! never materialised — a 10-million-access sweep holds one record per core
//! in memory). The engine fans the cells out across a [`std::thread::scope`]
//! worker pool (no external dependencies) and re-assembles the reports **in
//! job order**, so the resulting [`SpeedupGrid`] is byte-identical whatever
//! the worker count or the order in which workers finish. Determinism rests
//! on three guarantees, each enforced elsewhere in the workspace:
//!
//! 1. trace generation is seeded purely by benchmark name (and an optional
//!    job index — see [`traces::derive_seed`]), never by global state;
//! 2. the simulator contains no iteration over hash maps whose order could
//!    leak into results (ordered maps with explicit tie-breaks are used in
//!    the MSHR file, the temporal prefetcher and PPF);
//! 3. cells never share mutable state: `cpu` statically asserts that
//!    `System` construction is `Send`-clean.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use alecto_types::{fnv1a_64, geomean, TraceSource, FNV1A_OFFSET};
use cpu::{CompositeKind, DriveOptions, SelectionAlgorithm, System, SystemConfig, SystemReport};

use crate::report::Table;

/// How large the generated traces are, how many worker threads execute the
/// sweep, and which machine description the sweep cells are configured
/// with. The defaults keep a full-suite sweep tractable in a release build;
/// the integration tests use smaller values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunScale {
    /// Memory accesses per single-core workload.
    pub accesses: usize,
    /// Memory accesses per core in multi-core runs.
    pub multicore_accesses: usize,
    /// Worker threads for the experiment engine; `0` means one per available
    /// hardware thread. The value never changes results, only wall-clock.
    pub jobs: usize,
    /// Core timing model every sweep cell is configured with (except cells an
    /// experiment pins explicitly, such as the `timing` figure's dedicated
    /// out-of-order regime). When a [`RunScale::machine`] is set this is
    /// initialised from the machine's `[core] model` and an explicit
    /// `--core-model` flag then overrides it.
    pub core_model: cpu::CoreModelKind,
    /// Machine description the sweep cells lower their [`SystemConfig`]s
    /// from (`--machine` / the sweep server's `"machine"` field). `None`
    /// means the anonymous Table-I defaults — the historical behaviour,
    /// byte-identical to before machines existed.
    pub machine: Option<machine::MachineSpec>,
}

impl Default for RunScale {
    fn default() -> Self {
        Self {
            accesses: 20_000,
            multicore_accesses: 6_000,
            jobs: 0,
            core_model: cpu::CoreModelKind::Approx,
            machine: None,
        }
    }
}

impl RunScale {
    /// A reduced scale for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Self {
        Self { accesses: 4_000, multicore_accesses: 1_500, ..Self::default() }
    }

    /// A scale with explicit access budgets and the default (auto) worker
    /// count — the common constructor for tests and benches.
    #[must_use]
    pub fn with_accesses(accesses: usize, multicore_accesses: usize) -> Self {
        Self { accesses, multicore_accesses, ..Self::default() }
    }

    /// Same scale with an explicit worker count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Same scale with an explicit core timing model.
    #[must_use]
    pub fn with_core_model(mut self, core_model: cpu::CoreModelKind) -> Self {
        self.core_model = core_model;
        self
    }

    /// Same scale running on the given machine description. The machine's
    /// core model becomes the sweep-wide model (a later
    /// [`RunScale::with_core_model`] still overrides it, mirroring how the
    /// CLI layers `--core-model` over `--machine`).
    #[must_use]
    pub fn with_machine(mut self, spec: machine::MachineSpec) -> Self {
        self.core_model = spec.core_model;
        self.machine = Some(spec);
        self
    }

    /// The machine spec experiments lower configs from at a given structural
    /// core count: the selected machine rescaled to `cores` (keeping its
    /// per-core geometry), or the anonymous Table-I machine when no machine
    /// was selected.
    #[must_use]
    pub fn machine_at(&self, cores: usize) -> machine::MachineSpec {
        match &self.machine {
            Some(spec) => spec.clone().with_cores(cores),
            None => machine::MachineSpec::table1(cores),
        }
    }

    /// The [`SystemConfig`] a sweep cell at `cores` cores runs under: the
    /// scale's machine lowered at that core count, with the scale's core
    /// model applied on top. This is the one funnel every figure builder
    /// goes through.
    #[must_use]
    pub fn base_config(&self, cores: usize) -> SystemConfig {
        SystemConfig::from_machine(&self.machine_at(cores)).with_core_model(self.core_model)
    }

    /// Structural core count for multi-core experiments: the machine's own
    /// core count when one is selected, otherwise the experiment's
    /// historical default.
    #[must_use]
    pub fn multicore_cores(&self, default: usize) -> usize {
        self.machine.as_ref().map_or(default, |spec| spec.cores)
    }

    /// The composite prefetcher stack experiment cells run: the machine's
    /// pinned `[prefetch]` stack when the selected machine has one,
    /// otherwise the experiment's own `default`. Figures whose *subject* is
    /// a composite comparison (Figs. 11–14) keep their explicit composites
    /// and do not consult this.
    #[must_use]
    pub fn composite(&self, default: CompositeKind) -> CompositeKind {
        match self.machine.as_ref().and_then(|spec| spec.prefetch) {
            Some(stack) => cpu::composite_from_stack(stack),
            None => default,
        }
    }

    /// Resolves a scale request the way the CLI documents, in order: the
    /// preset (`quick` or default), then `accesses` (which also derives the
    /// per-core multi-core budget as `max(accesses / 3, 100)`, mirroring the
    /// default scale's ratio), then an explicit `multicore_accesses`
    /// override, then the worker count. The sweep server resolves request
    /// bodies through this same function, so an HTTP sweep and a CLI run
    /// with equivalent parameters simulate the identical scale — a
    /// precondition for their reports being byte-identical.
    #[must_use]
    pub fn resolve(
        quick: bool,
        accesses: Option<usize>,
        multicore_accesses: Option<usize>,
        jobs: Option<usize>,
    ) -> Self {
        let mut scale = if quick { Self::quick() } else { Self::default() };
        if let Some(n) = accesses {
            scale.accesses = n;
            scale.multicore_accesses = (n / 3).max(100);
        }
        if let Some(n) = multicore_accesses {
            scale.multicore_accesses = n;
        }
        if let Some(n) = jobs {
            scale.jobs = n;
        }
        scale
    }
}

/// Resolves a requested worker count: `0` means one worker per available
/// hardware thread (falling back to 1 if that cannot be determined).
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Worker threads actually spawned for `job_count` jobs under a requested
/// `--jobs` value: the resolved count clamped to the number of jobs, so
/// `--jobs 64` on a 6-cell grid spawns 6 workers, not 64 mostly-idle
/// threads (and never fewer than one).
#[must_use]
pub fn worker_count(requested: usize, job_count: usize) -> usize {
    effective_jobs(requested).min(job_count).max(1)
}

/// One independent simulation cell: one algorithm (or the baseline) over one
/// trace-source assignment under one system configuration. Sources are lazy:
/// the cell regenerates its records on its worker thread, so a sweep's
/// memory footprint is O(cells in flight), never O(trace length).
///
/// This is the unit of work the sweep server's cell cache memoizes:
/// [`CellJob::cache_key`] digests everything that determines the cell's
/// [`SystemReport`], so equal keys mean byte-identical results (the
/// determinism contract — see `docs/ARCHITECTURE.md`).
#[derive(Debug, Clone, Copy)]
pub struct CellJob<'a> {
    /// Selection algorithm of this cell ([`SelectionAlgorithm::NoPrefetching`]
    /// for the implicit baseline cell).
    pub algorithm: SelectionAlgorithm,
    /// Composite prefetcher configuration simulated under the algorithm.
    pub composite: CompositeKind,
    /// Shared system configuration (caches, timing, selector epochs).
    pub config: &'a SystemConfig,
    /// Trace assignment: core `i` replays `sources[i % sources.len()]`.
    pub sources: &'a [TraceSource],
}

impl CellJob<'_> {
    /// The cell's content-addressed cache key: a canonical FNV-1a64 digest of
    /// the algorithm, the composite, the full [`SystemConfig`] (its `Debug`
    /// rendering covers every field, [`memsys::TimingParams`] included) and each
    /// trace source's [`TraceSource::fingerprint`] (which folds in names,
    /// access budgets, generation seeds and `.altr` body checksums). Every
    /// input that can change the cell's report feeds the key, so two cells
    /// with equal keys produce byte-identical [`SystemReport`]s — the
    /// invariant `harness::cellcache` memoization rests on.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        let mut key = fnv1a_64(FNV1A_OFFSET, b"cell-v1|");
        key = fnv1a_64(key, self.algorithm.label().as_bytes());
        key = fnv1a_64(key, b"|");
        key = fnv1a_64(key, format!("{:?}", self.composite).as_bytes());
        key = fnv1a_64(key, b"|");
        key = fnv1a_64(key, format!("{:?}", self.config).as_bytes());
        key = fnv1a_64(key, &(self.sources.len() as u64).to_le_bytes());
        for source in self.sources {
            key = fnv1a_64(key, &source.fingerprint().to_le_bytes());
        }
        key
    }
}

/// Simulates one cell from scratch (no memoization): builds a fresh
/// [`System`] and streams the cell's sources through it. This is the ground
/// truth every [`CellExecutor`] must agree with on a cache miss.
#[must_use]
pub fn run_cell(cell: &CellJob<'_>) -> SystemReport {
    let mut system = System::new(cell.config.clone(), cell.algorithm, cell.composite);
    system
        .run_sources_with(cell.sources, current_drive_options())
        .expect("cells are validated to carry at least one source")
}

thread_local! {
    /// The [`DriveOptions`] cells on the *calling* thread run with, scoped in
    /// via [`with_drive_options`]. Defaults to [`DriveOptions::new`]. Like
    /// [`CELL_EXECUTOR`], the engine captures this before spawning workers so
    /// a whole sweep inherits the caller's options.
    static CELL_DRIVE: Cell<DriveOptions> = const { Cell::new(DriveOptions::new()) };
}

/// The drive options [`run_cell`] on this thread currently uses. These knobs
/// change wall-clock only — reports stay byte-identical — so they are *not*
/// part of [`CellJob::cache_key`].
#[must_use]
pub fn current_drive_options() -> DriveOptions {
    CELL_DRIVE.with(Cell::get)
}

/// Runs `f` with `options` installed as the current thread's cell drive
/// options: every cell the closure runs (however deep in the figure
/// builders) drives its `System` with them. The previous options are
/// restored on exit, even on panic.
pub fn with_drive_options<R>(options: DriveOptions, f: impl FnOnce() -> R) -> R {
    struct Restore(DriveOptions);
    impl Drop for Restore {
        fn drop(&mut self) {
            CELL_DRIVE.with(|slot| slot.set(self.0));
        }
    }
    let _restore = Restore(CELL_DRIVE.with(|slot| slot.replace(options)));
    f()
}

/// A pluggable cell-execution strategy, consulted for every cell the
/// experiment engine runs. Implementations must return exactly what
/// [`run_cell`] would (e.g. by memoizing it keyed on [`CellJob::cache_key`]);
/// the engine cannot tell a cached report from a fresh one — by design.
///
/// Executors are called concurrently from worker threads, hence the
/// `Send + Sync` bound.
pub trait CellExecutor: Send + Sync {
    /// Produces the report for `cell` — by simulation, from a cache, or both.
    fn execute(&self, cell: &CellJob<'_>) -> SystemReport;
}

thread_local! {
    /// The executor the *calling* thread has scoped in via
    /// [`with_cell_executor`]; `None` means plain [`run_cell`].
    static CELL_EXECUTOR: RefCell<Option<Arc<dyn CellExecutor>>> = const { RefCell::new(None) };
}

/// Runs `f` with `executor` installed as the current thread's cell executor:
/// every suite the closure runs (however deep in the figure builders) routes
/// its cells through `executor` instead of bare [`run_cell`]. The previous
/// executor is restored on exit, even on panic, and the installation is
/// thread-local, so parallel tests (and parallel server requests, each on
/// its own worker thread) cannot observe each other's executors.
pub fn with_cell_executor<R>(executor: Arc<dyn CellExecutor>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<dyn CellExecutor>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CELL_EXECUTOR.with(|slot| *slot.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CELL_EXECUTOR.with(|slot| slot.borrow_mut().replace(executor)));
    f()
}

/// Executes `jobs` across up to `requested_workers` scoped worker threads
/// (resolved via [`effective_jobs`]) and returns the reports **in job
/// order**, regardless of which worker ran which job or in what order they
/// finished. Workers pull jobs from a shared atomic counter, so long cells
/// do not leave threads idle behind a static partition.
///
/// The calling thread's [`with_cell_executor`] scope (if any) is captured
/// here — before the workers spawn — and shared with all of them, so a
/// memoizing executor applies to every cell of the sweep regardless of which
/// thread runs it.
///
/// # Panics
///
/// Panics if a worker thread panics (the cell's own panic is propagated).
fn execute_jobs(jobs: &[CellJob<'_>], requested_workers: usize) -> Vec<SystemReport> {
    let executor = CELL_EXECUTOR.with(|slot| slot.borrow().clone());
    let workers = worker_count(requested_workers, jobs.len());
    // Threads the `--jobs` budget grants beyond one-per-cell are lent to the
    // cells themselves as record producers: a 2-cell grid under `--jobs 8`
    // runs 2 cell workers whose simulations each decode/generate on up to 3
    // background producers, so the whole budget does work. Producers change
    // wall-clock only, never results.
    let spare = effective_jobs(requested_workers).saturating_sub(workers);
    let mut drive = current_drive_options();
    drive.producer_threads = drive.producer_threads.max(spare / workers);
    let run = |job: &CellJob<'_>| {
        with_drive_options(drive, || match &executor {
            Some(executor) => executor.execute(job),
            None => run_cell(job),
        })
    };
    if workers == 1 {
        return jobs.iter().map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<SystemReport>> = (0..jobs.len()).map(|_| None).collect();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut completed = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(idx) else { break };
                        completed.push((idx, run(job)));
                    }
                    completed
                })
            })
            .collect();
        for handle in handles {
            for (idx, report) in handle.join().expect("experiment worker panicked") {
                results[idx] = Some(report);
            }
        }
    });
    results.into_iter().map(|r| r.expect("every job executed exactly once")).collect()
}

/// Result of one benchmark under one selection algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Speedup of geomean IPC over the no-prefetching baseline.
    pub speedup: f64,
    /// Full system report for deeper metrics.
    pub report: SystemReport,
}

/// Result of one benchmark across all algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Whether the benchmark is memory intensive.
    pub memory_intensive: bool,
    /// No-prefetching baseline report.
    pub baseline: SystemReport,
    /// Per-algorithm results.
    pub algorithms: Vec<AlgoResult>,
}

/// A grid of speedups: benchmarks × algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupGrid {
    /// Algorithm labels, in run order.
    pub algorithm_labels: Vec<String>,
    /// Per-benchmark results.
    pub benchmarks: Vec<BenchResult>,
}

impl SpeedupGrid {
    /// Speedup of `algorithm` on `benchmark`, if present.
    #[must_use]
    pub fn speedup(&self, benchmark: &str, algorithm: &str) -> Option<f64> {
        self.benchmarks
            .iter()
            .find(|b| b.benchmark == benchmark)?
            .algorithms
            .iter()
            .find(|a| a.algorithm == algorithm)
            .map(|a| a.speedup)
    }

    /// Geomean speedup of `algorithm` over the selected benchmarks
    /// (`memory_intensive_only` restricts to the dotted-box subset).
    #[must_use]
    pub fn geomean_speedup(&self, algorithm: &str, memory_intensive_only: bool) -> Option<f64> {
        let values: Vec<f64> = self
            .benchmarks
            .iter()
            .filter(|b| !memory_intensive_only || b.memory_intensive)
            .filter_map(|b| {
                b.algorithms.iter().find(|a| a.algorithm == algorithm).map(|a| a.speedup)
            })
            .collect();
        geomean(&values)
    }

    /// Renders the grid as a speedup table with per-benchmark rows plus
    /// `Geomean-Mem` and `Geomean-All` summary rows (as in Figs. 8/9).
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(self.algorithm_labels.clone());
        let mut table = Table::new(headers);
        for bench in &self.benchmarks {
            let mut row = vec![format!(
                "{}{}",
                bench.benchmark,
                if bench.memory_intensive { " *" } else { "" }
            )];
            for label in &self.algorithm_labels {
                let s = bench
                    .algorithms
                    .iter()
                    .find(|a| &a.algorithm == label)
                    .map_or(f64::NAN, |a| a.speedup);
                row.push(format!("{s:.3}"));
            }
            table.push_row(row);
        }
        for (label_row, mem_only) in [("Geomean-Mem", true), ("Geomean-All", false)] {
            let mut row = vec![label_row.to_string()];
            for label in &self.algorithm_labels {
                let g = self.geomean_speedup(label, mem_only).unwrap_or(f64::NAN);
                row.push(format!("{g:.3}"));
            }
            table.push_row(row);
        }
        table
    }
}

/// Assembles a [`BenchResult`] from a baseline report followed by one report
/// per algorithm, in `algorithms` order.
fn assemble_bench(
    benchmark: &str,
    memory_intensive: bool,
    algorithms: &[SelectionAlgorithm],
    reports: &mut impl Iterator<Item = SystemReport>,
) -> BenchResult {
    let baseline = reports.next().expect("baseline report for every benchmark");
    let base_ipc = baseline.geomean_ipc().unwrap_or(1e-9);
    let algo_results = algorithms
        .iter()
        .map(|algo| {
            let report = reports.next().expect("one report per algorithm");
            let ipc = report.geomean_ipc().unwrap_or(0.0);
            AlgoResult { algorithm: algo.label().to_string(), speedup: ipc / base_ipc, report }
        })
        .collect();
    BenchResult {
        benchmark: benchmark.to_string(),
        memory_intensive,
        baseline,
        algorithms: algo_results,
    }
}

/// Runs `algorithms` (plus the implicit no-prefetching baseline) on every
/// trace source, single-core, across `jobs` worker threads (`0` = auto), and
/// returns the speedup grid. The grid is identical for every `jobs` value.
/// Sources stream: however large the access budget, no cell ever
/// materialises its trace.
#[must_use]
pub fn run_single_core_suite(
    sources: &[TraceSource],
    algorithms: &[SelectionAlgorithm],
    composite: CompositeKind,
    config: &SystemConfig,
    jobs: usize,
) -> SpeedupGrid {
    let cells: Vec<CellJob<'_>> = sources
        .iter()
        .flat_map(|source| {
            std::iter::once(SelectionAlgorithm::NoPrefetching)
                .chain(algorithms.iter().copied())
                .map(move |algorithm| CellJob {
                    algorithm,
                    composite,
                    config,
                    sources: std::slice::from_ref(source),
                })
        })
        .collect();
    let mut reports = execute_jobs(&cells, jobs).into_iter();
    let benchmarks = sources
        .iter()
        .map(|s| assemble_bench(s.name(), s.memory_intensive(), algorithms, &mut reports))
        .collect();
    SpeedupGrid {
        algorithm_labels: algorithms.iter().map(|a| a.label().to_string()).collect(),
        benchmarks,
    }
}

/// Runs `algorithms` (plus the baseline) on a multi-core system where core
/// `i` streams `sources[i % sources.len()]`, one full-system simulation per
/// algorithm across `jobs` worker threads. The grid contains a single
/// "benchmark" entry named `mix_name`.
#[must_use]
pub fn run_multicore_mix(
    mix_name: &str,
    sources: &[TraceSource],
    algorithms: &[SelectionAlgorithm],
    composite: CompositeKind,
    config: &SystemConfig,
    jobs: usize,
) -> SpeedupGrid {
    let cells: Vec<CellJob<'_>> = std::iter::once(SelectionAlgorithm::NoPrefetching)
        .chain(algorithms.iter().copied())
        .map(|algorithm| CellJob { algorithm, composite, config, sources })
        .collect();
    let mut reports = execute_jobs(&cells, jobs).into_iter();
    let memory_intensive = sources.iter().any(TraceSource::memory_intensive);
    let bench = assemble_bench(mix_name, memory_intensive, algorithms, &mut reports);
    SpeedupGrid {
        algorithm_labels: algorithms.iter().map(|a| a.label().to_string()).collect(),
        benchmarks: vec![bench],
    }
}

/// Merges several grids that share the same algorithm labels (used to combine
/// the SPEC06 and SPEC17 halves of a figure).
///
/// # Panics
///
/// Panics if the grids disagree on algorithm labels.
#[must_use]
pub fn merge_grids(grids: Vec<SpeedupGrid>) -> SpeedupGrid {
    let mut iter = grids.into_iter();
    let mut first = iter.next().expect("at least one grid to merge");
    for grid in iter {
        assert_eq!(grid.algorithm_labels, first.algorithm_labels, "grids must share algorithms");
        first.benchmarks.extend(grid.benchmarks);
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workloads() -> Vec<TraceSource> {
        vec![traces::spec06::source("lbm", 1_500), traces::spec06::source("povray", 1_500)]
    }

    #[test]
    fn grid_contains_all_benchmarks_and_algorithms() {
        let grid = run_single_core_suite(
            &tiny_workloads(),
            &[SelectionAlgorithm::Ipcp, SelectionAlgorithm::Alecto],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
            1,
        );
        assert_eq!(grid.benchmarks.len(), 2);
        assert_eq!(grid.algorithm_labels, vec!["IPCP", "Alecto"]);
        assert!(grid.speedup("lbm", "Alecto").unwrap() > 0.5);
        assert!(grid.geomean_speedup("IPCP", false).is_some());
        let table = grid.to_table();
        assert!(table.render().contains("Geomean-All"));
    }

    #[test]
    fn serial_and_parallel_grids_are_identical() {
        let workloads = tiny_workloads();
        let algorithms = [SelectionAlgorithm::Ipcp, SelectionAlgorithm::Alecto];
        let config = SystemConfig::skylake_like(1);
        let serial =
            run_single_core_suite(&workloads, &algorithms, CompositeKind::GsCsPmp, &config, 1);
        let parallel =
            run_single_core_suite(&workloads, &algorithms, CompositeKind::GsCsPmp, &config, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_count_exceeding_job_count_is_harmless() {
        let grid = run_single_core_suite(
            &[traces::spec06::source("lbm", 400)],
            &[SelectionAlgorithm::Ipcp],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
            64,
        );
        assert_eq!(grid.benchmarks.len(), 1);
        assert_eq!(grid.benchmarks[0].algorithms.len(), 1);
    }

    #[test]
    fn effective_jobs_resolves_auto() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn worker_count_is_clamped_to_the_job_count() {
        // --jobs 64 on a 6-cell grid spawns 6 workers, not 64 idle threads.
        assert_eq!(worker_count(64, 6), 6);
        assert_eq!(worker_count(4, 6), 4);
        // Degenerate grids still get one worker.
        assert_eq!(worker_count(8, 0), 1);
        // Auto resolution is clamped the same way.
        assert!(worker_count(0, 2) <= 2);
        assert!(worker_count(0, 1_000_000) >= 1);
    }

    #[test]
    fn memory_intensive_geomean_filters() {
        let grid = run_single_core_suite(
            &tiny_workloads(),
            &[SelectionAlgorithm::Ipcp],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
            2,
        );
        // Only lbm is memory intensive in the tiny set.
        let mem = grid.geomean_speedup("IPCP", true).unwrap();
        let lbm = grid.speedup("lbm", "IPCP").unwrap();
        assert!((mem - lbm).abs() < 1e-12);
    }

    #[test]
    fn multicore_mix_produces_single_entry() {
        let grid = run_multicore_mix(
            "homog-lbm",
            &traces::parsec::per_core_sources("streamcluster", 600, 2),
            &[SelectionAlgorithm::Ipcp],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(2),
            2,
        );
        assert_eq!(grid.benchmarks.len(), 1);
        assert_eq!(grid.benchmarks[0].baseline.cores.len(), 2);
    }

    #[test]
    fn multicore_mix_is_deterministic_across_worker_counts() {
        let workloads = traces::parsec::per_core_sources("canneal", 400, 2);
        let algorithms = [SelectionAlgorithm::Ipcp, SelectionAlgorithm::Alecto];
        let config = SystemConfig::skylake_like(2);
        let serial =
            run_multicore_mix("mix", &workloads, &algorithms, CompositeKind::GsCsPmp, &config, 1);
        let parallel =
            run_multicore_mix("mix", &workloads, &algorithms, CompositeKind::GsCsPmp, &config, 3);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn merge_concatenates_benchmarks() {
        let a = run_single_core_suite(
            &[traces::spec06::source("lbm", 800)],
            &[SelectionAlgorithm::Ipcp],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
            1,
        );
        let b = run_single_core_suite(
            &[traces::spec17::source("lbm_17", 800)],
            &[SelectionAlgorithm::Ipcp],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
            2,
        );
        let merged = merge_grids(vec![a, b]);
        assert_eq!(merged.benchmarks.len(), 2);
    }

    #[test]
    fn scale_presets() {
        assert!(RunScale::default().accesses > RunScale::quick().accesses);
        assert_eq!(RunScale::with_accesses(100, 50).with_jobs(2).jobs, 2);
    }

    #[test]
    fn cache_key_covers_every_cell_input() {
        let sources = tiny_workloads();
        let config = SystemConfig::skylake_like(1);
        let base = CellJob {
            algorithm: SelectionAlgorithm::Alecto,
            composite: CompositeKind::GsCsPmp,
            config: &config,
            sources: &sources[..1],
        };
        assert_eq!(base.cache_key(), base.cache_key(), "key must be deterministic");
        assert_ne!(
            base.cache_key(),
            CellJob { algorithm: SelectionAlgorithm::Ipcp, ..base }.cache_key(),
            "algorithm"
        );
        assert_ne!(
            base.cache_key(),
            CellJob { composite: CompositeKind::PmpOnly, ..base }.cache_key(),
            "composite"
        );
        let other_config = SystemConfig::skylake_like(2);
        assert_ne!(
            base.cache_key(),
            CellJob { config: &other_config, ..base }.cache_key(),
            "system configuration"
        );
        let ooo_config =
            SystemConfig::skylake_like(1).with_core_model(cpu::CoreModelKind::OutOfOrder);
        assert_ne!(
            base.cache_key(),
            CellJob { config: &ooo_config, ..base }.cache_key(),
            "core timing model"
        );
        assert_ne!(
            base.cache_key(),
            CellJob { sources: &sources[1..], ..base }.cache_key(),
            "trace source"
        );
        assert_ne!(
            base.cache_key(),
            CellJob { sources: &sources, ..base }.cache_key(),
            "source count"
        );
        let resized = [traces::spec06::source("lbm", 1_600)];
        assert_ne!(
            base.cache_key(),
            CellJob { sources: &resized, ..base }.cache_key(),
            "access budget (same benchmark name)"
        );
    }

    #[test]
    fn scoped_executor_intercepts_every_cell_and_restores() {
        use std::sync::atomic::AtomicUsize;

        struct Counting(AtomicUsize);
        impl CellExecutor for Counting {
            fn execute(&self, cell: &CellJob<'_>) -> SystemReport {
                self.0.fetch_add(1, Ordering::Relaxed);
                run_cell(cell)
            }
        }

        let workloads = tiny_workloads();
        let algorithms = [SelectionAlgorithm::Ipcp];
        let config = SystemConfig::skylake_like(1);
        let plain =
            run_single_core_suite(&workloads, &algorithms, CompositeKind::GsCsPmp, &config, 1);
        let counter = Arc::new(Counting(AtomicUsize::new(0)));
        let via_executor =
            with_cell_executor(Arc::clone(&counter) as Arc<dyn CellExecutor>, || {
                // Parallel workers must all observe the caller's executor.
                run_single_core_suite(&workloads, &algorithms, CompositeKind::GsCsPmp, &config, 4)
            });
        // 2 benchmarks × (baseline + 1 algorithm) = 4 cells, all intercepted.
        assert_eq!(counter.0.load(Ordering::Relaxed), 4);
        assert_eq!(plain, via_executor, "a delegating executor must not change results");
        // The scope has ended: subsequent suites run uninstrumented.
        let _ = run_single_core_suite(&workloads, &algorithms, CompositeKind::GsCsPmp, &config, 1);
        assert_eq!(counter.0.load(Ordering::Relaxed), 4);
    }
}
