//! `alecto-harness` — regenerate the paper's tables and figures.
//!
//! ```text
//! alecto-harness <experiment> [--accesses N] [--quick]
//!
//! experiments: table1 table2 table3 fig1 fig2 fig8 fig9 fig10 fig11 fig12
//!              fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 bandit-ext
//!              all quick
//! ```

use harness::figures;
use harness::RunScale;

fn usage() -> ! {
    eprintln!(
        "usage: alecto-harness <experiment> [--accesses N] [--quick]\n\
         experiments: table1 table2 table3 fig1 fig2 fig8 fig9 fig10 fig11 fig12\n\
                      fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 bandit-ext all quick"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = RunScale::default();
    let mut accesses_override = None;
    let mut experiment = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = RunScale::quick(),
            "--accesses" => {
                i += 1;
                let n = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                accesses_override = Some(n);
            }
            name if experiment.is_none() => experiment = Some(name.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let experiment = experiment.unwrap_or_else(|| usage());
    if experiment == "quick" {
        scale = RunScale::quick();
    }
    if let Some(n) = accesses_override {
        scale.accesses = n;
        scale.multicore_accesses = (n / 3).max(100);
    }

    let experiments = match experiment.as_str() {
        "table1" => vec![figures::table1()],
        "table2" => vec![figures::table2()],
        "table3" => vec![figures::table3()],
        "fig1" => vec![figures::fig1(&scale)],
        "fig2" => vec![figures::fig2(&scale)],
        "fig8" => vec![figures::fig8(&scale)],
        "fig9" => vec![figures::fig9(&scale)],
        "fig10" => vec![figures::fig10(&scale)],
        "fig11" => vec![figures::fig11(&scale)],
        "fig12" => vec![figures::fig12(&scale)],
        "fig13" => vec![figures::fig13(&scale)],
        "fig14" => vec![figures::fig14(&scale)],
        "fig15" => vec![figures::fig15(&scale)],
        "fig16" => vec![figures::fig16(&scale)],
        "fig17" => vec![figures::fig17(&scale)],
        "fig18" => vec![figures::fig18(&scale)],
        "fig19" => vec![figures::fig19(&scale)],
        "fig20" => vec![figures::fig20(&scale)],
        "bandit-ext" | "vi_h" => vec![figures::bandit_extended(&scale)],
        "all" | "quick" => figures::all(&scale),
        _ => usage(),
    };
    for e in experiments {
        println!("{}", e.render());
    }
}
