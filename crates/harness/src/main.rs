//! `alecto-harness` — regenerate the paper's tables and figures, and gate
//! performance regressions between report files.
//!
//! ```text
//! alecto-harness <experiment> [--accesses N] [--multicore-accesses N]
//!                [--quick] [--jobs N] [--json PATH]
//! alecto-harness compare <baseline.json> <candidate.json> [--tolerance PCT]
//!
//! experiments: table1 table2 table3 fig1 fig2 fig8 fig9 fig10 fig11 fig12
//!              fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 bandit-ext
//!              stress timing all quick
//! ```
//!
//! `compare` exits 0 when every cell shared by the two reports keeps its
//! speedup and IPC within the tolerance (default 5%) below the baseline, 1
//! with a per-cell diff table when any cell regressed, and 2 on usage or
//! parse errors. CI runs it against the committed `BENCH_*.json` baselines.
//!
//! Flag interaction is explicit and position-independent:
//!
//! 1. the scale starts at the default (or quick, for `--quick`/`quick`);
//! 2. `--accesses N` then sets the single-core budget to `N` **and derives
//!    the per-core multi-core budget as `max(N / 3, 100)`**, mirroring the
//!    default scale's ratio;
//! 3. `--multicore-accesses N` overrides that derived multi-core budget.
//!
//! `--jobs N` picks the worker-thread count of the parallel experiment
//! engine (default: one per available hardware thread). It changes
//! wall-clock only — results are byte-identical for every worker count.
//! `--json PATH` additionally writes the machine-readable
//! `alecto-bench-v2` report to `PATH`.

use harness::figures;
use harness::report::experiments_to_json;
use harness::RunScale;

fn usage() -> ! {
    eprintln!(
        "usage: alecto-harness <experiment> [--accesses N] [--multicore-accesses N] [--quick]\n\
         \x20                  [--jobs N] [--json PATH]\n\
         \x20      alecto-harness compare <baseline.json> <candidate.json> [--tolerance PCT]\n\
         experiments: table1 table2 table3 fig1 fig2 fig8 fig9 fig10 fig11 fig12\n\
         \x20            fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 bandit-ext\n\
         \x20            stress timing all quick\n\
         flags:\n\
         \x20 --accesses N            single-core accesses; the multi-core per-core budget\n\
         \x20                         is derived as max(N / 3, 100) unless overridden\n\
         \x20 --multicore-accesses N  per-core accesses for multi-core runs\n\
         \x20 --quick                 use the reduced CI scale (same as the `quick` experiment)\n\
         \x20 --jobs N                worker threads (N >= 1; default: available parallelism);\n\
         \x20                         never changes results, only wall-clock\n\
         \x20 --json PATH             also write the alecto-bench-v2 JSON report to PATH\n\
         \x20                         (the path must be creatable — checked up front)\n\
         \x20 --tolerance PCT         compare: allowed speedup/IPC drop below the baseline\n\
         \x20                         in percent (default 5); exits 0 in-tolerance, 1 on\n\
         \x20                         regression with a per-cell diff, 2 on usage/parse errors"
    );
    std::process::exit(2);
}

/// The `compare` subcommand: gate `candidate` against `baseline`.
/// Exit codes: 0 pass, 1 regression, 2 usage/parse error.
fn run_compare(args: &[String]) -> ! {
    let mut tolerance = harness::DEFAULT_TOLERANCE_PCT;
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let Some(value) = args.get(i) else { usage() };
                match value.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => tolerance = t,
                    _ => {
                        eprintln!("error: --tolerance {value}: not a non-negative percentage");
                        usage();
                    }
                }
            }
            flag if flag.starts_with('-') => usage(),
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths[..] else { usage() };
    let read = |path: &String| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|err| {
            eprintln!("error: cannot read {path}: {err}");
            usage();
        })
    };
    let baseline = read(baseline_path);
    let candidate = read(candidate_path);
    match harness::compare_reports(&baseline, &candidate, tolerance) {
        Err(err) => {
            eprintln!("error: {err}");
            usage();
        }
        Ok(comparison) => {
            println!(
                "compared {} shared cell(s) ({} baseline-only, {} candidate-only) \
                 at {tolerance}% tolerance",
                comparison.shared_cells, comparison.baseline_only, comparison.candidate_only
            );
            // A comparison that gates nothing must not read as a pass: a
            // renamed experiment or benchmark set would otherwise silently
            // disarm the CI perf gate.
            if comparison.shared_cells == 0 {
                eprintln!(
                    "error: the reports share no cells — wrong file pair, or the baseline \
                     needs refreshing"
                );
                std::process::exit(2);
            }
            if comparison.passed() {
                println!("PASS: no cell regressed beyond tolerance");
                std::process::exit(0);
            }
            println!("FAIL: {} metric(s) regressed beyond tolerance", comparison.regressions.len());
            println!("{}", comparison.diff_table().render());
            std::process::exit(1);
        }
    }
}

fn parse_flag_value<T: std::str::FromStr>(args: &[String], i: &mut usize) -> T {
    *i += 1;
    args.get(*i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "compare" {
        run_compare(&args[1..]);
    }
    let mut quick = false;
    let mut accesses_override: Option<usize> = None;
    let mut multicore_override: Option<usize> = None;
    let mut jobs: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut experiment = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--accesses" => accesses_override = Some(parse_flag_value(&args, &mut i)),
            "--multicore-accesses" => multicore_override = Some(parse_flag_value(&args, &mut i)),
            "--jobs" => {
                let n: usize = parse_flag_value(&args, &mut i);
                if n == 0 {
                    usage();
                }
                jobs = Some(n);
            }
            "--json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| usage());
                // A leading dash is a forgotten path, not a file name:
                // swallowing the next flag here would silently change the
                // run (e.g. `--json --quick` dropping quick mode).
                if path.starts_with('-') {
                    usage();
                }
                json_path = Some(path);
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    let experiment = experiment.unwrap_or_else(|| usage());

    // Scale resolution, in documented order: preset, then --accesses (which
    // derives the multi-core budget), then --multicore-accesses.
    let mut scale =
        if quick || experiment == "quick" { RunScale::quick() } else { RunScale::default() };
    if let Some(n) = accesses_override {
        scale.accesses = n;
        scale.multicore_accesses = (n / 3).max(100);
    }
    if let Some(n) = multicore_override {
        scale.multicore_accesses = n;
    }
    if let Some(n) = jobs {
        scale.jobs = n;
    }

    // Fail fast on an unwritable report path: a full-scale run takes
    // minutes, and discovering the bad path only at the final write would
    // throw the whole run away. A bad path is a flag error like any other
    // (missing parent directory, permission, ...), so it exits 2 with the
    // usage text rather than surfacing a raw io error.
    if let Some(path) = &json_path {
        if let Err(err) = std::fs::OpenOptions::new().create(true).append(true).open(path).map(drop)
        {
            eprintln!("error: --json {path}: {err}");
            usage();
        }
    }

    let experiments = match experiment.as_str() {
        "table1" => vec![figures::table1()],
        "table2" => vec![figures::table2()],
        "table3" => vec![figures::table3()],
        "fig1" => vec![figures::fig1(&scale)],
        "fig2" => vec![figures::fig2(&scale)],
        "fig8" => vec![figures::fig8(&scale)],
        "fig9" => vec![figures::fig9(&scale)],
        "fig10" => vec![figures::fig10(&scale)],
        "fig11" => vec![figures::fig11(&scale)],
        "fig12" => vec![figures::fig12(&scale)],
        "fig13" => vec![figures::fig13(&scale)],
        "fig14" => vec![figures::fig14(&scale)],
        "fig15" => vec![figures::fig15(&scale)],
        "fig16" => vec![figures::fig16(&scale)],
        "fig17" => vec![figures::fig17(&scale)],
        "fig18" => vec![figures::fig18(&scale)],
        "fig19" => vec![figures::fig19(&scale)],
        "fig20" => vec![figures::fig20(&scale)],
        "bandit-ext" | "vi_h" => vec![figures::bandit_extended(&scale)],
        "stress" => vec![figures::stress(&scale)],
        "timing" => vec![figures::timing(&scale)],
        "all" | "quick" => figures::all(&scale),
        _ => usage(),
    };
    for e in &experiments {
        println!("{}", e.render());
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, experiments_to_json(&experiments)) {
            eprintln!("error: cannot write JSON report to {path}: {err}");
            std::process::exit(1);
        }
    }
}
