//! `alecto-harness` — regenerate the paper's tables and figures, gate
//! performance regressions between report files, and record/replay binary
//! `.altr` traces.
//!
//! ```text
//! alecto-harness <experiment> [--accesses N] [--multicore-accesses N]
//!                [--quick] [--jobs N] [--batch N] [--machine NAME|FILE]
//!                [--core-model approx|ooo] [--json PATH]
//! alecto-harness compare <baseline.json> <candidate.json> [--tolerance PCT]
//! alecto-harness list
//! alecto-harness machines [list]
//! alecto-harness machines show <name|file>
//! alecto-harness machines check <name|file>...
//! alecto-harness serve [--addr HOST:PORT] [--sweep-workers N] [--jobs N]
//!                      [--cache-capacity N] [--cache-dir PATH]
//! alecto-harness trace record <benchmark> [--accesses N] --out PATH
//! alecto-harness trace info <file.altr> [--verify]
//! alecto-harness trace replay <benchmark|file:PATH> [--accesses N] [--jobs N] [--batch N]
//!                             [--machine NAME|FILE] [--core-model approx|ooo] [--json PATH]
//! alecto-harness trace import <records.txt> --out PATH [--name NAME] [--memory-intensive]
//! alecto-harness trace import --dir DIR [--out DIR] [--jobs N] [--memory-intensive]
//! alecto-harness fuzz run [--seed N] [--budget N] [--accesses N] [--jobs N]
//!                         [--machine NAME|FILE] [--oracle KINDS] [--threshold PCT]
//!                         [--out DIR] [--no-shrink]
//! alecto-harness fuzz repro <manifest>
//! alecto-harness fuzz corpus <dir>
//!
//! experiments: table1 table2 table3 fig1 fig2 fig8 fig9 fig10 fig11 fig12
//!              fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 bandit-ext
//!              stress timing all quick
//! ```
//!
//! `compare` exits 0 when every cell shared by the two reports keeps its
//! speedup and IPC within the tolerance (default 5%) below the baseline, 1
//! with a per-cell diff table when any cell regressed, and 2 on usage or
//! parse errors. CI runs it against the committed `BENCH_*.json` baselines.
//!
//! `list` prints every registered benchmark (grouped by suite) and every
//! experiment id, then exits 0.
//!
//! `machines` manages declarative machine descriptions (the
//! `alecto-machine-v1` format, see the `machine` crate and the README's
//! "Machines" section): bare `machines` (or `machines list`) tabulates the
//! built-in registry, `machines show` prints a spec's canonical text and
//! fingerprint, and `machines check` validates files (or names), exiting 2
//! on the first invalid one — CI runs it over every committed spec. Every
//! experiment and `trace replay` accept `--machine <name|file>`; the
//! machine's core model applies sweep-wide unless `--core-model` overrides
//! it, and an unknown or invalid machine exits 2 with usage before any
//! simulation runs.
//!
//! The `trace` subcommands persist and replay access streams:
//!
//! * `record` writes a registered benchmark's stream to a versioned binary
//!   `.altr` file (see the `traceio` crate for the format);
//! * `info` prints the trace header plus per-field statistics, verifying
//!   the body checksum; `--verify` additionally re-walks the block framing
//!   and per-record encoding, exiting 2 with a block-numbered error on the
//!   first structural defect or checksum mismatch;
//! * `replay` drives the full hierarchy × selector grid of the paper's main
//!   comparison from a trace — a `file:PATH` spec replays a recorded file,
//!   a benchmark name runs the same grid from the generator, and the two
//!   emit byte-identical `alecto-bench-v2` cells (CI's `trace-roundtrip`
//!   job pins this);
//! * `import` converts a ChampSim-style text/CSV dump into `.altr`;
//!   `--dir DIR` bulk-imports every `.txt`/`.csv`/`.champsim` file in a
//!   directory across a worker pool, continuing past per-file errors and
//!   rendering a per-file summary table (exit 1 when any file failed).
//!
//! The `fuzz` subcommand family drives the adversarial scenario fuzzer (the
//! `fuzz` crate; see ARCHITECTURE.md § Fuzzing):
//!
//! * `run` scans `--budget` seeded scenarios against the oracle panel
//!   (sanity, determinism, pathology — subset via `--oracle a,b`); firing
//!   scenarios are shrunk (unless `--no-shrink`) and, with `--out DIR`,
//!   persisted as `.altr` + machine + manifest repro triples. The same
//!   `--seed` and `--budget` produce byte-identical findings whatever
//!   `--jobs` is. Exit 0 clean, 1 with findings, 2 on usage errors;
//! * `repro` replays a persisted manifest and exits 0 only when the recorded
//!   oracle fires again *and* the report digest matches byte-for-byte;
//! * `corpus` tabulates the repro manifests in a directory — the corpus the
//!   `stress` experiment graduates via `ALECTO_STRESS_CORPUS`.
//!
//! `serve` turns the harness into a long-running sweep server: experiments
//! are submitted over HTTP (`POST /v1/sweep`), executed by a persistent
//! worker pool, and every finished simulation cell is memoized in a
//! content-addressed cache (`--cache-dir` persists it across restarts), so
//! repeated or overlapping sweeps cost near zero. `GET /v1/results/<id>`
//! serves the same bytes `--json` would write for the equivalent CLI run.
//! See `docs/PROTOCOL.md` for the wire format.
//!
//! Flag interaction is explicit and position-independent:
//!
//! 1. the scale starts at the default (or quick, for `--quick`/`quick`);
//! 2. `--accesses N` then sets the single-core budget to `N` **and derives
//!    the per-core multi-core budget as `max(N / 3, 100)`**, mirroring the
//!    default scale's ratio. `N` must be positive: a zero budget is always
//!    a typo, so it exits 2 with usage like `--jobs 0` does;
//! 3. `--multicore-accesses N` overrides that derived multi-core budget;
//! 4. `--core-model {approx|ooo}` selects the per-core timing model every
//!    sweep cell is configured with (default `approx`). Unlike the flags
//!    above it changes simulated results, not just scale: `ooo` runs the
//!    staged ROB/LSQ/branch-predictor pipeline and fills the nullable
//!    `branch_mpki`/`rob_occupancy` report fields.
//!
//! `--jobs N` picks the worker-thread count of the parallel experiment
//! engine (default: one per available hardware thread). It changes
//! wall-clock only — results are byte-identical for every worker count.
//! Threads the budget grants beyond one per grid cell are lent to the cells
//! as in-cell record producers (and, for `trace replay`, block-parallel
//! `.altr` decode workers) — equally invisible in the results. `--batch N`
//! sets the records-per-batch granularity of that producer/consumer
//! pipeline; it too never changes a byte of output.
//! `--json PATH` additionally writes the machine-readable
//! `alecto-bench-v2` report to `PATH`. Both report (`--json`) and trace
//! (`--out`) destinations are checked for writability up front, so a bad
//! path exits 2 before minutes of simulation, not after.

use alecto_types::TraceSource;
use harness::figures;
use harness::report::{experiments_to_json, Table};
use harness::RunScale;

fn usage() -> ! {
    eprintln!(
        "usage: alecto-harness <experiment> [--accesses N] [--multicore-accesses N] [--quick]\n\
         \x20                  [--jobs N] [--batch N] [--machine NAME|FILE]\n\
         \x20                  [--core-model approx|ooo] [--json PATH]\n\
         \x20      alecto-harness compare <baseline.json> <candidate.json> [--tolerance PCT]\n\
         \x20      alecto-harness list\n\
         \x20      alecto-harness machines [list]\n\
         \x20      alecto-harness machines show <name|file>\n\
         \x20      alecto-harness machines check <name|file>...\n\
         \x20      alecto-harness serve [--addr HOST:PORT] [--sweep-workers N] [--jobs N]\n\
         \x20                           [--cache-capacity N] [--cache-dir PATH]\n\
         \x20      alecto-harness trace record <benchmark> [--accesses N] --out PATH\n\
         \x20      alecto-harness trace info <file.altr> [--verify]\n\
         \x20      alecto-harness trace replay <benchmark|file:PATH> [--accesses N] [--jobs N]\n\
         \x20                                  [--batch N] [--machine NAME|FILE]\n\
         \x20                                  [--core-model approx|ooo] [--json PATH]\n\
         \x20      alecto-harness trace import <records.txt> --out PATH [--name NAME]\n\
         \x20                                  [--memory-intensive]\n\
         \x20      alecto-harness trace import --dir DIR [--out DIR] [--jobs N]\n\
         \x20                                  [--memory-intensive]\n\
         \x20      alecto-harness fuzz run [--seed N] [--budget N] [--accesses N] [--jobs N]\n\
         \x20                              [--machine NAME|FILE] [--oracle KINDS]\n\
         \x20                              [--threshold PCT] [--out DIR] [--no-shrink]\n\
         \x20      alecto-harness fuzz repro <manifest>\n\
         \x20      alecto-harness fuzz corpus <dir>\n\
         experiments: table1 table2 table3 fig1 fig2 fig8 fig9 fig10 fig11 fig12\n\
         \x20            fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 bandit-ext\n\
         \x20            stress timing all quick\n\
         flags:\n\
         \x20 --accesses N            single-core accesses (N >= 1); the multi-core per-core\n\
         \x20                         budget is derived as max(N / 3, 100) unless overridden\n\
         \x20 --multicore-accesses N  per-core accesses for multi-core runs\n\
         \x20 --quick                 use the reduced CI scale (same as the `quick` experiment)\n\
         \x20 --jobs N                worker threads (N >= 1; default: available parallelism);\n\
         \x20                         never changes results, only wall-clock; threads beyond\n\
         \x20                         one per cell become in-cell record producers\n\
         \x20 --batch N               records per producer batch (N >= 1; default 4096);\n\
         \x20                         never changes results, only wall-clock\n\
         \x20 --machine NAME|FILE     machine description every sweep cell lowers its config\n\
         \x20                         from: a built-in name (mobile desktop server manycore,\n\
         \x20                         see `machines`) or an alecto-machine-v1 file; supplies\n\
         \x20                         cache geometry, DRAM, timing, core widths, core count\n\
         \x20                         and the default core model; validated before anything\n\
         \x20                         runs (exit 2 on an unknown or invalid machine)\n\
         \x20 --core-model KIND       per-core timing model for every sweep cell: `approx`\n\
         \x20                         (analytic frontiers, the default) or `ooo` (staged\n\
         \x20                         ROB/LSQ/branch-predictor pipeline); overrides the\n\
         \x20                         selected machine's model; unlike --jobs this changes\n\
         \x20                         results — reports carry branch_mpki and rob_occupancy\n\
         \x20                         under `ooo`\n\
         \x20 --json PATH             also write the alecto-bench-v2 JSON report to PATH\n\
         \x20                         (the path must be creatable — checked up front)\n\
         \x20 --out PATH              destination .altr file for trace record/import\n\
         \x20                         (checked up front like --json)\n\
         \x20 --name NAME             benchmark name stamped into an imported trace's header\n\
         \x20                         (default: the input file stem)\n\
         \x20 --memory-intensive      mark an imported trace as memory intensive\n\
         \x20 --verify                trace info: re-walk every block, re-checking framing,\n\
         \x20                         record encoding and the FNV-1a64 body checksum; exits 2\n\
         \x20                         with a block-numbered error on the first defect\n\
         \x20 --dir DIR               trace import: bulk-import every .txt/.csv/.champsim\n\
         \x20                         file in DIR on a worker pool (per-file summary table;\n\
         \x20                         continues past failures, exit 1 if any file failed)\n\
         \x20 --seed N                fuzz run: master seed (default 1); the same seed and\n\
         \x20                         budget reproduce byte-identical findings at any --jobs\n\
         \x20 --budget N              fuzz run: scenarios to generate and check (default 16)\n\
         \x20 --oracle KINDS          fuzz run: comma-separated oracle subset out of\n\
         \x20                         sanity,determinism,pathology (default: all three)\n\
         \x20 --threshold PCT         fuzz run: allowed selector shortfall vs the best static\n\
         \x20                         prefetcher stack before the pathology oracle fires\n\
         \x20                         (default 5)\n\
         \x20 --no-shrink             fuzz run: keep firing scenarios at full size instead of\n\
         \x20                         dropping components / halving accesses\n\
         \x20 --tolerance PCT         compare: allowed speedup/IPC drop below the baseline\n\
         \x20                         in percent (default 5); exits 0 in-tolerance, 1 on\n\
         \x20                         regression with a per-cell diff, 2 on usage/parse errors\n\
         \x20 --addr HOST:PORT        serve: listen address (default 127.0.0.1:7171; port 0\n\
         \x20                         picks a free port, printed on startup)\n\
         \x20 --sweep-workers N       serve: concurrent sweep jobs (default 2)\n\
         \x20 --cache-capacity N      serve: in-memory cell-cache entries (default 4096)\n\
         \x20 --cache-dir PATH        serve: persist cache entries across restarts under PATH"
    );
    std::process::exit(2);
}

/// The `compare` subcommand: gate `candidate` against `baseline`.
/// Exit codes: 0 pass, 1 regression, 2 usage/parse error.
fn run_compare(args: &[String]) -> ! {
    let mut tolerance = harness::DEFAULT_TOLERANCE_PCT;
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let Some(value) = args.get(i) else { usage() };
                match value.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => tolerance = t,
                    _ => {
                        eprintln!("error: --tolerance {value}: not a non-negative percentage");
                        usage();
                    }
                }
            }
            flag if flag.starts_with('-') => usage(),
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths[..] else { usage() };
    let read = |path: &String| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|err| {
            eprintln!("error: cannot read {path}: {err}");
            usage();
        })
    };
    let baseline = read(baseline_path);
    let candidate = read(candidate_path);
    match harness::compare_reports(&baseline, &candidate, tolerance) {
        Err(err) => {
            eprintln!("error: {err}");
            usage();
        }
        Ok(comparison) => {
            println!(
                "compared {} shared cell(s) ({} baseline-only, {} candidate-only) \
                 at {tolerance}% tolerance",
                comparison.shared_cells, comparison.baseline_only, comparison.candidate_only
            );
            // A comparison that gates nothing must not read as a pass: a
            // renamed experiment or benchmark set would otherwise silently
            // disarm the CI perf gate.
            if comparison.shared_cells == 0 {
                eprintln!(
                    "error: the reports share no cells — wrong file pair, or the baseline \
                     needs refreshing"
                );
                std::process::exit(2);
            }
            if comparison.passed() {
                println!("PASS: no cell regressed beyond tolerance");
                std::process::exit(0);
            }
            println!("FAIL: {} metric(s) regressed beyond tolerance", comparison.regressions.len());
            println!("{}", comparison.diff_table().render());
            std::process::exit(1);
        }
    }
}

/// The `list` subcommand: every registered benchmark and experiment id.
fn run_list() -> ! {
    println!("experiments:");
    println!("  {}", figures::EXPERIMENT_IDS.join(" "));
    println!("benchmarks (suite: members):");
    for suite in traces::Suite::ALL {
        println!("  {:14} {}", format!("{}:", suite.name()), suite.benchmarks().join(" "));
    }
    println!(
        "  {:14} any recorded .altr trace (see `trace record` / `trace import`)",
        "file:<PATH>"
    );
    std::process::exit(0);
}

/// Resolves a `--machine` argument (built-in name or machine file) or exits
/// 2 with usage — always before any simulation, mirroring `--core-model`.
fn resolve_machine(arg: &str) -> machine::MachineSpec {
    machine::load(arg).unwrap_or_else(|err| {
        eprintln!("error: --machine {err}");
        usage();
    })
}

/// The `machines` subcommand family: list / show / check.
fn run_machines(args: &[String]) -> ! {
    match args.first().map(String::as_str) {
        None | Some("list") => {
            if args.len() > 1 {
                usage();
            }
            let mut table = Table::new(vec!["name", "cores", "core model", "fingerprint"]);
            for name in machine::BUILTIN_NAMES {
                let spec = machine::builtin(name).expect("built-in machines always parse");
                table.push_row(vec![
                    spec.name.clone(),
                    spec.cores.to_string(),
                    spec.core_model.label().to_string(),
                    format!("0x{}", spec.fingerprint_hex()),
                ]);
            }
            println!("{}", table.render());
            println!("run any experiment (or trace replay) with --machine <name|file>");
            std::process::exit(0);
        }
        Some("show") => {
            let [_, arg] = args else { usage() };
            let spec = machine::load(arg).unwrap_or_else(|err| {
                eprintln!("error: {err}");
                usage();
            });
            print!("{}", spec.canonical_text());
            println!("\n# fingerprint: 0x{}", spec.fingerprint_hex());
            std::process::exit(0);
        }
        Some("check") => {
            let targets = &args[1..];
            if targets.is_empty() {
                usage();
            }
            for arg in targets {
                match machine::load(arg) {
                    Ok(spec) => println!(
                        "{arg}: ok (machine {:?}, {} core(s), fingerprint 0x{})",
                        spec.name,
                        spec.cores,
                        spec.fingerprint_hex()
                    ),
                    Err(err) => {
                        eprintln!("error: {err}");
                        std::process::exit(2);
                    }
                }
            }
            std::process::exit(0);
        }
        Some(_) => usage(),
    }
}

/// Fails fast (exit 2 + usage) when `path` cannot be created, naming `flag`.
/// A full-scale run takes minutes; discovering the bad destination only at
/// the final write would throw the whole run away.
fn check_writable(path: &str, flag: &str) {
    if let Err(err) = std::fs::OpenOptions::new().create(true).append(true).open(path).map(drop) {
        eprintln!("error: {flag} {path}: {err}");
        usage();
    }
}

/// Writes a trace via a sibling temp file and renames it into place, so
/// `--out` never truncates a file the operation is still reading from
/// (`trace record file:X --out X` is a valid in-place transcode) and a
/// failed write never leaves a half-finished `.altr` behind.
fn write_trace_atomically(
    out: &str,
    write: impl FnOnce(&std::path::Path) -> std::io::Result<u64>,
) -> std::io::Result<u64> {
    let tmp = std::path::PathBuf::from(format!("{out}.tmp-{}", std::process::id()));
    match write(&tmp).and_then(|count| std::fs::rename(&tmp, out).map(|()| count)) {
        Ok(count) => Ok(count),
        Err(err) => {
            let _ = std::fs::remove_file(&tmp);
            Err(err)
        }
    }
}

/// Resolves a benchmark spec — a registry name or `file:<path>` — into a
/// lazy source plus the seed to stamp when re-recording it. File-backed
/// traces are fully validated (checksum included) before anything runs, so
/// a corrupt file exits 2 here instead of panicking inside a worker thread.
fn resolve_spec(spec: &str, accesses: Option<usize>) -> (TraceSource, u64) {
    resolve_spec_with_decode(spec, accesses, 0)
}

/// [`resolve_spec`] with block-parallel `.altr` decoding on `decode_workers`
/// background threads per replay (0 = serial). The decoded stream — and the
/// source fingerprint — is identical either way; only wall-clock changes.
fn resolve_spec_with_decode(
    spec: &str,
    accesses: Option<usize>,
    decode_workers: usize,
) -> (TraceSource, u64) {
    if let Some(path) = traceio::file_spec_path(spec) {
        let reader = traceio::TraceReader::open(path).unwrap_or_else(|err| {
            eprintln!("error: {err}");
            usage();
        });
        if let Err(err) = reader.stats() {
            eprintln!("error: {}: {err}", path.display());
            usage();
        }
        let seed = reader.header().seed;
        return (reader.source_parallel(accesses, decode_workers), seed);
    }
    let Some(suite) = traces::Suite::of(spec) else {
        eprintln!("error: unknown benchmark {spec:?} (try `alecto-harness list`)");
        usage();
    };
    let accesses = accesses.unwrap_or(RunScale::default().accesses);
    (suite.source(spec, accesses), traces::derive_seed(spec, 0))
}

/// The `serve` subcommand: run the sweep server until killed. Exit 2 on bad
/// flags, 1 when binding or serving fails.
fn run_serve(args: &[String]) -> ! {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut config = harness::ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = parse_path_value(args, &mut i),
            "--sweep-workers" => {
                let n: usize = parse_flag_value(args, &mut i);
                if n == 0 {
                    usage();
                }
                config.sweep_workers = n;
            }
            "--jobs" => {
                let n: usize = parse_flag_value(args, &mut i);
                if n == 0 {
                    usage();
                }
                config.default_jobs = n;
            }
            "--cache-capacity" => {
                let n: usize = parse_flag_value(args, &mut i);
                if n == 0 {
                    usage();
                }
                config.cache_capacity = n;
            }
            "--cache-dir" => config.cache_dir = Some(parse_path_value(args, &mut i).into()),
            _ => usage(),
        }
        i += 1;
    }
    let server = harness::Server::bind(&addr, config).unwrap_or_else(|err| {
        eprintln!("error: cannot bind {addr}: {err}");
        std::process::exit(1);
    });
    match server.local_addr() {
        // The exact line scripts (and the CI smoke job) wait for.
        Ok(local) => println!("alecto-harness serving on http://{local}"),
        Err(_) => println!("alecto-harness serving on http://{addr}"),
    }
    let err = server.run().expect_err("run only returns on listener failure");
    eprintln!("error: server terminated: {err}");
    std::process::exit(1);
}

/// The `trace` subcommand family: record / info / replay / import.
fn run_trace(args: &[String]) -> ! {
    let Some(action) = args.first() else { usage() };
    let rest = &args[1..];

    let mut accesses: Option<usize> = None;
    let mut jobs: Option<usize> = None;
    let mut batch: Option<usize> = None;
    let mut machine_spec: Option<machine::MachineSpec> = None;
    let mut core_model: Option<cpu::CoreModelKind> = None;
    let mut out: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut name: Option<String> = None;
    let mut memory_intensive = false;
    let mut verify = false;
    let mut dir: Option<String> = None;
    let mut positionals: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--accesses" => {
                let n: usize = parse_flag_value(rest, &mut i);
                if n == 0 {
                    usage();
                }
                accesses = Some(n);
            }
            "--jobs" => {
                let n: usize = parse_flag_value(rest, &mut i);
                if n == 0 {
                    usage();
                }
                jobs = Some(n);
            }
            "--batch" => {
                let n: usize = parse_flag_value(rest, &mut i);
                if n == 0 {
                    usage();
                }
                batch = Some(n);
            }
            "--machine" => {
                let arg: String = parse_path_value(rest, &mut i);
                machine_spec = Some(resolve_machine(&arg));
            }
            "--core-model" => {
                let label: String = parse_flag_value(rest, &mut i);
                let Some(kind) = cpu::CoreModelKind::from_label(&label) else {
                    eprintln!("error: unknown core model {label:?} (expected approx or ooo)");
                    usage();
                };
                core_model = Some(kind);
            }
            "--out" => out = Some(parse_path_value(rest, &mut i)),
            "--json" => json_path = Some(parse_path_value(rest, &mut i)),
            "--name" => name = Some(parse_path_value(rest, &mut i)),
            "--memory-intensive" => memory_intensive = true,
            "--verify" => verify = true,
            "--dir" => dir = Some(parse_path_value(rest, &mut i)),
            flag if flag.starts_with("--") => usage(),
            _ => positionals.push(&rest[i]),
        }
        i += 1;
    }

    match (action.as_str(), &positionals[..]) {
        ("record", [benchmark]) => {
            let Some(out) = out else {
                eprintln!("error: trace record needs --out PATH");
                usage();
            };
            check_writable(&out, "--out");
            let (source, seed) = resolve_spec(benchmark, accesses);
            let count =
                write_trace_atomically(&out, |tmp| traceio::record_source(&source, seed, tmp))
                    .unwrap_or_else(|err| {
                        eprintln!("error: cannot record to {out}: {err}");
                        std::process::exit(1);
                    });
            let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
            println!(
                "recorded {count} record(s) of {} to {out} ({bytes} bytes, {:.2} B/record)",
                source.name(),
                if count == 0 { 0.0 } else { bytes as f64 / count as f64 }
            );
            std::process::exit(0);
        }
        ("info", [path]) => run_trace_info(path, verify),
        ("replay", [spec]) => {
            if let Some(path) = &json_path {
                check_writable(path, "--json");
            }
            let mut scale = RunScale::default();
            if let Some(n) = jobs {
                scale.jobs = n;
            }
            if let Some(spec) = machine_spec {
                scale = scale.with_machine(spec);
            }
            if let Some(kind) = core_model {
                scale = scale.with_core_model(kind);
            }
            // Thread budget beyond the cell workers goes to block-parallel
            // `.altr` decoding inside each replay. Like --jobs and --batch,
            // this changes wall-clock only: the report is byte-identical.
            let decode_workers = harness::effective_jobs(scale.jobs).saturating_sub(1).min(4);
            let (source, _) = resolve_spec_with_decode(spec, accesses, decode_workers);
            let options = harness::DriveOptions {
                batch_records: batch.unwrap_or(cpu::DEFAULT_BATCH_RECORDS),
                ..harness::DriveOptions::new()
            };
            let experiment = harness::with_drive_options(options, || {
                figures::replay(std::slice::from_ref(&source), &scale)
            });
            println!("{}", experiment.render());
            if let Some(path) = json_path {
                if let Err(err) = std::fs::write(&path, experiments_to_json(&[experiment])) {
                    eprintln!("error: cannot write JSON report to {path}: {err}");
                    std::process::exit(1);
                }
            }
            std::process::exit(0);
        }
        ("import", []) if dir.is_some() => {
            // Bulk mode: --name makes no sense across many files (each trace
            // is stamped with its own file stem), so reject the combination.
            if name.is_some() {
                eprintln!("error: --name does not apply to trace import --dir");
                usage();
            }
            run_trace_import_dir(&dir.unwrap_or_default(), out.as_deref(), jobs, memory_intensive)
        }
        ("import", [input]) => {
            let Some(out) = out else {
                eprintln!("error: trace import needs --out PATH");
                usage();
            };
            check_writable(&out, "--out");
            let file = std::fs::File::open(input).unwrap_or_else(|err| {
                eprintln!("error: cannot read {input}: {err}");
                usage();
            });
            let name = name.unwrap_or_else(|| {
                std::path::Path::new(input)
                    .file_stem()
                    .map_or_else(|| "imported".to_string(), |s| s.to_string_lossy().into_owned())
            });
            let count = write_trace_atomically(&out, |tmp| {
                traceio::import_text(std::io::BufReader::new(file), &name, memory_intensive, tmp)
            })
            .unwrap_or_else(|err| {
                eprintln!("error: importing {input}: {err}");
                std::process::exit(2);
            });
            println!("imported {count} record(s) from {input} to {out} (benchmark {name:?})");
            std::process::exit(0);
        }
        _ => usage(),
    }
}

/// `trace import --dir`: fan every ChampSim text file in `dir` across a
/// worker pool, continuing past per-file failures, and render a per-file
/// summary table. Exits 0 when every file imported, 1 when any failed, 2
/// when the directory is unreadable or holds no importable files.
fn run_trace_import_dir(
    dir: &str,
    out_dir: Option<&str>,
    jobs: Option<usize>,
    memory_intensive: bool,
) -> ! {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|err| {
        eprintln!("error: cannot read {dir}: {err}");
        usage();
    });
    let mut inputs: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.extension().is_some_and(|ext| ext == "txt" || ext == "csv" || ext == "champsim")
        })
        .collect();
    inputs.sort();
    if inputs.is_empty() {
        eprintln!("error: no .txt/.csv/.champsim files in {dir}");
        std::process::exit(2);
    }
    let out_root = std::path::PathBuf::from(out_dir.unwrap_or(dir));
    if let Err(err) = std::fs::create_dir_all(&out_root) {
        eprintln!("error: cannot create {}: {err}", out_root.display());
        usage();
    }

    // Independent files, independent workers: a work-stealing index pull
    // like the experiment engine's, with results re-sorted by input order so
    // the summary table is deterministic whatever the pool interleaving.
    let workers = harness::effective_jobs(jobs.unwrap_or(0)).min(inputs.len()).max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    // (record count, output path) on success, a message naming the cause on
    // failure; indexed by input position so the table re-sorts deterministically.
    type ImportOutcome = Result<(u64, String), String>;
    let results: std::sync::Mutex<Vec<(usize, ImportOutcome)>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(input) = inputs.get(index) else { break };
                let stem = input
                    .file_stem()
                    .map_or_else(|| "imported".to_string(), |s| s.to_string_lossy().into_owned());
                let out = out_root.join(format!("{stem}.altr"));
                let out_str = out.to_string_lossy().into_owned();
                let outcome = std::fs::File::open(input)
                    .map_err(|err| format!("cannot read: {err}"))
                    .and_then(|file| {
                        write_trace_atomically(&out_str, |tmp| {
                            traceio::import_text(
                                std::io::BufReader::new(file),
                                &stem,
                                memory_intensive,
                                tmp,
                            )
                        })
                        .map_err(|err| err.to_string())
                    })
                    .map(|count| (count, out_str));
                results.lock().expect("collector poisoned").push((index, outcome));
            });
        }
    });
    let mut results = results.into_inner().expect("collector poisoned");
    results.sort_by_key(|(index, _)| *index);

    let mut table = Table::new(vec!["input", "records", "output", "status"]);
    let mut failed = 0usize;
    for (index, outcome) in &results {
        let input = inputs[*index].display().to_string();
        match outcome {
            Ok((count, out)) => {
                table.push_row(vec![input, count.to_string(), out.clone(), "ok".to_string()]);
            }
            Err(err) => {
                failed += 1;
                table.push_row(vec![
                    input,
                    "-".to_string(),
                    "-".to_string(),
                    format!("failed: {err}"),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!(
        "imported {}/{} file(s) from {dir} on {workers} worker(s)",
        results.len() - failed,
        results.len()
    );
    std::process::exit(i32::from(failed > 0));
}

/// `trace info`: header fields plus one full verified decode pass of stats.
/// With `verify`, the block framing and record encoding are additionally
/// re-walked ([`traceio::TraceReader::verify_blocks`]); any structural
/// defect or checksum mismatch exits 2 with a block-numbered error.
fn run_trace_info(path: &str, verify: bool) -> ! {
    let reader = traceio::TraceReader::open(std::path::Path::new(path)).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        usage();
    });
    let blocks_walked = if verify {
        Some(reader.verify_blocks().unwrap_or_else(|err| {
            eprintln!("error: {path}: {err}");
            std::process::exit(2);
        }))
    } else {
        None
    };
    let stats = reader.stats().unwrap_or_else(|err| {
        eprintln!("error: {path}: {err}");
        std::process::exit(2);
    });
    let header = reader.header();
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let mut table = Table::new(vec!["field", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("benchmark", header.name.clone()),
        ("memory intensive", header.memory_intensive.to_string()),
        ("format version", traceio::FORMAT_VERSION.to_string()),
        ("generation seed", format!("{:#018x}", header.seed)),
        ("records", header.record_count.to_string()),
        (
            "checksum",
            match blocks_walked {
                Some(blocks) => {
                    format!("{:#018x} (verified, {blocks} block(s) re-walked)", header.checksum)
                }
                None => format!("{:#018x} (verified)", header.checksum),
            },
        ),
        ("file size", format!("{bytes} bytes")),
        (
            "encoded size",
            format!(
                "{:.2} B/record (raw in-memory: 22)",
                if header.record_count == 0 {
                    0.0
                } else {
                    bytes as f64 / header.record_count as f64
                }
            ),
        ),
        ("loads", stats.loads.to_string()),
        ("stores", stats.stores.to_string()),
        ("dependent (pointer-chase)", stats.dependent.to_string()),
        ("instructions", stats.instructions.to_string()),
        ("max gap", stats.max_gap.to_string()),
        ("distinct PCs", stats.distinct_pcs.to_string()),
        ("touched 4K pages", stats.touched_pages.to_string()),
        ("address range", format!("{:#x}..={:#x}", stats.min_addr, stats.max_addr)),
    ];
    for (field, value) in rows {
        table.push_row(vec![field.to_string(), value]);
    }
    println!("{}", table.render());
    std::process::exit(0);
}

/// The `fuzz` subcommand family: run / repro / corpus (see the module docs
/// for exit codes).
fn run_fuzz_cli(args: &[String]) -> ! {
    let Some(action) = args.first() else { usage() };
    let rest = &args[1..];

    let mut seed = 1u64;
    let mut budget = 16u64;
    let mut accesses = 4_000usize;
    let mut jobs = 0usize;
    let mut machine_arg: Option<String> = None;
    let mut oracles: Option<Vec<fuzz::OracleKind>> = None;
    let mut threshold = fuzz::DEFAULT_PATHOLOGY_THRESHOLD_PCT;
    let mut out_dir: Option<String> = None;
    let mut no_shrink = false;
    let mut positionals: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seed" => seed = parse_flag_value(rest, &mut i),
            "--budget" => {
                let n: u64 = parse_flag_value(rest, &mut i);
                if n == 0 {
                    usage();
                }
                budget = n;
            }
            "--accesses" => {
                let n: usize = parse_flag_value(rest, &mut i);
                if n == 0 {
                    usage();
                }
                accesses = n;
            }
            "--jobs" => {
                let n: usize = parse_flag_value(rest, &mut i);
                if n == 0 {
                    usage();
                }
                jobs = n;
            }
            "--machine" => machine_arg = Some(parse_path_value(rest, &mut i)),
            "--oracle" => {
                let labels: String = parse_flag_value(rest, &mut i);
                let mut kinds = Vec::new();
                for label in labels.split(',') {
                    let Some(kind) = fuzz::OracleKind::from_label(label.trim()) else {
                        eprintln!(
                            "error: unknown oracle {label:?} (expected sanity, determinism or pathology)"
                        );
                        usage();
                    };
                    if !kinds.contains(&kind) {
                        kinds.push(kind);
                    }
                }
                if kinds.is_empty() {
                    usage();
                }
                oracles = Some(kinds);
            }
            "--threshold" => {
                let pct: f64 = parse_flag_value(rest, &mut i);
                if !pct.is_finite() || pct < 0.0 {
                    usage();
                }
                threshold = pct;
            }
            "--out" => out_dir = Some(parse_path_value(rest, &mut i)),
            "--no-shrink" => no_shrink = true,
            flag if flag.starts_with("--") => usage(),
            _ => positionals.push(&rest[i]),
        }
        i += 1;
    }

    match (action.as_str(), &positionals[..]) {
        ("run", []) => {
            let machine_label = machine_arg.clone().unwrap_or_else(|| "table1".to_string());
            let spec = machine_arg
                .map_or_else(|| machine::MachineSpec::table1(1), |arg| resolve_machine(&arg));
            // Check the repro destination up front, like --json/--out do:
            // finding a pathology and then losing it to a typo'd path would
            // throw the whole scan away.
            if let Some(dir) = &out_dir {
                if let Err(err) = std::fs::create_dir_all(dir) {
                    eprintln!("error: --out {dir}: {err}");
                    usage();
                }
            }
            let mut config = fuzz::FuzzConfig::new(seed, spec);
            config.budget = budget;
            config.accesses = accesses;
            config.jobs = jobs;
            if let Some(kinds) = oracles {
                config.panel.kinds = kinds;
            }
            config.panel.pathology_threshold_pct = threshold;
            config.out_dir = out_dir.map(Into::into);
            config.shrink = !no_shrink;
            let outcome = fuzz::run_fuzz(&config).unwrap_or_else(|err| {
                eprintln!("error: persisting repro: {err}");
                std::process::exit(1);
            });
            print!("{}", outcome.render(&machine_label, &config.panel));
            std::process::exit(i32::from(!outcome.findings.is_empty()));
        }
        ("repro", [manifest]) => {
            let replay = fuzz::replay(std::path::Path::new(manifest)).unwrap_or_else(|err| {
                eprintln!("error: {err}");
                std::process::exit(2);
            });
            println!(
                "scenario = {} (oracle {})",
                replay.manifest.name,
                replay.manifest.oracle.label()
            );
            println!(
                "digest = {:#018x} (manifest {:#018x}, {})",
                replay.digest,
                replay.manifest.report_digest,
                if replay.digest_match { "match" } else { "MISMATCH" }
            );
            match &replay.firing {
                Some(firing) => println!("oracle fired: {}", firing.detail),
                None => println!("oracle did not fire"),
            }
            if replay.reproduced() {
                println!("reproduced");
                std::process::exit(0);
            }
            println!("NOT reproduced");
            std::process::exit(1);
        }
        ("corpus", [dir]) => {
            let entries = std::fs::read_dir(dir).unwrap_or_else(|err| {
                eprintln!("error: cannot read {dir}: {err}");
                usage();
            });
            let mut manifests: Vec<std::path::PathBuf> = entries
                .filter_map(Result::ok)
                .map(|entry| entry.path())
                .filter(|path| path.extension().is_some_and(|ext| ext == "manifest"))
                .collect();
            manifests.sort();
            let mut table = Table::new(vec!["manifest", "oracle", "accesses", "digest", "trace"]);
            for path in &manifests {
                let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
                    eprintln!("error: {}: {err}", path.display());
                    std::process::exit(2);
                });
                let manifest = fuzz::Manifest::parse(&text).unwrap_or_else(|err| {
                    eprintln!("error: {}: {err}", path.display());
                    std::process::exit(2);
                });
                table.push_row(vec![
                    manifest.name,
                    manifest.oracle.label().to_string(),
                    manifest.accesses.to_string(),
                    format!("{:#018x}", manifest.report_digest),
                    manifest.trace,
                ]);
            }
            println!("{}", table.render());
            println!(
                "{} repro(s) in {dir}; export ALECTO_STRESS_CORPUS={dir} to graduate the .altr \
                 traces into the `stress` experiment",
                manifests.len()
            );
            std::process::exit(0);
        }
        _ => usage(),
    }
}

fn parse_flag_value<T: std::str::FromStr>(args: &[String], i: &mut usize) -> T {
    *i += 1;
    args.get(*i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
}

/// Like [`parse_flag_value`] for path/name operands, rejecting a following
/// flag: a leading dash is a forgotten value, and swallowing the next flag
/// would silently change the run (e.g. `--json --quick` dropping quick mode).
fn parse_path_value(args: &[String], i: &mut usize) -> String {
    *i += 1;
    let value = args.get(*i).cloned().unwrap_or_else(|| usage());
    if value.starts_with('-') {
        usage();
    }
    value
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "compare" => run_compare(&args[1..]),
        "list" => run_list(),
        "machines" => run_machines(&args[1..]),
        "serve" => run_serve(&args[1..]),
        "trace" => run_trace(&args[1..]),
        "fuzz" => run_fuzz_cli(&args[1..]),
        _ => {}
    }
    let mut quick = false;
    let mut accesses_override: Option<usize> = None;
    let mut multicore_override: Option<usize> = None;
    let mut jobs: Option<usize> = None;
    let mut batch: Option<usize> = None;
    let mut machine_spec: Option<machine::MachineSpec> = None;
    let mut core_model: Option<cpu::CoreModelKind> = None;
    let mut json_path: Option<String> = None;
    let mut experiment = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--machine" => {
                let arg: String = parse_path_value(&args, &mut i);
                machine_spec = Some(resolve_machine(&arg));
            }
            "--core-model" => {
                let label: String = parse_flag_value(&args, &mut i);
                let Some(kind) = cpu::CoreModelKind::from_label(&label) else {
                    eprintln!("error: unknown core model {label:?} (expected approx or ooo)");
                    usage();
                };
                core_model = Some(kind);
            }
            "--accesses" => {
                let n: usize = parse_flag_value(&args, &mut i);
                // A zero access budget is always a typo; reject it like
                // `--jobs 0` rather than emitting an all-NaN report.
                if n == 0 {
                    usage();
                }
                accesses_override = Some(n);
            }
            "--multicore-accesses" => multicore_override = Some(parse_flag_value(&args, &mut i)),
            "--jobs" => {
                let n: usize = parse_flag_value(&args, &mut i);
                if n == 0 {
                    usage();
                }
                jobs = Some(n);
            }
            "--batch" => {
                let n: usize = parse_flag_value(&args, &mut i);
                if n == 0 {
                    usage();
                }
                batch = Some(n);
            }
            "--json" => json_path = Some(parse_path_value(&args, &mut i)),
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    let experiment = experiment.unwrap_or_else(|| usage());

    // Scale resolution, in documented order: preset, then --accesses (which
    // derives the multi-core budget), then --multicore-accesses. The sweep
    // server resolves its request bodies through the same function, so
    // equivalent HTTP and CLI runs are byte-identical.
    let mut scale = RunScale::resolve(
        quick || experiment == "quick",
        accesses_override,
        multicore_override,
        jobs,
    );
    // The machine supplies the default core model; an explicit --core-model
    // then overrides it, whatever the flag order on the command line.
    if let Some(spec) = machine_spec {
        scale = scale.with_machine(spec);
    }
    if let Some(kind) = core_model {
        scale = scale.with_core_model(kind);
    }

    if let Some(path) = &json_path {
        check_writable(path, "--json");
    }

    let Some(build) = figures::builder(&experiment) else { usage() };
    let options = harness::DriveOptions {
        batch_records: batch.unwrap_or(cpu::DEFAULT_BATCH_RECORDS),
        ..harness::DriveOptions::new()
    };
    let experiments = harness::with_drive_options(options, || build(&scale));
    for e in &experiments {
        println!("{}", e.render());
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, experiments_to_json(&experiments)) {
            eprintln!("error: cannot write JSON report to {path}: {err}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_id_dispatches() {
        for id in figures::EXPERIMENT_IDS {
            assert!(
                figures::builder(id).is_some(),
                "`list` advertises {id} but the dispatch rejects it"
            );
        }
    }

    #[test]
    fn unknown_experiment_ids_are_rejected() {
        for id in ["fig99", "", "trace", "compare", "list", "serve"] {
            assert!(figures::builder(id).is_none(), "{id} must not dispatch");
        }
        // The paper-section alias stays dispatchable though unlisted.
        assert!(figures::builder("vi_h").is_some());
    }

    #[test]
    fn cli_scale_resolution_matches_documented_order() {
        assert_eq!(RunScale::resolve(false, None, None, None), RunScale::default());
        assert_eq!(RunScale::resolve(true, None, None, None), RunScale::quick());
        let derived = RunScale::resolve(false, Some(9_000), None, Some(2));
        assert_eq!((derived.accesses, derived.multicore_accesses, derived.jobs), (9_000, 3_000, 2));
        // The floor mirrors the CLI contract: max(N / 3, 100).
        assert_eq!(RunScale::resolve(false, Some(30), None, None).multicore_accesses, 100);
        // An explicit multi-core budget overrides the derived one.
        assert_eq!(RunScale::resolve(true, Some(900), Some(42), None).multicore_accesses, 42);
    }
}
