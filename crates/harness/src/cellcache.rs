//! Content-addressed memoization of simulation cells.
//!
//! A [`CellCache`] stores finished [`SystemReport`]s keyed by
//! [`CellJob::cache_key`] — the canonical FNV-1a64 digest of everything that
//! determines a cell's result (algorithm, composite, full system
//! configuration, and each trace source's content fingerprint). Because the
//! workspace's determinism contract (see `docs/ARCHITECTURE.md`) guarantees
//! equal keys produce byte-identical reports, serving a cached report is
//! indistinguishable from re-simulating: the sweep server layers this cache
//! under the experiment engine via [`CellExecutor`] and repeated or
//! overlapping sweeps cost near zero.
//!
//! Two tiers:
//!
//! - an in-memory LRU map bounded to a configurable number of entries
//!   (reports are a few KB each; the default capacity comfortably holds the
//!   full experiment suite);
//! - an optional on-disk tier (`--cache-dir`) that persists entries across
//!   restarts. Files are written with the temp-file + rename discipline (a
//!   crash never leaves a partial entry under its final name) and carry a
//!   self-checksum, so a corrupted or truncated entry is detected on load
//!   and transparently recomputed, never served.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use alecto_types::{fnv1a_64, FNV1A_OFFSET};
use cpu::SystemReport;

use crate::runner::{run_cell, CellExecutor, CellJob};

/// First-line magic of an on-disk cell entry; the version suffix changes
/// whenever the entry layout or the report codec changes incompatibly, so a
/// new binary never misreads entries written by an old one (they miss and
/// are recomputed — the cache is only ever an optimisation).
pub const DISK_FORMAT_MAGIC: &str = "alecto-cell-v1";

/// A point-in-time snapshot of the cache counters, served by `/v1/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from the in-memory tier.
    pub memory_hits: u64,
    /// Lookups answered from the disk tier (the entry is promoted to memory).
    pub disk_hits: u64,
    /// Lookups answered by simulating the cell from scratch.
    pub misses: u64,
    /// Entries evicted from the memory tier to respect the capacity bound.
    pub evictions: u64,
    /// Disk entries rejected as corrupt (checksum or decode failure).
    pub corrupt_entries: u64,
    /// Entries currently resident in the memory tier.
    pub resident: u64,
}

impl CacheCounters {
    /// Total lookups served from either tier.
    #[must_use]
    pub const fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Fraction of lookups served from the cache (1.0 for an all-hit
    /// workload, 0.0 when the cache is empty or every key was new).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// The LRU bookkeeping behind the memory tier: entries plus a recency list
/// (front = least recently used). Reports are small and capacities modest,
/// so the O(n) recency updates are noise next to a single cell simulation.
struct LruState {
    entries: HashMap<u64, SystemReport>,
    recency: Vec<u64>,
}

impl LruState {
    fn touch(&mut self, key: u64) {
        if let Some(at) = self.recency.iter().position(|&k| k == key) {
            self.recency.remove(at);
        }
        self.recency.push(key);
    }
}

/// A bounded, thread-safe, content-addressed cache of finished simulation
/// cells; see the [module docs](self) for the tiering and integrity story.
pub struct CellCache {
    state: Mutex<LruState>,
    capacity: usize,
    dir: Option<PathBuf>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt_entries: AtomicU64,
}

impl std::fmt::Debug for CellCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellCache")
            .field("capacity", &self.capacity)
            .field("dir", &self.dir)
            .field("counters", &self.counters())
            .finish()
    }
}

impl CellCache {
    /// Default memory-tier capacity: generously above the cell count of the
    /// full experiment suite, yet bounded (reports are a few KB, so this is
    /// tens of MB at worst).
    pub const DEFAULT_CAPACITY: usize = 4_096;

    /// Creates a memory-only cache holding at most `capacity` entries
    /// (`capacity` 0 is clamped to 1: a cache that can hold nothing would
    /// turn every lookup into a miss *and* an eviction).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(LruState { entries: HashMap::new(), recency: Vec::new() }),
            capacity: capacity.max(1),
            dir: None,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_entries: AtomicU64::new(0),
        }
    }

    /// Creates a cache whose entries also persist under `dir` (created if
    /// missing). The disk tier is unbounded — memory-tier eviction never
    /// deletes the file, so evicted entries are still disk hits later.
    ///
    /// # Errors
    ///
    /// Returns the error from creating `dir`.
    pub fn with_dir(capacity: usize, dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir: Some(dir), ..Self::new(capacity) })
    }

    /// The current counter values.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt_entries: self.corrupt_entries.load(Ordering::Relaxed),
            resident: self.state.lock().expect("cache lock").entries.len() as u64,
        }
    }

    /// Looks `key` up in the memory tier, falling back to the disk tier
    /// (promoting on success), and updates the hit/miss counters. `None`
    /// means the caller must simulate.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<SystemReport> {
        {
            let mut state = self.state.lock().expect("cache lock");
            if let Some(report) = state.entries.get(&key).cloned() {
                state.touch(key);
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                return Some(report);
            }
        }
        if let Some(report) = self.load_from_disk(key) {
            self.insert_memory(key, report.clone());
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Some(report);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a freshly computed report under `key`: into the memory tier
    /// (evicting the least recently used entry when full) and, when a cache
    /// directory is configured, onto disk via temp-file + rename. Disk write
    /// failures are swallowed — the cache is an optimisation, not a
    /// correctness dependency — but leave the memory tier populated.
    pub fn insert(&self, key: u64, report: SystemReport) {
        if let Some(dir) = &self.dir {
            // Best effort: a full or read-only disk must not fail the sweep.
            let _ = write_entry(dir, key, &report);
        }
        self.insert_memory(key, report);
    }

    fn insert_memory(&self, key: u64, report: SystemReport) {
        let mut state = self.state.lock().expect("cache lock");
        if state.entries.insert(key, report).is_none() && state.entries.len() > self.capacity {
            let victim = state.recency.remove(0);
            state.entries.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        state.touch(key);
    }

    fn load_from_disk(&self, key: u64) -> Option<SystemReport> {
        let dir = self.dir.as_ref()?;
        let path = entry_path(dir, key);
        let bytes = fs::read_to_string(&path).ok()?;
        match parse_entry(&bytes, key) {
            Ok(report) => Some(report),
            Err(_) => {
                // Detected corruption: count it, drop the bad file (best
                // effort) and let the caller recompute.
                self.corrupt_entries.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }
}

impl CellExecutor for CellCache {
    /// Memoized execution: serve `cell` from the cache when its key is
    /// present, otherwise simulate it with [`run_cell`] and remember the
    /// result. Concurrent misses on the same key may both simulate (the
    /// result is identical by construction; last insert wins) — the lock is
    /// never held across a simulation.
    fn execute(&self, cell: &CellJob<'_>) -> SystemReport {
        let key = cell.cache_key();
        if let Some(report) = self.lookup(key) {
            return report;
        }
        let report = run_cell(cell);
        self.insert(key, report.clone());
        report
    }
}

/// The file a key persists under: 16 lowercase hex digits, `.cell` suffix.
fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.cell"))
}

/// Serialises a disk entry: a header line
/// `alecto-cell-v1 <key-hex> <body-fnv1a64-hex>` followed by the report
/// JSON. The checksum covers exactly the body bytes after the newline.
fn render_entry(key: u64, report: &SystemReport) -> String {
    let body = report_to_json(report);
    let checksum = fnv1a_64(FNV1A_OFFSET, body.as_bytes());
    format!("{DISK_FORMAT_MAGIC} {key:016x} {checksum:016x}\n{body}")
}

/// Writes an entry with the temp-file + rename discipline: the final name
/// only ever points at a fully written file.
fn write_entry(dir: &Path, key: u64, report: &SystemReport) -> io::Result<()> {
    let tmp = dir.join(format!(".{key:016x}.tmp.{}", std::process::id()));
    fs::write(&tmp, render_entry(key, report))?;
    let result = fs::rename(&tmp, entry_path(dir, key));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Parses and verifies a disk entry: magic, key echo, body checksum, then
/// the report itself. Any mismatch is corruption.
fn parse_entry(bytes: &str, expected_key: u64) -> Result<SystemReport, String> {
    let (header, body) = bytes.split_once('\n').ok_or("missing entry header")?;
    let mut parts = header.split(' ');
    if parts.next() != Some(DISK_FORMAT_MAGIC) {
        return Err(format!("bad magic in {header:?}"));
    }
    let key =
        parts.next().and_then(|h| u64::from_str_radix(h, 16).ok()).ok_or("unparsable entry key")?;
    if key != expected_key {
        return Err(format!("entry key {key:016x} does not match {expected_key:016x}"));
    }
    let checksum = parts
        .next()
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or("unparsable entry checksum")?;
    if parts.next().is_some() {
        return Err("trailing header fields".to_string());
    }
    let actual = fnv1a_64(FNV1A_OFFSET, body.as_bytes());
    if actual != checksum {
        return Err(format!("body checksum {actual:016x} != header {checksum:016x}"));
    }
    report_from_json(body)
}

// --- SystemReport <-> JSON -------------------------------------------------
//
// A hand-rolled codec over `report::json` (no serde in the workspace). All
// counters are u64; they are emitted as plain JSON integers and parsed back
// through f64, which is exact up to 2^53 — far beyond any simulatable cycle
// count, and the entry checksum catches disagreement regardless. The one
// float (`ipc`) round-trips exactly because Rust's `{}` formatting emits the
// shortest representation that parses back to the same bits.

use crate::report::json::{self, JsonValue};

fn obj(pairs: &[(&str, String)]) -> String {
    let members: Vec<String> =
        pairs.iter().map(|(k, v)| format!("{}:{v}", json::string(k))).collect();
    format!("{{{}}}", members.join(","))
}

fn cache_stats_json(s: &memsys::CacheStats) -> String {
    obj(&[
        ("demand_hits", s.demand_hits.to_string()),
        ("demand_misses", s.demand_misses.to_string()),
        ("demand_mshr_merges", s.demand_mshr_merges.to_string()),
        ("prefetch_hits", s.prefetch_hits.to_string()),
        ("prefetch_fills", s.prefetch_fills.to_string()),
        ("evictions", s.evictions.to_string()),
        ("unused_prefetch_evictions", s.unused_prefetch_evictions.to_string()),
        ("useful_prefetch_hits", s.useful_prefetch_hits.to_string()),
        ("mshr_stall_cycles", s.mshr_stall_cycles.to_string()),
    ])
}

/// Serialises a [`SystemReport`] to a canonical single-line JSON object (the
/// disk-entry body; also reused by the server's `/v1/jobs` cell previews).
#[must_use]
pub fn report_to_json(report: &SystemReport) -> String {
    let cores: Vec<String> = report
        .cores
        .iter()
        .map(|c| {
            let prefetchers: Vec<String> = c
                .prefetchers
                .iter()
                .map(|p| {
                    obj(&[
                        ("name", json::string(&p.name)),
                        ("lookups", p.stats.lookups.to_string()),
                        ("hits", p.stats.hits.to_string()),
                        ("misses", p.stats.misses.to_string()),
                        ("trainings", p.stats.trainings.to_string()),
                        ("evictions", p.stats.evictions.to_string()),
                        ("candidates_emitted", p.stats.candidates_emitted.to_string()),
                    ])
                })
                .collect();
            obj(&[
                ("workload", json::string(&c.workload)),
                ("selector", json::string(&c.selector)),
                ("instructions", c.instructions.to_string()),
                ("cycles", c.cycles.to_string()),
                ("ipc", json::number(c.ipc)),
                (
                    "timing",
                    obj(&[
                        ("demand_accesses", c.timing.demand_accesses.to_string()),
                        ("demand_latency_cycles", c.timing.demand_latency_cycles.to_string()),
                        ("mshr_stall_cycles", c.timing.mshr_stall_cycles.to_string()),
                        ("dram_queue_cycles", c.timing.dram_queue_cycles.to_string()),
                    ]),
                ),
                ("l1", cache_stats_json(&c.l1)),
                ("l2", cache_stats_json(&c.l2)),
                (
                    "quality",
                    obj(&[
                        ("covered_timely", c.quality.covered_timely.to_string()),
                        ("covered_untimely", c.quality.covered_untimely.to_string()),
                        ("uncovered", c.quality.uncovered.to_string()),
                        ("overpredicted", c.quality.overpredicted.to_string()),
                    ]),
                ),
                ("prefetchers", json::array(prefetchers)),
                ("training_occurrences", c.training_occurrences.to_string()),
                ("table_misses", c.table_misses.to_string()),
                ("prefetches_issued", c.prefetches_issued.to_string()),
                ("branch_mpki", c.branch_mpki.map_or_else(|| "null".to_string(), json::number)),
                ("rob_occupancy", c.rob_occupancy.map_or_else(|| "null".to_string(), json::number)),
            ])
        })
        .collect();
    obj(&[
        ("selector", json::string(&report.selector)),
        ("composite", json::string(&report.composite)),
        ("cores", json::array(cores)),
        ("l3", cache_stats_json(&report.l3)),
        (
            "dram",
            obj(&[
                ("accesses", report.dram.accesses.to_string()),
                ("row_hits", report.dram.row_hits.to_string()),
                ("row_misses", report.dram.row_misses.to_string()),
                ("queue_cycles", report.dram.queue_cycles.to_string()),
            ]),
        ),
        ("selector_storage_bits", report.selector_storage_bits.to_string()),
    ])
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    let n = v.get(key).and_then(JsonValue::as_f64).ok_or_else(|| format!("missing {key}"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{key} is not a non-negative integer"));
    }
    Ok(n as u64)
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key).and_then(JsonValue::as_str).map(String::from).ok_or_else(|| format!("missing {key}"))
}

fn cache_stats_from(v: &JsonValue, key: &str) -> Result<memsys::CacheStats, String> {
    let v = v.get(key).ok_or_else(|| format!("missing {key}"))?;
    Ok(memsys::CacheStats {
        demand_hits: get_u64(v, "demand_hits")?,
        demand_misses: get_u64(v, "demand_misses")?,
        demand_mshr_merges: get_u64(v, "demand_mshr_merges")?,
        prefetch_hits: get_u64(v, "prefetch_hits")?,
        prefetch_fills: get_u64(v, "prefetch_fills")?,
        evictions: get_u64(v, "evictions")?,
        unused_prefetch_evictions: get_u64(v, "unused_prefetch_evictions")?,
        useful_prefetch_hits: get_u64(v, "useful_prefetch_hits")?,
        mshr_stall_cycles: get_u64(v, "mshr_stall_cycles")?,
    })
}

/// Parses a [`report_to_json`] document back into a [`SystemReport`].
///
/// # Errors
///
/// Returns a description of the first syntactic or structural problem; the
/// cache treats any error as a corrupt entry and recomputes.
pub fn report_from_json(body: &str) -> Result<SystemReport, String> {
    let doc = json::parse(body)?;
    let cores = doc
        .get("cores")
        .and_then(JsonValue::as_array)
        .ok_or("missing cores")?
        .iter()
        .map(|c| {
            let timing = c.get("timing").ok_or("missing timing")?;
            let quality = c.get("quality").ok_or("missing quality")?;
            let prefetchers = c
                .get("prefetchers")
                .and_then(JsonValue::as_array)
                .ok_or("missing prefetchers")?
                .iter()
                .map(|p| {
                    Ok(cpu::PrefetcherReport {
                        name: get_str(p, "name")?,
                        stats: prefetch::TableStats {
                            lookups: get_u64(p, "lookups")?,
                            hits: get_u64(p, "hits")?,
                            misses: get_u64(p, "misses")?,
                            trainings: get_u64(p, "trainings")?,
                            evictions: get_u64(p, "evictions")?,
                            candidates_emitted: get_u64(p, "candidates_emitted")?,
                        },
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(cpu::CoreReport {
                workload: get_str(c, "workload")?,
                selector: get_str(c, "selector")?,
                instructions: get_u64(c, "instructions")?,
                cycles: get_u64(c, "cycles")?,
                ipc: c.get("ipc").and_then(JsonValue::as_f64).ok_or("missing ipc")?,
                timing: memsys::TimingStats {
                    demand_accesses: get_u64(timing, "demand_accesses")?,
                    demand_latency_cycles: get_u64(timing, "demand_latency_cycles")?,
                    mshr_stall_cycles: get_u64(timing, "mshr_stall_cycles")?,
                    dram_queue_cycles: get_u64(timing, "dram_queue_cycles")?,
                },
                l1: cache_stats_from(c, "l1")?,
                l2: cache_stats_from(c, "l2")?,
                quality: memsys::PrefetchQuality {
                    covered_timely: get_u64(quality, "covered_timely")?,
                    covered_untimely: get_u64(quality, "covered_untimely")?,
                    uncovered: get_u64(quality, "uncovered")?,
                    overpredicted: get_u64(quality, "overpredicted")?,
                },
                prefetchers,
                training_occurrences: get_u64(c, "training_occurrences")?,
                table_misses: get_u64(c, "table_misses")?,
                prefetches_issued: get_u64(c, "prefetches_issued")?,
                // Optional so entries written before the pipeline metrics
                // existed still parse (they carried only Approx cells anyway).
                branch_mpki: c.get("branch_mpki").and_then(JsonValue::as_f64),
                rob_occupancy: c.get("rob_occupancy").and_then(JsonValue::as_f64),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let dram = doc.get("dram").ok_or("missing dram")?;
    Ok(SystemReport {
        selector: get_str(&doc, "selector")?,
        composite: get_str(&doc, "composite")?,
        cores,
        l3: cache_stats_from(&doc, "l3")?,
        dram: memsys::DramStats {
            accesses: get_u64(dram, "accesses")?,
            row_hits: get_u64(dram, "row_hits")?,
            row_misses: get_u64(dram, "row_misses")?,
            queue_cycles: get_u64(dram, "queue_cycles")?,
        },
        selector_storage_bits: get_u64(&doc, "selector_storage_bits")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu::{CompositeKind, SelectionAlgorithm, SystemConfig};

    fn tiny_cell_report(accesses: usize) -> (u64, SystemReport) {
        let sources = [traces::spec06::source("lbm", accesses)];
        let config = SystemConfig::skylake_like(1);
        let cell = CellJob {
            algorithm: SelectionAlgorithm::Alecto,
            composite: CompositeKind::GsCsPmp,
            config: &config,
            sources: &sources,
        };
        (cell.cache_key(), run_cell(&cell))
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("alecto-cellcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn report_round_trips_through_json() {
        let (_, report) = tiny_cell_report(300);
        let json = report_to_json(&report);
        let back = report_from_json(&json).expect("round trip");
        assert_eq!(back, report);
        // Canonical form: re-encoding is byte-identical.
        assert_eq!(report_to_json(&back), json);
    }

    #[test]
    fn memory_tier_hits_and_misses() {
        let cache = CellCache::new(8);
        let (key, report) = tiny_cell_report(200);
        assert!(cache.lookup(key).is_none(), "cold cache must miss");
        cache.insert(key, report.clone());
        assert_eq!(cache.lookup(key).as_ref(), Some(&report));
        let c = cache.counters();
        assert_eq!((c.memory_hits, c.misses, c.resident), (1, 1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let cache = CellCache::new(2);
        let (_, report) = tiny_cell_report(100);
        cache.insert(1, report.clone());
        cache.insert(2, report.clone());
        assert!(cache.lookup(1).is_some(), "touch 1 so 2 becomes the LRU entry");
        cache.insert(3, report);
        let c = cache.counters();
        assert_eq!((c.evictions, c.resident), (1, 2));
        assert!(cache.lookup(2).is_none(), "entry 2 was least recently used");
        assert!(cache.lookup(1).is_some() && cache.lookup(3).is_some());
    }

    #[test]
    fn executor_memoizes_identical_cells() {
        let cache = CellCache::new(8);
        let sources = [traces::spec06::source("povray", 250)];
        let config = SystemConfig::skylake_like(1);
        let cell = CellJob {
            algorithm: SelectionAlgorithm::Ipcp,
            composite: CompositeKind::GsCsPmp,
            config: &config,
            sources: &sources,
        };
        let cold = cache.execute(&cell);
        let warm = cache.execute(&cell);
        assert_eq!(cold, warm);
        let c = cache.counters();
        assert_eq!((c.memory_hits, c.misses), (1, 1));
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = tmp_dir("persist");
        let (key, report) = tiny_cell_report(150);
        {
            let cache = CellCache::with_dir(8, &dir).expect("create cache dir");
            cache.insert(key, report.clone());
        }
        let cache = CellCache::with_dir(8, &dir).expect("reopen cache dir");
        assert_eq!(cache.lookup(key).as_ref(), Some(&report));
        let c = cache.counters();
        assert_eq!((c.disk_hits, c.memory_hits, c.misses), (1, 0, 0));
        // Promoted to memory: the second lookup no longer touches disk.
        assert!(cache.lookup(key).is_some());
        assert_eq!(cache.counters().memory_hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_entries_are_rejected_not_served() {
        let dir = tmp_dir("corrupt");
        let (key, report) = tiny_cell_report(120);
        let cache = CellCache::with_dir(8, &dir).expect("create cache dir");
        cache.insert(key, report);
        let path = entry_path(&dir, key);

        // Flip one body byte: the checksum must catch it.
        let mut bytes = fs::read_to_string(&path).expect("entry readable");
        let flip = bytes.len() - 2;
        let original = bytes.as_bytes()[flip];
        bytes.replace_range(flip..=flip, if original == b'0' { "1" } else { "0" });
        fs::write(&path, &bytes).expect("rewrite entry");

        let reopened = CellCache::with_dir(8, &dir).expect("reopen cache dir");
        assert!(reopened.lookup(key).is_none(), "corrupt entry must read as a miss");
        let c = reopened.counters();
        assert_eq!((c.corrupt_entries, c.misses), (1, 1));
        assert!(!path.exists(), "corrupt entry is dropped so it cannot recur");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_misheadered_entries_are_corrupt() {
        let (key, report) = tiny_cell_report(110);
        let good = render_entry(key, &report);
        assert!(parse_entry(&good, key).is_ok());
        assert!(parse_entry(&good, key ^ 1).is_err(), "key echo must match");
        let truncated = &good[..good.len() / 2];
        assert!(parse_entry(truncated, key).is_err(), "truncated body fails the checksum");
        let wrong_magic = good.replacen(DISK_FORMAT_MAGIC, "alecto-cell-v0", 1);
        assert!(parse_entry(&wrong_magic, key).is_err(), "unknown versions never parse");
        assert!(parse_entry("", key).is_err());
    }
}
