//! The perf-regression gate behind `alecto-harness compare`: load two
//! `alecto-bench-v*` JSON reports, match their benchmark × algorithm cells
//! experiment by experiment, and flag every shared cell whose speedup or IPC
//! regressed beyond a tolerance.
//!
//! Only *shared* cells are compared — a baseline generated before a new
//! experiment landed still gates the old ones, and a cell removed from the
//! candidate simply stops being gated (refreshing the committed baseline is
//! the documented way to acknowledge intentional changes). Improvements
//! never fail the gate: the check is one-sided.

use std::collections::BTreeMap;

use crate::report::json::{self, JsonValue};
use crate::report::{Table, JSON_SCHEMA_PREFIX};

/// Default tolerance (percent) when `--tolerance` is not given: generous
/// enough to absorb model-tuning noise, tight enough to catch real
/// regressions.
pub const DEFAULT_TOLERANCE_PCT: f64 = 5.0;

/// The gated metrics of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// Speedup over the no-prefetching baseline.
    pub speedup: f64,
    /// Geomean IPC of the run.
    pub ipc: f64,
}

/// Identity of a cell: experiment id, benchmark, algorithm. `BTreeMap`
/// ordering keeps diff tables stable across runs.
pub type CellKey = (String, String, String);

/// One regressed metric of one shared cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Which cell regressed.
    pub key: CellKey,
    /// `"speedup"` or `"ipc"`.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Relative change in percent (negative = regression).
    pub delta_pct: f64,
}

/// Outcome of comparing two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Cells present in both reports (the gated set).
    pub shared_cells: usize,
    /// Cells only in one report (ignored by the gate).
    pub baseline_only: usize,
    /// Cells only in the candidate (new coverage, not gated).
    pub candidate_only: usize,
    /// Every regression beyond tolerance, in stable key order.
    pub regressions: Vec<Regression>,
}

impl Comparison {
    /// `true` when no shared cell regressed beyond tolerance.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the regressions as a per-cell diff table.
    #[must_use]
    pub fn diff_table(&self) -> Table {
        let mut table = Table::new(vec![
            "experiment",
            "benchmark",
            "algorithm",
            "metric",
            "baseline",
            "candidate",
            "delta",
        ]);
        for r in &self.regressions {
            table.push_row(vec![
                r.key.0.clone(),
                r.key.1.clone(),
                r.key.2.clone(),
                r.metric.to_string(),
                format!("{:.4}", r.baseline),
                format!("{:.4}", r.candidate),
                format!("{:+.2}%", r.delta_pct),
            ]);
        }
        table
    }
}

/// Parses a report document and flattens it into cells keyed by
/// (experiment, benchmark, algorithm).
///
/// # Errors
///
/// Returns a message when the text is not valid JSON, does not carry an
/// `alecto-bench-v*` schema tag, or a cell lacks the gated metrics.
pub fn load_cells(text: &str) -> Result<BTreeMap<CellKey, CellMetrics>, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "report has no \"schema\" string".to_string())?;
    if !schema.starts_with(JSON_SCHEMA_PREFIX) {
        return Err(format!("unsupported schema {schema:?} (expected {JSON_SCHEMA_PREFIX}*)"));
    }
    let experiments = doc
        .get("experiments")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "report has no \"experiments\" array".to_string())?;
    let mut cells = BTreeMap::new();
    for experiment in experiments {
        let id = experiment
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "experiment has no \"id\"".to_string())?;
        let Some(cell_values) = experiment.get("cells").and_then(JsonValue::as_array) else {
            continue; // static tables carry no cells
        };
        for cell in cell_values {
            let field = |name: &str| -> Result<&str, String> {
                cell.get(name)
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{id}: cell has no \"{name}\" string"))
            };
            // The emitter writes non-finite numbers as `null`; such cells
            // carry no gateable signal, so they parse as NaN and are skipped
            // by the non-finite guard below rather than failing the gate.
            let number = |name: &str| -> Result<f64, String> {
                match cell.get(name) {
                    Some(JsonValue::Number(n)) => Ok(*n),
                    Some(JsonValue::Null) => Ok(f64::NAN),
                    _ => Err(format!("{id}: cell has no numeric \"{name}\"")),
                }
            };
            let key =
                (id.to_string(), field("benchmark")?.to_string(), field("algorithm")?.to_string());
            let metrics = CellMetrics { speedup: number("speedup")?, ipc: number("ipc")? };
            if cells.insert(key.clone(), metrics).is_some() {
                return Err(format!("duplicate cell {} × {} × {} in report", key.0, key.1, key.2));
            }
        }
    }
    Ok(cells)
}

/// Compares a candidate report against a baseline: every cell present in
/// both must keep `speedup` and `ipc` within `tolerance_pct` percent below
/// the baseline value (improvements always pass).
///
/// # Errors
///
/// Returns a message when either report fails to parse (see
/// [`load_cells`]) or the tolerance is not a finite non-negative number.
pub fn compare_reports(
    baseline_text: &str,
    candidate_text: &str,
    tolerance_pct: f64,
) -> Result<Comparison, String> {
    if !tolerance_pct.is_finite() || tolerance_pct < 0.0 {
        return Err(format!("tolerance must be a non-negative percentage, got {tolerance_pct}"));
    }
    let baseline = load_cells(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let candidate = load_cells(candidate_text).map_err(|e| format!("candidate: {e}"))?;
    let floor = 1.0 - tolerance_pct / 100.0;
    let mut regressions = Vec::new();
    let mut shared = 0usize;
    for (key, base) in &baseline {
        let Some(cand) = candidate.get(key) else { continue };
        shared += 1;
        for (metric, b, c) in [("speedup", base.speedup, cand.speedup), ("ipc", base.ipc, cand.ipc)]
        {
            // Non-finite or non-positive baselines carry no signal to gate
            // against (they come from degenerate runs that retired nothing).
            if !b.is_finite() || b <= 0.0 {
                continue;
            }
            // A healthy baseline whose candidate value degenerated to
            // null/non-finite lost the metric entirely — that is the worst
            // possible regression, not something to skip.
            if !c.is_finite() {
                regressions.push(Regression {
                    key: key.clone(),
                    metric,
                    baseline: b,
                    candidate: c,
                    delta_pct: -100.0,
                });
                continue;
            }
            if c < b * floor {
                regressions.push(Regression {
                    key: key.clone(),
                    metric,
                    baseline: b,
                    candidate: c,
                    delta_pct: (c / b - 1.0) * 100.0,
                });
            }
        }
    }
    Ok(Comparison {
        shared_cells: shared,
        baseline_only: baseline.len() - shared,
        candidate_only: candidate.len().saturating_sub(shared),
        regressions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cells: &[(&str, &str, &str, f64, f64)]) -> String {
        let body: Vec<String> = cells
            .iter()
            .map(|(id, bench, algo, speedup, ipc)| {
                format!(
                    "{{\"id\":\"{id}\",\"title\":\"t\",\"notes\":[],\
                     \"table\":{{\"headers\":[],\"rows\":[]}},\
                     \"cells\":[{{\"benchmark\":\"{bench}\",\"memory_intensive\":true,\
                     \"algorithm\":\"{algo}\",\"speedup\":{speedup},\"ipc\":{ipc},\
                     \"baseline_ipc\":1.0,\"accuracy\":0.5,\"coverage\":0.5,\
                     \"hierarchy_nj\":1.0,\"prefetcher_nj\":1.0}}]}}"
                )
            })
            .collect();
        format!("{{\"schema\":\"alecto-bench-v2\",\"experiments\":[{}]}}", body.join(","))
    }

    #[test]
    fn identical_reports_pass() {
        let text = doc(&[("fig8", "mcf", "Alecto", 1.2, 0.8)]);
        let cmp = compare_reports(&text, &text, 0.0).unwrap();
        assert!(cmp.passed());
        assert_eq!(cmp.shared_cells, 1);
        assert_eq!(cmp.baseline_only, 0);
        assert_eq!(cmp.candidate_only, 0);
    }

    #[test]
    fn regression_beyond_tolerance_fails_with_diff() {
        let base = doc(&[("fig8", "mcf", "Alecto", 1.2, 0.8), ("fig8", "lbm", "IPCP", 1.1, 0.9)]);
        let cand = doc(&[("fig8", "mcf", "Alecto", 1.0, 0.8), ("fig8", "lbm", "IPCP", 1.1, 0.9)]);
        let cmp = compare_reports(&base, &cand, 5.0).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 1);
        let r = &cmp.regressions[0];
        assert_eq!(r.key, ("fig8".to_string(), "mcf".to_string(), "Alecto".to_string()));
        assert_eq!(r.metric, "speedup");
        assert!(r.delta_pct < -5.0);
        let rendered = cmp.diff_table().render();
        assert!(rendered.contains("mcf"));
        assert!(rendered.contains("speedup"));
    }

    #[test]
    fn regression_within_tolerance_passes() {
        let base = doc(&[("fig8", "mcf", "Alecto", 1.0, 1.0)]);
        let cand = doc(&[("fig8", "mcf", "Alecto", 0.97, 0.96)]);
        assert!(compare_reports(&base, &cand, 5.0).unwrap().passed());
        assert!(!compare_reports(&base, &cand, 1.0).unwrap().passed());
    }

    #[test]
    fn improvements_never_fail() {
        let base = doc(&[("fig8", "mcf", "Alecto", 1.0, 1.0)]);
        let cand = doc(&[("fig8", "mcf", "Alecto", 2.0, 3.0)]);
        assert!(compare_reports(&base, &cand, 0.0).unwrap().passed());
    }

    #[test]
    fn ipc_regressions_are_gated_independently_of_speedup() {
        // Speedup is a ratio: baseline and candidate can both slow down and
        // keep the ratio flat — the absolute IPC field catches that.
        let base = doc(&[("fig8", "mcf", "Alecto", 1.2, 1.0)]);
        let cand = doc(&[("fig8", "mcf", "Alecto", 1.2, 0.5)]);
        let cmp = compare_reports(&base, &cand, 5.0).unwrap();
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].metric, "ipc");
    }

    #[test]
    fn only_shared_cells_are_gated() {
        let base = doc(&[("fig8", "mcf", "Alecto", 1.2, 0.8), ("fig9", "x", "IPCP", 1.5, 1.0)]);
        let cand = doc(&[("fig8", "mcf", "Alecto", 1.2, 0.8), ("stress", "y", "Alecto", 0.1, 0.1)]);
        let cmp = compare_reports(&base, &cand, 5.0).unwrap();
        assert!(cmp.passed());
        assert_eq!(cmp.shared_cells, 1);
        assert_eq!(cmp.baseline_only, 1);
        assert_eq!(cmp.candidate_only, 1);
    }

    #[test]
    fn v1_documents_are_accepted() {
        let text = doc(&[("fig8", "mcf", "Alecto", 1.2, 0.8)])
            .replace("alecto-bench-v2", "alecto-bench-v1");
        assert!(compare_reports(&text, &text, 5.0).unwrap().passed());
    }

    #[test]
    fn malformed_inputs_are_errors() {
        let good = doc(&[("fig8", "mcf", "Alecto", 1.2, 0.8)]);
        assert!(compare_reports("not json", &good, 5.0).unwrap_err().starts_with("baseline:"));
        assert!(compare_reports(&good, "{}", 5.0).unwrap_err().starts_with("candidate:"));
        let wrong_schema = good.replace("alecto-bench-v2", "other-schema");
        assert!(compare_reports(&wrong_schema, &good, 5.0)
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(compare_reports(&good, &good, f64::NAN).is_err());
        assert!(compare_reports(&good, &good, -1.0).is_err());
        let missing_metric = good.replace("\"speedup\":1.2,", "");
        assert!(compare_reports(&missing_metric, &good, 5.0).unwrap_err().contains("speedup"));
    }

    #[test]
    fn degenerate_baselines_are_skipped() {
        let base = doc(&[("fig8", "mcf", "Alecto", 0.0, -1.0)]);
        let cand = doc(&[("fig8", "mcf", "Alecto", 0.0, 0.0)]);
        assert!(compare_reports(&base, &cand, 0.0).unwrap().passed());
    }

    #[test]
    fn null_metrics_are_skipped_not_fatal() {
        // The emitter writes non-finite numbers as null; one such cell must
        // not take down the whole gate — the other cells stay gated.
        let base = doc(&[("fig8", "mcf", "Alecto", 1.0, 1.0), ("fig8", "lbm", "IPCP", 2.0, 2.0)])
            .replace("\"speedup\":1,", "\"speedup\":null,");
        let cand = doc(&[("fig8", "mcf", "Alecto", 1.0, 1.0), ("fig8", "lbm", "IPCP", 0.5, 2.0)]);
        let cmp = compare_reports(&base, &cand, 5.0).unwrap();
        assert_eq!(cmp.shared_cells, 2, "the null cell still counts as shared");
        assert_eq!(cmp.regressions.len(), 1, "the finite cell is still gated");
        assert_eq!(cmp.regressions[0].key.1, "lbm");
        // A null on the candidate side where the baseline was healthy is a
        // full regression (the metric vanished), not a skip.
        let null_cand = cand.replace("\"ipc\":1,", "\"ipc\":null,");
        let cmp = compare_reports(&cand, &null_cand, 5.0).unwrap();
        assert!(cmp.regressions.iter().any(|r| {
            r.key.1 == "mcf" && r.metric == "ipc" && r.candidate.is_nan() && r.delta_pct == -100.0
        }));
    }
}
