//! Activity-based energy model (§VI-I).
//!
//! The paper uses CACTI at 22 nm for the memory hierarchy and prefetcher
//! training occurrences as the proxy for prefetcher dynamic energy. CACTI is
//! not available offline, so this model charges each structure a per-access
//! energy proportional to CACTI-like constants (larger arrays cost more per
//! read) and reports *relative* energy, which is how the paper states its
//! results (48% less prefetcher-table energy, 7% less hierarchy energy).

use cpu::SystemReport;

/// Per-access energies in picojoules (22 nm-class SRAM/DRAM ballpark values;
/// only the ratios matter for the reproduction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// L1 data cache access.
    pub l1_access_pj: f64,
    /// L2 access.
    pub l2_access_pj: f64,
    /// L3 access.
    pub l3_access_pj: f64,
    /// DRAM line transfer.
    pub dram_access_pj: f64,
    /// One prefetcher-table training/lookup (small SRAM).
    pub prefetcher_table_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            l1_access_pj: 10.0,
            l2_access_pj: 28.0,
            l3_access_pj: 75.0,
            dram_access_pj: 2_000.0,
            prefetcher_table_pj: 3.0,
        }
    }
}

/// Energy breakdown of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyEnergy {
    /// Energy spent in the cache hierarchy and DRAM (nanojoules).
    pub hierarchy_nj: f64,
    /// Energy spent accessing prefetcher metadata tables (nanojoules).
    pub prefetcher_nj: f64,
}

impl HierarchyEnergy {
    /// Total energy in nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.hierarchy_nj + self.prefetcher_nj
    }
}

impl EnergyModel {
    /// Evaluates the model over a system report.
    #[must_use]
    pub fn evaluate(&self, report: &SystemReport) -> HierarchyEnergy {
        let mut l1 = 0u64;
        let mut l2 = 0u64;
        let mut trainings = 0u64;
        for core in &report.cores {
            l1 += core.l1.demand_accesses() + core.l1.prefetch_fills + core.l1.prefetch_hits;
            l2 += core.l2.demand_accesses() + core.l2.prefetch_fills + core.l2.prefetch_hits;
            trainings += core.training_occurrences;
        }
        let l3 = report.l3.demand_accesses() + report.l3.prefetch_fills;
        let dram = report.dram.accesses;
        let hierarchy_pj = l1 as f64 * self.l1_access_pj
            + l2 as f64 * self.l2_access_pj
            + l3 as f64 * self.l3_access_pj
            + dram as f64 * self.dram_access_pj;
        let prefetcher_pj = trainings as f64 * self.prefetcher_table_pj;
        HierarchyEnergy {
            hierarchy_nj: hierarchy_pj / 1000.0,
            prefetcher_nj: prefetcher_pj / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu::{run_single_core, CompositeKind, SelectionAlgorithm, SystemConfig};

    #[test]
    fn energy_scales_with_activity() {
        let w = traces::spec06::workload("lbm", 3_000);
        let small = run_single_core(
            SystemConfig::skylake_like(1),
            SelectionAlgorithm::Ipcp,
            CompositeKind::GsCsPmp,
            &traces::spec06::workload("lbm", 1_000),
        );
        let big = run_single_core(
            SystemConfig::skylake_like(1),
            SelectionAlgorithm::Ipcp,
            CompositeKind::GsCsPmp,
            &w,
        );
        let m = EnergyModel::default();
        let e_small = m.evaluate(&small);
        let e_big = m.evaluate(&big);
        assert!(e_big.hierarchy_nj > e_small.hierarchy_nj);
        assert!(e_big.prefetcher_nj > e_small.prefetcher_nj);
        assert!(e_big.total_nj() > e_big.hierarchy_nj);
    }

    #[test]
    fn dram_dominates_hierarchy_energy_for_miss_heavy_runs() {
        let w = traces::spec06::workload("mcf", 2_000);
        let r = run_single_core(
            SystemConfig::skylake_like(1),
            SelectionAlgorithm::NoPrefetching,
            CompositeKind::GsCsPmp,
            &w,
        );
        let m = EnergyModel::default();
        let e = m.evaluate(&r);
        let dram_only = r.dram.accesses as f64 * m.dram_access_pj / 1000.0;
        assert!(dram_only > 0.5 * e.hierarchy_nj);
    }
}
