//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section on top of the simulator substrate.
//!
//! The crate exposes one function per experiment (`figures::fig8`,
//! `figures::fig13`, `figures::table3`, ...), all returning an
//! [`report::Experiment`] — a titled text table plus the raw numbers — so the
//! same code backs the `alecto-harness` CLI, the integration tests and the
//! Criterion benches.
//!
//! # Example
//!
//! ```no_run
//! // Full-size experiments take minutes in debug builds; see the `quick`
//! // preset used by the integration tests for a smaller configuration.
//! let exp = harness::figures::fig8(&harness::RunScale::default());
//! println!("{}", exp.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod energy;
pub mod figures;
pub mod report;
pub mod runner;

pub use compare::{compare_reports, Comparison, DEFAULT_TOLERANCE_PCT};
pub use energy::{EnergyModel, HierarchyEnergy};
pub use report::{
    experiments_to_json, Experiment, GridCell, Table, JSON_SCHEMA, JSON_SCHEMA_PREFIX,
};
pub use runner::{effective_jobs, worker_count, RunScale, SpeedupGrid};
