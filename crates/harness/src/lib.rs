//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section on top of the simulator substrate.
//!
//! The crate exposes one function per experiment (`figures::fig8`,
//! `figures::fig13`, `figures::table3`, ...), all returning an
//! [`report::Experiment`] — a titled text table plus the raw numbers — so the
//! same code backs the `alecto-harness` CLI, the integration tests and the
//! Criterion benches.
//!
//! # Module map
//!
//! * [`figures`] — the experiment definitions themselves, plus
//!   [`figures::builder`] mapping CLI/server experiment ids to builders.
//! * [`runner`] — the parallel cell engine: [`CellJob`] (one benchmark ×
//!   algorithm simulation with a content-addressed [`CellJob::cache_key`]),
//!   the work-stealing fan-out, the scoped [`CellExecutor`] hook
//!   ([`with_cell_executor`]) and the [`RunScale`] the CLI and server share.
//! * [`report`] — text-table rendering, the alecto-bench-v2 JSON emitter
//!   ([`experiments_to_json`]) and the strict serde-free parser
//!   (`report::json`).
//! * [`compare`] — the perf-regression gate over two JSON reports.
//! * [`cellcache`] — the two-tier (LRU memory + checksummed disk)
//!   content-addressed memoization of cell results.
//! * [`server`] — `alecto-harness serve`: the sweep HTTP API over a
//!   persistent worker pool with the cell cache scoped in; the wire
//!   protocol is specified in `docs/PROTOCOL.md`.
//! * [`energy`] — the per-access energy model behind the `hierarchy_nj`
//!   report fields.
//!
//! Everything rests on the determinism contract (`docs/ARCHITECTURE.md`):
//! equal cell inputs produce byte-identical reports at any worker count,
//! which is what makes `--jobs` a pure wall-clock knob, recorded-trace
//! replays `cmp`-clean, and cached cells indistinguishable from fresh
//! simulations.
//!
//! # Example
//!
//! ```no_run
//! // Full-size experiments take minutes in debug builds; see the `quick`
//! // preset used by the integration tests for a smaller configuration.
//! let exp = harness::figures::fig8(&harness::RunScale::default());
//! println!("{}", exp.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellcache;
pub mod compare;
pub mod energy;
pub mod figures;
pub mod report;
pub mod runner;
pub mod server;

pub use cellcache::{CacheCounters, CellCache};
pub use compare::{compare_reports, Comparison, DEFAULT_TOLERANCE_PCT};
pub use cpu::DriveOptions;
pub use energy::{EnergyModel, HierarchyEnergy};
pub use report::{
    experiments_to_json, Experiment, GridCell, Table, JSON_SCHEMA, JSON_SCHEMA_PREFIX,
};
pub use runner::{
    current_drive_options, effective_jobs, run_cell, with_cell_executor, with_drive_options,
    worker_count, CellExecutor, CellJob, RunScale, SpeedupGrid,
};
pub use server::{Server, ServerConfig};
