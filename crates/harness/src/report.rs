//! Plain-text experiment reports: a titled table of rows, rendered with
//! aligned columns so the harness output reads like the paper's tables.

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match header width");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Looks up a cell by row label (first column) and column header.
    #[must_use]
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows.iter().find(|r| r[0] == row_label).map(|r| r[col].as_str())
    }
}

/// One regenerated experiment: an id (e.g. `"fig8"`), a descriptive title,
/// the result table, and free-form notes comparing against the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Short identifier matching the paper's numbering (`"fig8"`, `"table3"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The result table.
    pub table: Table,
    /// Notes (e.g. the paper's headline number for the same quantity).
    pub notes: Vec<String>,
}

impl Experiment {
    /// Creates an experiment report.
    #[must_use]
    pub fn new(id: &str, title: &str, table: Table) -> Self {
        Self { id: id.to_string(), title: title.to_string(), table, notes: Vec::new() }
    }

    /// Adds a note line.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the experiment: title, table, then notes.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n{}", self.id, self.title, self.table.render());
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["bench", "IPCP", "Alecto"]);
        t.push_row(vec!["mcf", "1.10", "1.20"]);
        t.push_row(vec!["libquantum", "1.50", "1.55"]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.contains("libquantum"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new(vec!["bench", "Alecto"]);
        t.push_row(vec!["mcf", "1.23"]);
        assert_eq!(t.cell("mcf", "Alecto"), Some("1.23"));
        assert_eq!(t.cell("mcf", "missing"), None);
        assert_eq!(t.cell("lbm", "Alecto"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn experiment_render_includes_notes() {
        let mut t = Table::new(vec!["metric", "value"]);
        t.push_row(vec!["geomean", "1.05"]);
        let e = Experiment::new("fig8", "Single-core speedup", t)
            .with_note("paper: Alecto > Bandit6 by 3.2%");
        let s = e.render();
        assert!(s.contains("fig8"));
        assert!(s.contains("note: paper"));
    }
}
