//! Experiment reports: a titled table of rows rendered with aligned columns
//! so the harness output reads like the paper's tables, plus a hand-rolled
//! machine-readable JSON form (`--json`) that CI archives as `BENCH_*.json`
//! to track performance trajectories across PRs.
//!
//! The JSON support is deliberately serde-free (crates.io is unreachable in
//! this environment): [`json`] contains a minimal writer and a strict
//! recursive-descent parser, the latter doubling as the golden-test checker.

use crate::energy::EnergyModel;
use crate::runner::SpeedupGrid;

/// Version tag embedded in every JSON report so downstream tooling can
/// detect schema changes.
///
/// `v2` extends every grid cell of `v1` with the cycle-level timing fields
/// (`instructions`, `cycles`, `avg_mem_latency`); the `compare` subcommand
/// accepts both versions since the gated metrics (speedup, IPC) exist in
/// each.
pub const JSON_SCHEMA: &str = "alecto-bench-v2";

/// Prefix every supported schema version starts with (see
/// [`crate::compare`]).
pub const JSON_SCHEMA_PREFIX: &str = "alecto-bench-v";

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match header width");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Looks up a cell by row label (first column) and column header.
    #[must_use]
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows.iter().find(|r| r[0] == row_label).map(|r| r[col].as_str())
    }

    fn to_json(&self) -> String {
        let headers: Vec<String> = self.headers.iter().map(|h| json::string(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| json::array(r.iter().map(|c| json::string(c)).collect()))
            .collect();
        format!("{{\"headers\":{},\"rows\":{}}}", json::array(headers), json::array(rows))
    }
}

/// One benchmark × algorithm cell of a speedup grid, flattened for the JSON
/// report: the speedup plus the quality (accuracy/coverage, Fig. 10) and
/// energy (Fig. 18) metrics CI tracks over time.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Benchmark (or mix) name.
    pub benchmark: String,
    /// Whether the benchmark is in the memory-intensive subset.
    pub memory_intensive: bool,
    /// Algorithm label.
    pub algorithm: String,
    /// Speedup over the no-prefetching baseline.
    pub speedup: f64,
    /// Geomean IPC of the run.
    pub ipc: f64,
    /// Geomean IPC of the no-prefetching baseline — the exact denominator
    /// of `speedup` (`1e-9` for a degenerate baseline that retired
    /// nothing), so `ipc / baseline_ipc` always reproduces `speedup`.
    pub baseline_ipc: f64,
    /// Prefetch accuracy over the run.
    pub accuracy: f64,
    /// Prefetch coverage over the run.
    pub coverage: f64,
    /// Cache-hierarchy + DRAM energy (nJ, default energy model).
    pub hierarchy_nj: f64,
    /// Prefetcher-table energy (nJ, default energy model).
    pub prefetcher_nj: f64,
    /// Total instructions retired across all cores (`v2`).
    pub instructions: u64,
    /// Total simulated cycles — the slowest core's retirement time (`v2`).
    pub cycles: u64,
    /// Average load-to-use latency per demand access, in cycles (`v2`).
    pub avg_mem_latency: f64,
    /// Branch mispredicts per kilo-instruction, instruction-weighted across
    /// cores (`v2`; `None`/JSON `null` under the analytic Approx core model,
    /// which simulates no branches).
    pub branch_mpki: Option<f64>,
    /// Mean ROB occupancy in instructions, instruction-weighted across cores
    /// (`v2`; `None`/JSON `null` under the Approx core model).
    pub rob_occupancy: Option<f64>,
}

/// An optional metric as JSON: the number, or `null` when absent.
fn nullable_number(value: Option<f64>) -> String {
    value.map_or_else(|| "null".to_string(), json::number)
}

impl GridCell {
    fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":{},\"memory_intensive\":{},\"algorithm\":{},\"speedup\":{},\
             \"ipc\":{},\"baseline_ipc\":{},\"accuracy\":{},\"coverage\":{},\
             \"hierarchy_nj\":{},\"prefetcher_nj\":{},\
             \"instructions\":{},\"cycles\":{},\"avg_mem_latency\":{},\
             \"branch_mpki\":{},\"rob_occupancy\":{}}}",
            json::string(&self.benchmark),
            self.memory_intensive,
            json::string(&self.algorithm),
            json::number(self.speedup),
            json::number(self.ipc),
            json::number(self.baseline_ipc),
            json::number(self.accuracy),
            json::number(self.coverage),
            json::number(self.hierarchy_nj),
            json::number(self.prefetcher_nj),
            self.instructions,
            self.cycles,
            json::number(self.avg_mem_latency),
            nullable_number(self.branch_mpki),
            nullable_number(self.rob_occupancy),
        )
    }
}

/// Flattens a [`SpeedupGrid`] into one [`GridCell`] per benchmark ×
/// algorithm pair, evaluating the default [`EnergyModel`] on each report.
#[must_use]
pub fn grid_cells(grid: &SpeedupGrid) -> Vec<GridCell> {
    let model = EnergyModel::default();
    let mut cells = Vec::new();
    for bench in &grid.benchmarks {
        // Same fallback as the runner's speedup denominator, so the cell
        // stays internally consistent (ipc / baseline_ipc == speedup).
        let baseline_ipc = bench.baseline.geomean_ipc().unwrap_or(1e-9);
        for algo in &bench.algorithms {
            let quality = algo.report.total_quality();
            let energy = model.evaluate(&algo.report);
            cells.push(GridCell {
                benchmark: bench.benchmark.clone(),
                memory_intensive: bench.memory_intensive,
                algorithm: algo.algorithm.clone(),
                speedup: algo.speedup,
                ipc: algo.report.geomean_ipc().unwrap_or(0.0),
                baseline_ipc,
                accuracy: quality.accuracy(),
                coverage: quality.coverage(),
                hierarchy_nj: energy.hierarchy_nj,
                prefetcher_nj: energy.prefetcher_nj,
                instructions: algo.report.total_instructions(),
                cycles: algo.report.total_cycles(),
                avg_mem_latency: algo.report.avg_mem_latency(),
                branch_mpki: algo.report.avg_branch_mpki(),
                rob_occupancy: algo.report.avg_rob_occupancy(),
            });
        }
    }
    cells
}

/// One regenerated experiment: an id (e.g. `"fig8"`), a descriptive title,
/// the result table, free-form notes comparing against the paper, and (for
/// grid-backed experiments) the raw benchmark × algorithm cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Short identifier matching the paper's numbering (`"fig8"`, `"table3"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The result table.
    pub table: Table,
    /// Notes (e.g. the paper's headline number for the same quantity).
    pub notes: Vec<String>,
    /// Raw grid cells, when the experiment is backed by a speedup grid
    /// (empty for static tables like Table I).
    pub cells: Vec<GridCell>,
}

impl Experiment {
    /// Creates an experiment report.
    #[must_use]
    pub fn new(id: &str, title: &str, table: Table) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            table,
            notes: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Adds a note line.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches the raw cells of `grid` so the JSON report carries full
    /// per-cell metrics, not just the rendered table strings.
    #[must_use]
    pub fn with_grid(mut self, grid: &SpeedupGrid) -> Self {
        self.cells.extend(grid_cells(grid));
        self
    }

    /// Renders the experiment: title, table, then notes.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n{}", self.id, self.title, self.table.render());
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"title\":{},\"notes\":{},\"table\":{},\"cells\":{}}}",
            json::string(&self.id),
            json::string(&self.title),
            json::array(self.notes.iter().map(|n| json::string(n)).collect()),
            self.table.to_json(),
            json::array(self.cells.iter().map(GridCell::to_json).collect()),
        )
    }
}

/// Serialises a full harness run — every experiment, in run order — into the
/// `alecto-bench-v2` JSON document written by `alecto-harness --json`.
#[must_use]
pub fn experiments_to_json(experiments: &[Experiment]) -> String {
    format!(
        "{{\"schema\":{},\"experiments\":{}}}\n",
        json::string(JSON_SCHEMA),
        json::array(experiments.iter().map(Experiment::to_json).collect()),
    )
}

pub mod json {
    //! A minimal, dependency-free JSON writer and strict parser.
    //!
    //! The writer covers exactly what the report emitter needs (strings,
    //! numbers, booleans, arrays, objects); the parser accepts any RFC
    //! 8259 document and is used by the golden snapshot tests to verify
    //! that emitted reports are well-formed and carry the expected cells.

    /// A parsed JSON value. Object member order is preserved.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as `f64`).
        Number(f64),
        /// A string (unescaped).
        String(String),
        /// An array.
        Array(Vec<JsonValue>),
        /// An object, as ordered key/value pairs.
        Object(Vec<(String, JsonValue)>),
    }

    impl JsonValue {
        /// Looks up `key` in an object; `None` for non-objects.
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&JsonValue> {
            match self {
                JsonValue::Object(members) => {
                    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }

        /// The elements of an array; `None` for non-arrays.
        #[must_use]
        pub fn as_array(&self) -> Option<&[JsonValue]> {
            match self {
                JsonValue::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The numeric value; `None` for non-numbers.
        #[must_use]
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                JsonValue::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The string value; `None` for non-strings.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::String(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean value; `None` for non-booleans.
        #[must_use]
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                JsonValue::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Serialises `s` as a quoted JSON string with the mandatory escapes.
    #[must_use]
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Serialises a finite `f64`; non-finite values (which JSON cannot
    /// represent) become `null` so consumers see them explicitly instead of
    /// getting a corrupt document.
    #[must_use]
    pub fn number(x: f64) -> String {
        if x.is_finite() {
            format!("{x}")
        } else {
            "null".to_string()
        }
    }

    /// Joins pre-serialised elements into a JSON array.
    #[must_use]
    pub fn array(elements: Vec<String>) -> String {
        format!("[{}]", elements.join(","))
    }

    /// Parses a complete JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&byte) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
            Some(other) => Err(format!("unexpected byte '{}' at {}", *other as char, *pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        literal: &str,
        value: JsonValue,
    ) -> Result<JsonValue, String> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    /// Reads the four hex digits of a `\uXXXX` escape; on entry `*pos` is at
    /// the `u`, on exit at the last hex digit.
    fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
        let hex =
            bytes.get(*pos + 1..*pos + 5).ok_or_else(|| "truncated \\u escape".to_string())?;
        let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape".to_string())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape '{hex}'"))?;
        *pos += 4;
        Ok(code)
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let high = parse_hex4(bytes, pos)?;
                            let code = if (0xd800..0xdc00).contains(&high) {
                                // A high surrogate must be followed by a
                                // \uXXXX low surrogate; combine the pair.
                                if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x1_0000 + ((high - 0xd800) << 10) + (low - 0xdc00)
                            } else if (0xdc00..0xe000).contains(&high) {
                                return Err("lone low surrogate".to_string());
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid scalar U+{code:04X}"))?,
                            );
                        }
                        _ => return Err(format!("invalid escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                // RFC 8259: unescaped control characters are not allowed.
                Some(&b) if b < 0x20 => {
                    return Err(format!("unescaped control character at byte {}", *pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via the chars iterator).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
        expect(bytes, pos, b'{')?;
        let mut members = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            members.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::JsonValue;
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["bench", "IPCP", "Alecto"]);
        t.push_row(vec!["mcf", "1.10", "1.20"]);
        t.push_row(vec!["libquantum", "1.50", "1.55"]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.contains("libquantum"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new(vec!["bench", "Alecto"]);
        t.push_row(vec!["mcf", "1.23"]);
        assert_eq!(t.cell("mcf", "Alecto"), Some("1.23"));
        assert_eq!(t.cell("mcf", "missing"), None);
        assert_eq!(t.cell("lbm", "Alecto"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn experiment_render_includes_notes() {
        let mut t = Table::new(vec!["metric", "value"]);
        t.push_row(vec!["geomean", "1.05"]);
        let e = Experiment::new("fig8", "Single-core speedup", t)
            .with_note("paper: Alecto > Bandit6 by 3.2%");
        let s = e.render();
        assert!(s.contains("fig8"));
        assert!(s.contains("note: paper"));
    }

    #[test]
    fn json_document_round_trips_through_the_parser() {
        let mut t = Table::new(vec!["bench", "Alecto"]);
        t.push_row(vec!["mcf \"quoted\"", "1.23"]);
        let e = Experiment::new("fig8", "Speedup\nover baseline", t).with_note("note with \\");
        let doc = experiments_to_json(&[e]);
        let parsed = json::parse(&doc).expect("emitted JSON must parse");
        assert_eq!(parsed.get("schema").and_then(JsonValue::as_str), Some(JSON_SCHEMA));
        let experiments = parsed.get("experiments").and_then(JsonValue::as_array).unwrap();
        assert_eq!(experiments.len(), 1);
        assert_eq!(experiments[0].get("id").and_then(JsonValue::as_str), Some("fig8"));
        assert_eq!(
            experiments[0].get("title").and_then(JsonValue::as_str),
            Some("Speedup\nover baseline")
        );
        let rows = experiments[0]
            .get("table")
            .and_then(|t| t.get("rows"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(rows[0].as_array().unwrap()[0].as_str(), Some("mcf \"quoted\""));
    }

    #[test]
    fn v2_timing_fields_round_trip_through_emitter_and_parser() {
        let cell = GridCell {
            benchmark: "stream".into(),
            memory_intensive: true,
            algorithm: "Alecto".into(),
            speedup: 1.25,
            ipc: 2.5,
            baseline_ipc: 2.0,
            accuracy: 0.9,
            coverage: 0.8,
            hierarchy_nj: 123.5,
            prefetcher_nj: 4.25,
            instructions: 123_456_789_012,
            cycles: 98_765_432_109,
            avg_mem_latency: 17.375,
            branch_mpki: Some(6.5),
            rob_occupancy: None,
        };
        let mut e = Experiment::new("timing", "Timing sweep", Table::new(vec!["x"]));
        e.cells.push(cell.clone());
        let doc = experiments_to_json(&[e]);
        let parsed = json::parse(&doc).expect("v2 report must parse");
        assert_eq!(parsed.get("schema").and_then(JsonValue::as_str), Some("alecto-bench-v2"));
        let c = parsed.get("experiments").and_then(JsonValue::as_array).unwrap()[0]
            .get("cells")
            .and_then(JsonValue::as_array)
            .unwrap()[0]
            .clone();
        // Every field — v1 and v2 alike — survives the round trip exactly
        // (the chosen values are all exactly representable in f64).
        assert_eq!(c.get("instructions").and_then(JsonValue::as_f64), Some(123_456_789_012.0));
        assert_eq!(c.get("cycles").and_then(JsonValue::as_f64), Some(98_765_432_109.0));
        assert_eq!(c.get("avg_mem_latency").and_then(JsonValue::as_f64), Some(17.375));
        assert_eq!(c.get("speedup").and_then(JsonValue::as_f64), Some(1.25));
        assert_eq!(c.get("ipc").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(c.get("memory_intensive").and_then(JsonValue::as_bool), Some(true));
        // The nullable pipeline metrics: present as a number when reported,
        // an explicit JSON null otherwise.
        assert_eq!(c.get("branch_mpki").and_then(JsonValue::as_f64), Some(6.5));
        assert_eq!(c.get("rob_occupancy"), Some(&JsonValue::Null));
    }

    #[test]
    fn json_number_maps_non_finite_to_null() {
        assert_eq!(json::number(1.5), "1.5");
        assert_eq!(json::number(f64::NAN), "null");
        assert_eq!(json::number(f64::INFINITY), "null");
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let v = json::parse(r#" {"a": [1, -2.5e3, true, false, null, "xA"], "b": {}} "#).unwrap();
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2].as_bool(), Some(true));
        assert_eq!(a[5].as_str(), Some("xA"));
        assert_eq!(v.get("b"), Some(&JsonValue::Object(vec![])));
    }

    #[test]
    fn parser_decodes_surrogate_pairs_and_rejects_control_chars() {
        // A valid surrogate-pair escape decodes to one scalar.
        let v = json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
        // Lone or malformed surrogates are rejected, as are raw control
        // characters (the writer always escapes them).
        assert!(json::parse("\"\\ud83d\"").is_err());
        assert!(json::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(json::parse("\"\\udc00\"").is_err());
        assert!(json::parse("\"a\nb\"").is_err());
        assert!(json::parse(&json::string("a\nb")).unwrap().as_str() == Some("a\nb"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn grid_cells_flatten_every_pair() {
        use cpu::{CompositeKind, SelectionAlgorithm, SystemConfig};
        let grid = crate::runner::run_single_core_suite(
            &[traces::spec06::source("lbm", 400)],
            &[SelectionAlgorithm::Ipcp, SelectionAlgorithm::Alecto],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
            1,
        );
        let cells = grid_cells(&grid);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.benchmark == "lbm" && c.speedup.is_finite()));
        assert!(cells.iter().any(|c| c.algorithm == "Alecto"));
        // The v2 timing fields are populated from the run, not defaulted.
        assert!(cells.iter().all(|c| c.instructions > 0 && c.cycles > 0));
        assert!(cells.iter().all(|c| c.avg_mem_latency > 0.0));
        let e = Experiment::new("x", "y", Table::new(vec!["a"])).with_grid(&grid);
        assert_eq!(e.cells.len(), 2);
        let doc = experiments_to_json(&[e]);
        let parsed = json::parse(&doc).unwrap();
        let cells_json = parsed.get("experiments").and_then(JsonValue::as_array).unwrap()[0]
            .get("cells")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(cells_json.len(), 2);
        assert!(cells_json[0].get("speedup").and_then(JsonValue::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn emitted_ipc_agrees_with_emitted_cycle_counts() {
        // Regression for an off-by-one in the core report: `cycles` was
        // rounded up while `ipc` divided by the *unrounded* retirement time,
        // so the emitted JSON was internally inconsistent. For a single-core
        // cell the geomean IPC is that core's IPC, so the emitted fields
        // must satisfy ipc == instructions / cycles exactly as reported.
        use cpu::{CompositeKind, SelectionAlgorithm, SystemConfig};
        let grid = crate::runner::run_single_core_suite(
            &[traces::spec06::source("mcf", 600)],
            &[SelectionAlgorithm::Alecto],
            CompositeKind::GsCsPmp,
            &SystemConfig::skylake_like(1),
            1,
        );
        let e = Experiment::new("x", "y", Table::new(vec!["a"])).with_grid(&grid);
        let doc = experiments_to_json(&[e]);
        let parsed = json::parse(&doc).unwrap();
        let cell = parsed.get("experiments").and_then(JsonValue::as_array).unwrap()[0]
            .get("cells")
            .and_then(JsonValue::as_array)
            .unwrap()[0]
            .clone();
        let ipc = cell.get("ipc").and_then(JsonValue::as_f64).unwrap();
        let instructions = cell.get("instructions").and_then(JsonValue::as_f64).unwrap();
        let cycles = cell.get("cycles").and_then(JsonValue::as_f64).unwrap();
        assert!(cycles >= 1.0);
        let derived = instructions / cycles;
        assert!(
            (ipc - derived).abs() < 1e-9,
            "emitted ipc {ipc} disagrees with instructions/cycles {derived}"
        );
    }
}
