//! The sweep server: simulation-as-a-service over a hand-rolled HTTP/1.1
//! stack (`std::net::TcpListener` + thread pools — no dependencies), with
//! every finished simulation cell memoized in a shared [`CellCache`].
//!
//! # Endpoints (see `docs/PROTOCOL.md` for the full wire specification)
//!
//! | Method + path          | Purpose                                          |
//! |------------------------|--------------------------------------------------|
//! | `POST /v1/sweep`       | Submit an experiment (or `replay`) sweep; `202`  |
//! | `GET /v1/jobs/<id>`    | Incremental per-cell status of a submitted sweep |
//! | `GET /v1/results/<id>` | The finished `alecto-bench-v2` report            |
//! | `GET /v1/health`       | Liveness probe                                   |
//! | `GET /v1/stats`        | Uptime, cache counters, worker occupancy         |
//!
//! # Execution model
//!
//! Accepted connections are handled by a small pool of connection threads;
//! `POST /v1/sweep` only validates and enqueues, so submission latency is
//! independent of simulation time. A separate persistent pool of sweep
//! workers pulls queued jobs and runs them through the same
//! `figures::builder` / [`RunScale::resolve`] pipeline as the CLI, with a
//! memoizing [`CellExecutor`] scoped in: each benchmark × algorithm cell is
//! served from the [`CellCache`] when its content-addressed key is present
//! and simulated (then remembered) otherwise. Inside one sweep the cells
//! still fan out across the experiment engine's work-stealing workers, so a
//! cold sweep is exactly as parallel as a CLI run.
//!
//! Because cell keys digest *everything* that can influence a result and
//! grids are byte-identical at any worker count, a fully cached sweep's
//! `/v1/results` body is byte-identical to the cold run's — and to
//! `alecto-harness <experiment> --json` for the same parameters.

#![deny(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use alecto_types::TraceSource;

use crate::cellcache::CellCache;
use crate::figures;
use crate::report::json::{self, JsonValue};
use crate::report::{experiments_to_json, Experiment};
use crate::runner::{run_cell, with_cell_executor, CellExecutor, CellJob, RunScale};

/// Upper bound on a request body; sweep submissions are a few hundred bytes,
/// so anything near this is abuse or a protocol error.
const MAX_BODY_BYTES: usize = 1 << 20;

/// Tuning knobs of a [`Server`]; `Default` is sized for a small shared
/// instance (two concurrent sweeps, four connection handlers, the default
/// cache capacity, no persistence).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Persistent sweep-worker threads: how many submitted sweeps execute
    /// concurrently (further submissions queue).
    pub sweep_workers: usize,
    /// Connection-handler threads servicing the HTTP side.
    pub handler_threads: usize,
    /// Default per-sweep cell-engine worker count (`0` = one per hardware
    /// thread), overridable per request via the `jobs` field.
    pub default_jobs: usize,
    /// Memory-tier capacity of the shared cell cache, in entries.
    pub cache_capacity: usize,
    /// Optional directory persisting cache entries across restarts.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            sweep_workers: 2,
            handler_threads: 4,
            default_jobs: 0,
            cache_capacity: CellCache::DEFAULT_CAPACITY,
            cache_dir: None,
        }
    }
}

/// What a sweep job runs: a registered experiment builder, or a replay over
/// resolved trace sources.
enum SweepKind {
    /// One of the `figures::EXPERIMENT_IDS` builders.
    Experiment(fn(&RunScale) -> Vec<Experiment>),
    /// `figures::replay` over the request's resolved trace specs.
    Replay(Vec<TraceSource>),
}

/// Lifecycle of a submitted sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed(String),
}

impl JobStatus {
    fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// One completed cell of a running sweep, for the incremental
/// `GET /v1/jobs/<id>` view.
struct CellDone {
    key: u64,
    algorithm: String,
    benchmark: String,
    ipc: f64,
    cached: bool,
}

/// All mutable state of one submitted sweep.
struct JobState {
    id: u64,
    experiment: String,
    scale: RunScale,
    kind: Mutex<Option<SweepKind>>,
    status: Mutex<JobStatus>,
    cells: Mutex<Vec<CellDone>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    result: Mutex<Option<String>>,
}

/// State shared between connection handlers and sweep workers.
struct ServerState {
    cache: Arc<CellCache>,
    jobs: Mutex<HashMap<u64, Arc<JobState>>>,
    queue: Mutex<VecDeque<Arc<JobState>>>,
    queue_signal: Condvar,
    next_job_id: AtomicU64,
    started: Instant,
    requests: AtomicU64,
    busy_workers: AtomicUsize,
    config: ServerConfig,
}

/// A bound sweep server; [`Server::run`] starts serving. See the
/// [module docs](self) for the execution model.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr`, creates the shared cell cache (opening `cache_dir` when
    /// configured) and spawns the persistent sweep-worker pool. No traffic
    /// is served until [`Server::run`].
    ///
    /// # Errors
    ///
    /// Returns socket-bind or cache-directory errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let cache = match &config.cache_dir {
            Some(dir) => CellCache::with_dir(config.cache_capacity.max(1), dir)?,
            None => CellCache::new(config.cache_capacity.max(1)),
        };
        let state = Arc::new(ServerState {
            cache: Arc::new(cache),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            next_job_id: AtomicU64::new(1),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            busy_workers: AtomicUsize::new(0),
            config,
        });
        for worker in 0..state.config.sweep_workers.max(1) {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name(format!("sweep-worker-{worker}"))
                .spawn(move || sweep_worker(&state))
                .expect("spawn sweep worker");
        }
        Ok(Self { listener, state })
    }

    /// The bound address — useful with port 0 (tests bind `127.0.0.1:0` and
    /// read the assigned port here).
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever: accepts connections and dispatches them to the
    /// handler pool. Only returns if the listener itself fails.
    ///
    /// # Errors
    ///
    /// Returns the listener's accept error.
    pub fn run(self) -> io::Result<()> {
        let pending: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)> =
            Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
        for handler in 0..self.state.config.handler_threads.max(1) {
            let pending = Arc::clone(&pending);
            let state = Arc::clone(&self.state);
            thread::Builder::new()
                .name(format!("http-handler-{handler}"))
                .spawn(move || loop {
                    let stream = {
                        let (lock, signal) = &*pending;
                        let mut queue = lock.lock().expect("connection queue lock");
                        loop {
                            if let Some(stream) = queue.pop_front() {
                                break stream;
                            }
                            queue = signal.wait(queue).expect("connection queue lock");
                        }
                    };
                    handle_connection(stream, &state);
                })
                .expect("spawn connection handler");
        }
        loop {
            let (stream, _) = self.listener.accept()?;
            let (lock, signal) = &*pending;
            lock.lock().expect("connection queue lock").push_back(stream);
            signal.notify_one();
        }
    }
}

/// The memoizing executor one sweep job scopes in: serves cells from the
/// shared cache, simulates misses, and records per-cell progress on the job.
struct JobExecutor {
    cache: Arc<CellCache>,
    job: Arc<JobState>,
}

impl CellExecutor for JobExecutor {
    fn execute(&self, cell: &CellJob<'_>) -> cpu::SystemReport {
        let key = cell.cache_key();
        let (report, cached) = match self.cache.lookup(key) {
            Some(report) => (report, true),
            None => {
                let report = run_cell(cell);
                self.cache.insert(key, report.clone());
                (report, false)
            }
        };
        if cached {
            self.job.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.job.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        let benchmark: Vec<&str> = cell.sources.iter().map(TraceSource::name).collect();
        self.job.cells.lock().expect("job cells lock").push(CellDone {
            key,
            algorithm: cell.algorithm.label().to_string(),
            benchmark: benchmark.join("+"),
            ipc: report.geomean_ipc().unwrap_or(0.0),
            cached,
        });
        report
    }
}

/// A sweep worker's main loop: pull a queued job, run it to completion (or
/// failure), repeat. Panics inside a sweep (e.g. a trace file deleted
/// between validation and replay) fail that job only, never the server.
fn sweep_worker(state: &Arc<ServerState>) {
    loop {
        let job = {
            let mut queue = state.queue.lock().expect("job queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = state.queue_signal.wait(queue).expect("job queue lock");
            }
        };
        state.busy_workers.fetch_add(1, Ordering::Relaxed);
        *job.status.lock().expect("job status lock") = JobStatus::Running;
        let kind = job.kind.lock().expect("job kind lock").take();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let executor =
                Arc::new(JobExecutor { cache: Arc::clone(&state.cache), job: Arc::clone(&job) });
            let experiments = with_cell_executor(executor, || match &kind {
                Some(SweepKind::Experiment(build)) => build(&job.scale),
                Some(SweepKind::Replay(sources)) => {
                    vec![figures::replay(sources, &job.scale)]
                }
                None => unreachable!("job dequeued twice"),
            });
            experiments_to_json(&experiments)
        }));
        match outcome {
            Ok(body) => {
                *job.result.lock().expect("job result lock") = Some(body);
                *job.status.lock().expect("job status lock") = JobStatus::Done;
            }
            Err(panic) => {
                let message = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("sweep panicked")
                    .to_string();
                *job.status.lock().expect("job status lock") = JobStatus::Failed(message);
            }
        }
        state.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

// --- HTTP plumbing ---------------------------------------------------------

/// A fully assembled response; `body` is always JSON here.
struct Response {
    status: u16,
    body: String,
}

impl Response {
    fn ok(body: String) -> Self {
        Self { status: 200, body }
    }

    /// The standard error envelope: `{"error":{"code":...,"message":...}}`.
    fn error(status: u16, code: &str, message: &str) -> Self {
        Self {
            status,
            body: format!(
                "{{\"error\":{{\"code\":{},\"message\":{}}}}}\n",
                json::string(code),
                json::string(message)
            ),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Reads one request, routes it, writes the response, closes the socket
/// (`Connection: close` — submissions are rare and cheap, keep-alive would
/// only complicate the protocol).
fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok((method, target, body)) => {
            state.requests.fetch_add(1, Ordering::Relaxed);
            route(state, &method, &target, &body)
        }
        Err(message) => Response::error(400, "malformed_request", &message),
    };
    let mut stream = reader.into_inner();
    let _ = write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        reason(response.status),
        response.body.len(),
        response.body
    );
    let _ = stream.flush();
}

/// Parses the request line, the headers we care about (`Content-Length`),
/// and the body. Everything else is skipped — the protocol needs nothing
/// more.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<(String, String, String), String> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line without target")?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| format!("reading headers: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {:?}", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES} cap"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| format!("reading body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok((method, target, body))
}

fn route(state: &Arc<ServerState>, method: &str, target: &str, body: &str) -> Response {
    match (method, target) {
        ("GET", "/v1/health") => Response::ok(format!(
            "{{\"status\":\"ok\",\"uptime_seconds\":{}}}\n",
            state.started.elapsed().as_secs()
        )),
        ("GET", "/v1/stats") => stats_response(state),
        ("POST", "/v1/sweep") => submit_sweep(state, body),
        ("GET", t) if t.strip_prefix("/v1/jobs/").is_some() => {
            job_response(state, t.strip_prefix("/v1/jobs/").expect("prefix checked"))
        }
        ("GET", t) if t.strip_prefix("/v1/results/").is_some() => {
            result_response(state, t.strip_prefix("/v1/results/").expect("prefix checked"))
        }
        (_, "/v1/health" | "/v1/stats" | "/v1/sweep") => {
            Response::error(405, "method_not_allowed", "see docs/PROTOCOL.md for the verb map")
        }
        (_, t) if t.starts_with("/v1/jobs/") || t.starts_with("/v1/results/") => {
            Response::error(405, "method_not_allowed", "job and result resources are GET-only")
        }
        _ => Response::error(404, "not_found", "unknown resource (the API lives under /v1/)"),
    }
}

fn stats_response(state: &Arc<ServerState>) -> Response {
    let counters = state.cache.counters();
    let (mut queued, mut running, mut done, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for job in state.jobs.lock().expect("job registry lock").values() {
        match &*job.status.lock().expect("job status lock") {
            JobStatus::Queued => queued += 1,
            JobStatus::Running => running += 1,
            JobStatus::Done => done += 1,
            JobStatus::Failed(_) => failed += 1,
        }
    }
    let total_workers = state.config.sweep_workers.max(1);
    Response::ok(format!(
        "{{\"uptime_seconds\":{},\"requests\":{},\
         \"cache\":{{\"memory_hits\":{},\"disk_hits\":{},\"hits\":{},\"misses\":{},\
         \"evictions\":{},\"corrupt_entries\":{},\"resident\":{},\"hit_rate\":{}}},\
         \"workers\":{{\"total\":{},\"busy\":{}}},\
         \"jobs\":{{\"queued\":{queued},\"running\":{running},\"done\":{done},\
         \"failed\":{failed}}}}}\n",
        state.started.elapsed().as_secs(),
        state.requests.load(Ordering::Relaxed),
        counters.memory_hits,
        counters.disk_hits,
        counters.hits(),
        counters.misses,
        counters.evictions,
        counters.corrupt_entries,
        counters.resident,
        json::number(counters.hit_rate()),
        total_workers,
        state.busy_workers.load(Ordering::Relaxed).min(total_workers),
    ))
}

/// Reads an optional positive integer field, distinguishing "absent" from
/// "present but invalid" (the latter is a client error worth a 400, not a
/// silent fallback to defaults).
fn optional_positive(doc: &JsonValue, key: &str) -> Result<Option<usize>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(value) => {
            let n = value.as_f64().ok_or_else(|| format!("{key} must be a number"))?;
            if n < 1.0 || n.fract() != 0.0 || n > u32::MAX.into() {
                return Err(format!("{key} must be a positive integer"));
            }
            Ok(Some(n as usize))
        }
    }
}

/// Resolves one replay trace spec — `file:<path>` or a registered benchmark
/// name — mirroring the CLI's `trace replay` semantics, but returning errors
/// instead of exiting. File-backed traces are fully validated (checksum
/// included) *before* the job is accepted, so corruption is a 400 at submit
/// time, not a failed job minutes later.
fn resolve_replay_spec(spec: &str, accesses: usize) -> Result<TraceSource, String> {
    if let Some(path) = traceio::file_spec_path(spec) {
        let reader = traceio::TraceReader::open(path).map_err(|err| format!("{spec}: {err}"))?;
        reader.stats().map_err(|err| format!("{spec}: {err}"))?;
        return Ok(reader.source(Some(accesses)));
    }
    let suite = traces::Suite::of(spec)
        .ok_or_else(|| format!("unknown benchmark {spec:?} (see `alecto-harness list`)"))?;
    Ok(suite.source(spec, accesses))
}

/// Flattens an inline `"machine"` JSON object into the dotted-path entries
/// the machine compiler consumes (`{"cache":{"l1d":{"ways":4}}}` becomes
/// `cache.l1d.ways = 4`), at line 0 so errors come back without a source
/// line. Only integers, strings and nested objects are meaningful in the
/// machine format; anything else is rejected by name.
fn flatten_machine_object(prefix: &str, value: &JsonValue) -> Result<Vec<machine::Entry>, String> {
    fn walk(
        prefix: &str,
        value: &JsonValue,
        entries: &mut Vec<machine::Entry>,
    ) -> Result<(), String> {
        match value {
            JsonValue::Object(fields) => {
                for (key, field) in fields {
                    let path =
                        if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                    walk(&path, field, entries)?;
                }
                Ok(())
            }
            JsonValue::String(s) => {
                entries.push(machine::Entry {
                    path: prefix.to_string(),
                    value: machine::RawValue::Str(s.clone()),
                    line: 0,
                });
                Ok(())
            }
            JsonValue::Number(n) => {
                if n.fract() != 0.0 || *n < 0.0 || *n > u64::MAX as f64 {
                    return Err(format!("machine key `{prefix}` must be a non-negative integer"));
                }
                entries.push(machine::Entry {
                    path: prefix.to_string(),
                    value: machine::RawValue::Int(*n as u64),
                    line: 0,
                });
                Ok(())
            }
            _ => Err(format!("machine key `{prefix}` must be an integer, a string or an object")),
        }
    }
    let mut entries = Vec::new();
    walk(prefix, value, &mut entries)?;
    Ok(entries)
}

fn submit_sweep(state: &Arc<ServerState>, body: &str) -> Response {
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(err) => return Response::error(400, "invalid_json", &err),
    };
    let Some(experiment) = doc.get("experiment").and_then(JsonValue::as_str) else {
        return Response::error(400, "missing_experiment", "body needs an \"experiment\" string");
    };
    let quick = match doc.get("quick") {
        None => false,
        Some(JsonValue::Bool(b)) => *b,
        Some(_) => return Response::error(400, "invalid_scale", "quick must be a boolean"),
    };
    let (accesses, multicore, jobs) = match (
        optional_positive(&doc, "accesses"),
        optional_positive(&doc, "multicore_accesses"),
        optional_positive(&doc, "jobs"),
    ) {
        (Ok(a), Ok(m), Ok(j)) => (a, m, j),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            return Response::error(400, "invalid_scale", &e)
        }
    };
    let mut scale = RunScale::resolve(
        quick || experiment == "quick",
        accesses,
        multicore,
        jobs.or(Some(state.config.default_jobs)),
    );
    // The machine is applied before "core_model" so an explicit core model
    // overrides the machine's default — the same layering as the CLI's
    // `--machine` / `--core-model` flags.
    match doc.get("machine") {
        None => {}
        Some(JsonValue::String(name)) => match machine::builtin(name) {
            Some(spec) => scale = scale.with_machine(spec),
            None => {
                return Response::error(
                    400,
                    "invalid_machine",
                    &format!(
                        "{name:?} is not a built-in machine (expected one of: {})",
                        machine::BUILTIN_NAMES.join(", ")
                    ),
                )
            }
        },
        Some(object @ JsonValue::Object(_)) => {
            match flatten_machine_object("", object)
                .and_then(|entries| machine::compile_entries(&entries, true))
            {
                Ok(spec) => scale = scale.with_machine(spec),
                Err(err) => return Response::error(400, "invalid_machine", &err),
            }
        }
        Some(_) => {
            return Response::error(
                400,
                "invalid_machine",
                "machine must be a built-in machine name or an inline spec object",
            )
        }
    }
    match doc.get("core_model") {
        None => {}
        Some(JsonValue::String(label)) => match cpu::CoreModelKind::from_label(label) {
            Some(kind) => scale = scale.with_core_model(kind),
            None => {
                return Response::error(
                    400,
                    "invalid_core_model",
                    &format!("{label:?} is not a core model (expected \"approx\" or \"ooo\")"),
                )
            }
        },
        Some(_) => {
            return Response::error(400, "invalid_core_model", "core_model must be a string")
        }
    }

    let trace_specs: Vec<String> = match doc.get("traces") {
        None => Vec::new(),
        Some(JsonValue::Array(items)) => {
            let mut specs = Vec::new();
            for item in items {
                match item.as_str() {
                    Some(s) => specs.push(s.to_string()),
                    None => {
                        return Response::error(400, "invalid_traces", "traces must be strings")
                    }
                }
            }
            specs
        }
        Some(_) => return Response::error(400, "invalid_traces", "traces must be an array"),
    };

    let kind = if experiment == "replay" {
        if trace_specs.is_empty() {
            return Response::error(400, "missing_traces", "replay needs a non-empty traces array");
        }
        let mut sources = Vec::new();
        for spec in &trace_specs {
            match resolve_replay_spec(spec, scale.accesses) {
                Ok(source) => sources.push(source),
                Err(message) => return Response::error(400, "invalid_trace", &message),
            }
        }
        SweepKind::Replay(sources)
    } else {
        if !trace_specs.is_empty() {
            return Response::error(
                400,
                "invalid_traces",
                "traces are only accepted with the \"replay\" experiment",
            );
        }
        match figures::builder(experiment) {
            Some(build) => SweepKind::Experiment(build),
            None => {
                return Response::error(
                    400,
                    "unknown_experiment",
                    &format!("{experiment:?} is not a known experiment id"),
                )
            }
        }
    };

    let id = state.next_job_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(JobState {
        id,
        experiment: experiment.to_string(),
        scale,
        kind: Mutex::new(Some(kind)),
        status: Mutex::new(JobStatus::Queued),
        cells: Mutex::new(Vec::new()),
        cache_hits: AtomicU64::new(0),
        cache_misses: AtomicU64::new(0),
        result: Mutex::new(None),
    });
    state.jobs.lock().expect("job registry lock").insert(id, Arc::clone(&job));
    state.queue.lock().expect("job queue lock").push_back(job);
    state.queue_signal.notify_one();
    Response {
        status: 202,
        body: format!(
            "{{\"id\":\"{id}\",\"status\":\"queued\",\"experiment\":{},\
             \"links\":{{\"job\":\"/v1/jobs/{id}\",\"result\":\"/v1/results/{id}\"}}}}\n",
            json::string(experiment)
        ),
    }
}

fn find_job(state: &Arc<ServerState>, id: &str) -> Option<Arc<JobState>> {
    let id: u64 = id.parse().ok()?;
    state.jobs.lock().expect("job registry lock").get(&id).cloned()
}

fn job_response(state: &Arc<ServerState>, id: &str) -> Response {
    let Some(job) = find_job(state, id) else {
        return Response::error(404, "unknown_job", &format!("no job {id:?}"));
    };
    let status = job.status.lock().expect("job status lock").clone();
    let cells: Vec<String> = job
        .cells
        .lock()
        .expect("job cells lock")
        .iter()
        .map(|c| {
            format!(
                "{{\"key\":\"{:016x}\",\"algorithm\":{},\"benchmark\":{},\"ipc\":{},\
                 \"cached\":{}}}",
                c.key,
                json::string(&c.algorithm),
                json::string(&c.benchmark),
                json::number(c.ipc),
                c.cached
            )
        })
        .collect();
    let error_member = match &status {
        JobStatus::Failed(message) => format!(",\"error\":{}", json::string(message)),
        _ => String::new(),
    };
    // The resolved machine is echoed by name + canonical fingerprint (null
    // when the job runs the anonymous Table-I defaults), so clients can
    // verify which machine actually served their sweep.
    let machine_member = match &job.scale.machine {
        Some(spec) => format!(
            "{{\"name\":{},\"fingerprint\":\"0x{}\"}}",
            json::string(&spec.name),
            spec.fingerprint_hex()
        ),
        None => "null".to_string(),
    };
    Response::ok(format!(
        "{{\"id\":\"{}\",\"experiment\":{},\"status\":\"{}\",\
         \"scale\":{{\"accesses\":{},\"multicore_accesses\":{},\"jobs\":{},\
         \"core_model\":{},\"machine\":{machine_member}}},\
         \"cells\":{{\"completed\":{},\"cache_hits\":{},\"cache_misses\":{}}},\
         \"completed_cells\":{}{error_member},\"result\":\"/v1/results/{}\"}}\n",
        job.id,
        json::string(&job.experiment),
        status.label(),
        job.scale.accesses,
        job.scale.multicore_accesses,
        job.scale.jobs,
        json::string(job.scale.core_model.label()),
        cells.len(),
        job.cache_hits.load(Ordering::Relaxed),
        job.cache_misses.load(Ordering::Relaxed),
        json::array(cells),
        job.id,
    ))
}

fn result_response(state: &Arc<ServerState>, id: &str) -> Response {
    let Some(job) = find_job(state, id) else {
        return Response::error(404, "unknown_job", &format!("no job {id:?}"));
    };
    let status = job.status.lock().expect("job status lock").clone();
    match status {
        JobStatus::Done => {
            let body = job.result.lock().expect("job result lock").clone();
            // The stored string is the exact `experiments_to_json` output —
            // served verbatim so the body is byte-identical to the CLI's
            // `--json` file for the same request.
            Response::ok(body.expect("done jobs store their result"))
        }
        JobStatus::Failed(message) => Response::error(500, "sweep_failed", &message),
        JobStatus::Queued | JobStatus::Running => Response::error(
            409,
            "not_ready",
            &format!("job {} is still {}; poll /v1/jobs/{}", job.id, status.label(), job.id),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let config = ServerConfig::default();
        assert!(config.sweep_workers >= 1);
        assert!(config.handler_threads >= 1);
        assert_eq!(config.cache_capacity, CellCache::DEFAULT_CAPACITY);
        assert!(config.cache_dir.is_none());
    }

    #[test]
    fn status_labels_cover_the_lifecycle() {
        assert_eq!(JobStatus::Queued.label(), "queued");
        assert_eq!(JobStatus::Running.label(), "running");
        assert_eq!(JobStatus::Done.label(), "done");
        assert_eq!(JobStatus::Failed("boom".into()).label(), "failed");
    }

    #[test]
    fn optional_positive_distinguishes_absent_and_invalid() {
        let doc = json::parse(r#"{"accesses":500,"jobs":0,"quick":true}"#).unwrap();
        assert_eq!(optional_positive(&doc, "accesses").unwrap(), Some(500));
        assert_eq!(optional_positive(&doc, "missing").unwrap(), None);
        assert!(optional_positive(&doc, "jobs").is_err(), "zero is invalid");
        assert!(optional_positive(&doc, "quick").is_err(), "booleans are not counts");
    }

    #[test]
    fn error_envelope_shape() {
        let r = Response::error(400, "invalid_json", "bad \"quote\"");
        assert_eq!(r.status, 400);
        let doc = json::parse(&r.body).expect("envelope is valid JSON");
        let error = doc.get("error").expect("error member");
        assert_eq!(error.get("code").and_then(JsonValue::as_str), Some("invalid_json"));
        assert_eq!(error.get("message").and_then(JsonValue::as_str), Some("bad \"quote\""));
    }

    fn idle_state() -> Arc<ServerState> {
        Arc::new(ServerState {
            cache: Arc::new(CellCache::new(4)),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            next_job_id: AtomicU64::new(1),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            busy_workers: AtomicUsize::new(0),
            config: ServerConfig::default(),
        })
    }

    #[test]
    fn submit_validates_the_core_model_knob() {
        // No sweep workers are attached: submissions only queue, which is all
        // the validation path needs.
        let state = idle_state();
        let bad = submit_sweep(&state, r#"{"experiment":"quick","core_model":"fast"}"#);
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("invalid_core_model"), "{}", bad.body);
        let not_a_string = submit_sweep(&state, r#"{"experiment":"quick","core_model":3}"#);
        assert_eq!(not_a_string.status, 400);
        let ok = submit_sweep(&state, r#"{"experiment":"quick","core_model":"ooo"}"#);
        assert_eq!(ok.status, 202, "{}", ok.body);
        let queued = state.queue.lock().unwrap();
        assert_eq!(queued.len(), 1);
        assert_eq!(queued[0].scale.core_model, cpu::CoreModelKind::OutOfOrder);
    }

    #[test]
    fn submit_validates_the_machine_field() {
        let state = idle_state();
        // Unknown built-in name → the invalid_machine envelope.
        let bad = submit_sweep(&state, r#"{"experiment":"quick","machine":"laptop"}"#);
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("invalid_machine"), "{}", bad.body);
        // Wrong type → rejected before anything queues.
        let wrong = submit_sweep(&state, r#"{"experiment":"quick","machine":7}"#);
        assert_eq!(wrong.status, 400);
        assert!(wrong.body.contains("invalid_machine"), "{}", wrong.body);
        // An inline spec object with a bad value reports the machine error
        // (no "line N:" prefix — the body has no source lines).
        let inline_bad = submit_sweep(
            &state,
            r#"{"experiment":"quick","machine":{"format":"alecto-machine-v1","cores":4,"core":{"model":"fast"}}}"#,
        );
        assert_eq!(inline_bad.status, 400);
        assert!(inline_bad.body.contains("invalid_machine"), "{}", inline_bad.body);
        assert!(!inline_bad.body.contains("line "), "{}", inline_bad.body);
        assert!(state.queue.lock().unwrap().is_empty(), "nothing may queue on a 400");

        // A built-in name queues with the machine's core model applied...
        let ok = submit_sweep(&state, r#"{"experiment":"quick","machine":"server"}"#);
        assert_eq!(ok.status, 202, "{}", ok.body);
        // ...unless core_model explicitly overrides it.
        let overridden = submit_sweep(
            &state,
            r#"{"experiment":"quick","machine":"server","core_model":"approx"}"#,
        );
        assert_eq!(overridden.status, 202, "{}", overridden.body);
        // And an inline object defaults its name to "inline".
        let inline_ok = submit_sweep(
            &state,
            r#"{"experiment":"quick","machine":{"format":"alecto-machine-v1","cores":2}}"#,
        );
        assert_eq!(inline_ok.status, 202, "{}", inline_ok.body);
        let queued = state.queue.lock().unwrap();
        assert_eq!(queued.len(), 3);
        assert_eq!(queued[0].scale.core_model, cpu::CoreModelKind::OutOfOrder);
        assert_eq!(queued[0].scale.machine.as_ref().unwrap().name, "server");
        assert_eq!(queued[1].scale.core_model, cpu::CoreModelKind::Approx);
        assert_eq!(queued[2].scale.machine.as_ref().unwrap().name, "inline");
        assert_eq!(queued[2].scale.machine.as_ref().unwrap().cores, 2);
    }

    #[test]
    fn machine_objects_flatten_to_dotted_entries() {
        let doc = json::parse(
            r#"{"format":"alecto-machine-v1","cores":4,"cache":{"l1d":{"ways":4,"size_kb":32}}}"#,
        )
        .unwrap();
        let entries = flatten_machine_object("", &doc).unwrap();
        let paths: Vec<&str> = entries.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"cache.l1d.ways"), "{paths:?}");
        assert!(entries.iter().all(|e| e.line == 0));
        let spec = machine::compile_entries(&entries, true).unwrap();
        assert_eq!(spec.l1d.ways, 4);
        // Non-integer numbers are named in the rejection.
        let doc = json::parse(r#"{"cores":2.5}"#).unwrap();
        let err = flatten_machine_object("", &doc).unwrap_err();
        assert!(err.contains("`cores`"), "{err}");
    }

    #[test]
    fn replay_specs_resolve_benchmarks_and_reject_junk() {
        assert!(resolve_replay_spec("lbm", 100).is_ok());
        assert!(resolve_replay_spec("no-such-benchmark", 100).is_err());
        assert!(resolve_replay_spec("file:/does/not/exist.altr", 100).is_err());
    }
}
