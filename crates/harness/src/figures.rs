//! One function per table/figure of the paper's evaluation (§V–§VII).
//!
//! Every function returns an [`Experiment`] whose table mirrors the rows or
//! series of the corresponding figure, so `alecto-harness <id>` regenerates
//! it and EXPERIMENTS.md can record paper-vs-measured values.

use alecto::{storage_breakdown, AlectoConfig};
use alecto_types::TraceSource;
use cpu::{CompositeKind, SelectionAlgorithm, SystemConfig};
use memsys::DramKind;
use prefetch::build_composite;
use selectors::Selector;

use crate::energy::EnergyModel;
use crate::report::{Experiment, Table};
use crate::runner::{merge_grids, run_multicore_mix, run_single_core_suite, RunScale, SpeedupGrid};

/// The five-algorithm comparison used by most figures.
fn main_algorithms() -> Vec<SelectionAlgorithm> {
    SelectionAlgorithm::main_comparison().to_vec()
}

/// The scale's machine (Table I by default) lowered at `cores` cores under
/// the scale's core timing model — every sweep experiment builds its
/// `SystemConfig` through here (or lowers a modified `machine_at` spec), so
/// `--machine` and `--core-model` reach each cell.
fn system_config(scale: &RunScale, cores: usize) -> SystemConfig {
    scale.base_config(cores)
}

fn spec06_workloads(scale: &RunScale) -> Vec<TraceSource> {
    traces::Suite::Spec06.all_sources(scale.accesses)
}

fn spec17_workloads(scale: &RunScale) -> Vec<TraceSource> {
    traces::Suite::Spec17.all_sources(scale.accesses)
}

fn memory_intensive_workloads(scale: &RunScale) -> Vec<TraceSource> {
    let mut v: Vec<TraceSource> = traces::spec06::memory_intensive()
        .iter()
        .map(|n| traces::spec06::source(n, scale.accesses))
        .collect();
    v.extend(
        traces::spec17::memory_intensive()
            .iter()
            .map(|n| traces::spec17::source(n, scale.accesses)),
    );
    v
}

/// Benchmarks with temporal patterns used by Fig. 13/14 ("representative
/// benchmarks that exhibit temporal patterns").
fn temporal_benchmarks(scale: &RunScale) -> Vec<TraceSource> {
    // The temporal experiments need traces long enough for the pointer-chase
    // working sets to recur several times, hence the larger access budget.
    ["astar", "gcc", "mcf", "omnetpp", "soplex", "sphinx3", "xalancbmk"]
        .iter()
        .map(|n| traces::spec06::source(n, scale.accesses * 4))
        .collect()
}

fn geomean_row(grid: &SpeedupGrid, label: &str, mem_only: bool) -> Vec<String> {
    let mut row = vec![label.to_string()];
    for algo in &grid.algorithm_labels {
        row.push(format!("{:.3}", grid.geomean_speedup(algo, mem_only).unwrap_or(f64::NAN)));
    }
    row
}

// ---------------------------------------------------------------------------
// Tables I–III
// ---------------------------------------------------------------------------

/// Table I: the simulated system configuration (of the selected machine,
/// Skylake-like Table I by default).
#[must_use]
pub fn table1(scale: &RunScale) -> Experiment {
    let mut table = Table::new(vec!["Module", "Configuration"]);
    for (k, v) in scale.base_config(scale.multicore_cores(8)).describe() {
        table.push_row(vec![k, v]);
    }
    Experiment::new("table1", "System configuration (Skylake-like, Table I)", table)
}

/// Table II: the prefetchers being selected and their storage.
#[must_use]
pub fn table2() -> Experiment {
    let mut table = Table::new(vec!["Prefetcher", "Kind", "Storage (bits)"]);
    for pf in build_composite(CompositeKind::GsCsPmp) {
        table.push_row(vec![
            pf.name().to_string(),
            format!("{:?}", pf.kind()),
            pf.storage_bits().to_string(),
        ]);
    }
    for pf in build_composite(CompositeKind::GsBertiCplx).into_iter().skip(1) {
        table.push_row(vec![
            pf.name().to_string(),
            format!("{:?}", pf.kind()),
            pf.storage_bits().to_string(),
        ]);
    }
    Experiment::new("table2", "Prefetchers being selected (Table II)", table)
        .with_note("GS/CS/PMP form the default composite; Berti/CPLX the Fig. 11 alternate")
}

/// Table III: Alecto storage overhead versus the number of prefetchers, plus
/// the Bandit comparison of §VI-H.
#[must_use]
pub fn table3() -> Experiment {
    let cfg = AlectoConfig::default();
    let mut table = Table::new(vec![
        "P",
        "Allocation (bits)",
        "Sample (bits)",
        "Sandbox (bits)",
        "Total (bytes)",
        "Excl. sandbox (bytes)",
    ]);
    for p in [1usize, 2, 3, 4, 6] {
        let b = storage_breakdown(&cfg, p);
        table.push_row(vec![
            p.to_string(),
            b.allocation_table_bits.to_string(),
            b.sample_table_bits.to_string(),
            b.sandbox_table_bits.to_string(),
            b.total_bytes().to_string(),
            b.bytes_excluding_sandbox().to_string(),
        ]);
    }
    let bandit_ext =
        selectors::BanditSelector::extended(cfg.conservative_degree, cfg.max_aggressive, 3);
    Experiment::new("table3", "Alecto storage overhead (Table III)", table)
        .with_note(
            "paper: 5312 + 1792*P bits; P=3 gives 1336 B total, 760 B excluding the sandbox"
                .to_string(),
        )
        .with_note(format!(
            "extended Bandit (§VI-H) needs {} bytes, {:.1}x Alecto's P=3 requirement",
            bandit_ext.storage_bits() / 8,
            bandit_ext.storage_bits() as f64
                / f64::from(u32::try_from(storage_breakdown(&cfg, 3).total_bits()).unwrap_or(1))
        ))
}

// ---------------------------------------------------------------------------
// Motivation figures
// ---------------------------------------------------------------------------

/// Fig. 1: prefetcher-table misses with and without dynamic demand request
/// allocation, over the SPEC06- and SPEC17-like suites.
#[must_use]
pub fn fig1(scale: &RunScale) -> Experiment {
    let mut table = Table::new(vec![
        "suite",
        "no DDRA (IPCP) table misses",
        "Alecto table misses",
        "reduction",
    ]);
    for (label, workloads) in
        [("SPEC CPU2006", spec06_workloads(scale)), ("SPEC CPU2017", spec17_workloads(scale))]
    {
        let grid = run_single_core_suite(
            &workloads,
            &[SelectionAlgorithm::Ipcp, SelectionAlgorithm::Alecto],
            scale.composite(CompositeKind::GsCsPmp),
            &system_config(scale, 1),
            scale.jobs,
        );
        let misses = |algo: &str| -> u64 {
            grid.benchmarks
                .iter()
                .flat_map(|b| b.algorithms.iter().filter(|a| a.algorithm == algo))
                .map(|a| a.report.total_table_misses())
                .sum()
        };
        let without = misses("IPCP");
        let with = misses("Alecto");
        let reduction = if without == 0 { 0.0 } else { 1.0 - with as f64 / without as f64 };
        table.push_row(vec![
            label.to_string(),
            without.to_string(),
            with.to_string(),
            format!("{:.1}%", reduction * 100.0),
        ]);
    }
    Experiment::new("fig1", "Prefetcher table misses without vs with DDRA (Fig. 1)", table)
        .with_note("paper: DDRA significantly reduces prefetcher-table conflicts on both suites")
}

/// Fig. 2: the interleaved access patterns of 459.GemsFDTD — per-PC line
/// deltas of the two dominant PCs over a window of the trace.
#[must_use]
pub fn fig2(scale: &RunScale) -> Experiment {
    let w = traces::spec06::workload("GemsFDTD", scale.accesses.min(4_000));
    // The two busiest PCs stand in for 0x30b00 (spatial) and 0x30aca (stream).
    let mut counts: Vec<(u64, usize)> = Vec::new();
    for r in &w.records {
        match counts.iter_mut().find(|(pc, _)| *pc == r.pc.raw()) {
            Some((_, c)) => *c += 1,
            None => counts.push((r.pc.raw(), 1)),
        }
    }
    counts.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    let mut table =
        Table::new(vec!["PC", "accesses", "distinct deltas", "dominant delta", "classification"]);
    for &(pc, n) in counts.iter().take(4) {
        let lines: Vec<i64> = w
            .records
            .iter()
            .filter(|r| r.pc.raw() == pc)
            .map(|r| r.addr.line().raw() as i64)
            .collect();
        let deltas: Vec<i64> = lines.windows(2).map(|w| w[1] - w[0]).collect();
        let mut distinct: Vec<i64> = deltas.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let dominant = distinct
            .iter()
            .map(|d| (d, deltas.iter().filter(|x| *x == d).count()))
            .max_by_key(|(_, c)| *c)
            .map(|(d, _)| *d)
            .unwrap_or(0);
        let class = if distinct.len() <= 2 && dominant.abs() == 1 {
            "stream"
        } else if distinct.len() <= 3 {
            "stride/delta"
        } else {
            "spatial/irregular"
        };
        table.push_row(vec![
            format!("{pc:#x}"),
            n.to_string(),
            distinct.len().to_string(),
            dominant.to_string(),
            class.to_string(),
        ]);
    }
    Experiment::new("fig2", "Interleaved per-PC patterns of GemsFDTD (Fig. 2)", table).with_note(
        "paper: PC 0x30b00 is spatial while PC 0x30aca streams; the patterns interleave in time",
    )
}

// ---------------------------------------------------------------------------
// Main single-core results
// ---------------------------------------------------------------------------

/// Fig. 8: SPEC CPU2006 single-core speedups of the five selection schemes.
#[must_use]
pub fn fig8(scale: &RunScale) -> Experiment {
    let grid = run_single_core_suite(
        &spec06_workloads(scale),
        &main_algorithms(),
        scale.composite(CompositeKind::GsCsPmp),
        &system_config(scale, 1),
        scale.jobs,
    );
    Experiment::new("fig8", "SPEC CPU2006 speedup over no prefetching (Fig. 8)", grid.to_table())
        .with_grid(&grid)
        .with_note("paper: Alecto beats IPCP by 8.14%, DOL by 8.04%, Bandit3 by 4.77%, Bandit6 by 3.20% (geomean)")
        .with_note("benchmarks marked * are the memory-intensive subset")
}

/// Fig. 9: SPEC CPU2017 single-core speedups.
#[must_use]
pub fn fig9(scale: &RunScale) -> Experiment {
    let grid = run_single_core_suite(
        &spec17_workloads(scale),
        &main_algorithms(),
        scale.composite(CompositeKind::GsCsPmp),
        &system_config(scale, 1),
        scale.jobs,
    );
    Experiment::new("fig9", "SPEC CPU2017 speedup over no prefetching (Fig. 9)", grid.to_table())
        .with_grid(&grid)
        .with_note("paper: Alecto beats IPCP by 5.47%, DOL by 5.65%, Bandit3 by 3.67%, Bandit6 by 2.32% (geomean)")
}

/// Fig. 10: covered-timely / covered-untimely / uncovered / overprediction
/// breakdown per selection scheme (normalised to the baseline miss count).
#[must_use]
pub fn fig10(scale: &RunScale) -> Experiment {
    let workloads = memory_intensive_workloads(scale);
    let grid = run_single_core_suite(
        &workloads,
        &main_algorithms(),
        scale.composite(CompositeKind::GsCsPmp),
        &system_config(scale, 1),
        scale.jobs,
    );
    let mut table = Table::new(vec![
        "algorithm",
        "covered timely",
        "covered untimely",
        "uncovered",
        "overprediction",
        "accuracy",
        "coverage",
    ]);
    for algo in &grid.algorithm_labels {
        let mut totals = memsys::PrefetchQuality::default();
        let mut baseline_misses = 0u64;
        for bench in &grid.benchmarks {
            baseline_misses += bench.baseline.total_quality().uncovered.max(1);
            if let Some(a) = bench.algorithms.iter().find(|a| &a.algorithm == algo) {
                totals.merge(&a.report.total_quality());
            }
        }
        let norm = baseline_misses.max(1) as f64;
        table.push_row(vec![
            algo.clone(),
            format!("{:.3}", totals.covered_timely as f64 / norm),
            format!("{:.3}", totals.covered_untimely as f64 / norm),
            format!("{:.3}", totals.uncovered as f64 / norm),
            format!("{:.3}", totals.overpredicted as f64 / norm),
            format!("{:.3}", totals.accuracy()),
            format!("{:.3}", totals.coverage()),
        ]);
    }
    Experiment::new("fig10", "Prefetcher quality metrics (Fig. 10)", table)
        .with_grid(&grid)
        .with_note(
        "paper: Alecto's accuracy exceeds Bandit6 by 13.51% without losing coverage or timeliness",
    )
}

/// Fig. 11: the alternate composite GS + Berti + CPLX.
#[must_use]
pub fn fig11(scale: &RunScale) -> Experiment {
    let grid = merge_grids(vec![
        run_single_core_suite(
            &spec06_workloads(scale),
            &main_algorithms(),
            CompositeKind::GsBertiCplx,
            &system_config(scale, 1),
            scale.jobs,
        ),
        run_single_core_suite(
            &spec17_workloads(scale),
            &main_algorithms(),
            CompositeKind::GsBertiCplx,
            &system_config(scale, 1),
            scale.jobs,
        ),
    ]);
    let mut table = Table::new({
        let mut h = vec!["set".to_string()];
        h.extend(grid.algorithm_labels.clone());
        h
    });
    table.push_row(geomean_row(&grid, "Geomean (SPEC06+17)", false));
    table.push_row(geomean_row(&grid, "Geomean-Mem", true));
    Experiment::new("fig11", "Alternate composite GS+Berti+CPLX (Fig. 11)", table)
        .with_grid(&grid)
        .with_note(
            "paper: Alecto beats IPCP by 8.52%, DOL by 8.68%, Bandit3 by 5.02%, Bandit6 by 2.04%",
        )
}

/// Fig. 12: composite prefetchers under Alecto versus the non-composite PMP
/// and Berti prefetchers.
#[must_use]
pub fn fig12(scale: &RunScale) -> Experiment {
    let workloads: Vec<TraceSource> =
        spec06_workloads(scale).into_iter().chain(spec17_workloads(scale)).collect();
    let config = system_config(scale, 1);
    let mut table = Table::new(vec!["configuration", "geomean speedup"]);
    let single = |composite: CompositeKind| -> f64 {
        let grid = run_single_core_suite(
            &workloads,
            &[SelectionAlgorithm::Ipcp],
            composite,
            &config,
            scale.jobs,
        );
        grid.geomean_speedup("IPCP", false).unwrap_or(f64::NAN)
    };
    let alecto = |composite: CompositeKind| -> f64 {
        let grid = run_single_core_suite(
            &workloads,
            &[SelectionAlgorithm::Alecto],
            composite,
            &config,
            scale.jobs,
        );
        grid.geomean_speedup("Alecto", false).unwrap_or(f64::NAN)
    };
    table.push_row(vec![
        "PMP (non-composite)".to_string(),
        format!("{:.3}", single(CompositeKind::PmpOnly)),
    ]);
    table.push_row(vec![
        "Berti (non-composite)".to_string(),
        format!("{:.3}", single(CompositeKind::BertiOnly)),
    ]);
    table.push_row(vec![
        "Alecto (GS+CS+PMP)".to_string(),
        format!("{:.3}", alecto(CompositeKind::GsCsPmp)),
    ]);
    table.push_row(vec![
        "Alecto (GS+Berti+CPLX)".to_string(),
        format!("{:.3}", alecto(CompositeKind::GsBertiCplx)),
    ]);
    Experiment::new("fig12", "Composite (Alecto) vs non-composite prefetchers (Fig. 12)", table)
        .with_note("paper: Alecto(GS+CS+PMP) beats PMP by 9.10% and Berti by 7.83%")
}

// ---------------------------------------------------------------------------
// Temporal prefetching (Figs. 13, 14)
// ---------------------------------------------------------------------------

fn temporal_speedup(
    workloads: &[TraceSource],
    with_temporal: SelectionAlgorithm,
    without_temporal: SelectionAlgorithm,
    metadata_bytes: u64,
    scale: &RunScale,
) -> f64 {
    let jobs = scale.jobs;
    let config = system_config(scale, 1);
    let with_grid = run_single_core_suite(
        workloads,
        &[with_temporal],
        CompositeKind::GsCsPmpTemporal { metadata_bytes },
        &config,
        jobs,
    );
    let without_grid = run_single_core_suite(
        workloads,
        &[without_temporal],
        CompositeKind::GsCsPmp,
        &config,
        jobs,
    );
    let mut ratios = Vec::new();
    for bench in &with_grid.benchmarks {
        let with_ipc = bench.algorithms[0].report.geomean_ipc().unwrap_or(0.0);
        let without_ipc = without_grid
            .benchmarks
            .iter()
            .find(|b| b.benchmark == bench.benchmark)
            .and_then(|b| b.algorithms[0].report.geomean_ipc())
            .unwrap_or(1e-9);
        ratios.push(with_ipc / without_ipc);
    }
    alecto_types::geomean(&ratios).unwrap_or(f64::NAN)
}

/// Fig. 13: temporal prefetching speedup under Bandit, Triangel-style
/// filtering and Alecto (L2 temporal prefetcher on top of the L1 composite).
#[must_use]
pub fn fig13(scale: &RunScale) -> Experiment {
    let workloads = temporal_benchmarks(scale);
    let metadata = 1024 * 1024;
    let mut table = Table::new(vec!["policy", "geomean speedup (vs L1 prefetchers only)"]);
    let configs = [
        ("Bandit", SelectionAlgorithm::Bandit6, SelectionAlgorithm::Bandit6),
        ("Triangel", SelectionAlgorithm::Triangel, SelectionAlgorithm::Ipcp),
        ("Alecto", SelectionAlgorithm::Alecto, SelectionAlgorithm::Alecto),
    ];
    for (label, with_t, without_t) in configs {
        let s = temporal_speedup(&workloads, with_t, without_t, metadata, scale);
        table.push_row(vec![label.to_string(), format!("{s:.3}")]);
    }
    Experiment::new(
        "fig13",
        "Temporal prefetching with different request-allocation policies (Fig. 13)",
        table,
    )
    .with_note("paper: Alecto beats Bandit by 8.39% and Triangel by 2.18% on temporal benchmarks")
}

/// Fig. 14: geomean speedup versus temporal metadata table size.
#[must_use]
pub fn fig14(scale: &RunScale) -> Experiment {
    let workloads = temporal_benchmarks(scale);
    let mut table = Table::new(vec!["metadata size", "Bandit", "Alecto"]);
    for kb in [128u64, 256, 512, 1024] {
        let bytes = kb * 1024;
        let bandit = temporal_speedup(
            &workloads,
            SelectionAlgorithm::Bandit6,
            SelectionAlgorithm::Bandit6,
            bytes,
            scale,
        );
        let alecto = temporal_speedup(
            &workloads,
            SelectionAlgorithm::Alecto,
            SelectionAlgorithm::Alecto,
            bytes,
            scale,
        );
        table.push_row(vec![format!("{kb}KB"), format!("{bandit:.3}"), format!("{alecto:.3}")]);
    }
    Experiment::new("fig14", "Speedup vs temporal metadata table size (Fig. 14)", table)
        .with_note("paper: Alecto outperforms Bandit at every size (4.82%–8.39%) and matches Bandit's 1MB result with <256KB")
}

// ---------------------------------------------------------------------------
// Sensitivity studies (Figs. 15, 16) and multi-core (Fig. 17)
// ---------------------------------------------------------------------------

/// Fig. 15: geomean speedup versus LLC capacity per core.
#[must_use]
pub fn fig15(scale: &RunScale) -> Experiment {
    let workloads = memory_intensive_workloads(scale);
    let mut table = Table::new({
        let mut h = vec!["LLC / core".to_string()];
        h.extend(main_algorithms().iter().map(|a| a.label().to_string()));
        h
    });
    for mb in [512 * 1024u64, 1024 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024] {
        let config = SystemConfig::from_machine(&scale.machine_at(1).with_llc_per_core(mb))
            .with_core_model(scale.core_model);
        let grid = run_single_core_suite(
            &workloads,
            &main_algorithms(),
            scale.composite(CompositeKind::GsCsPmp),
            &config,
            scale.jobs,
        );
        let mut row = vec![format!("{:.1} MB", mb as f64 / (1024.0 * 1024.0))];
        for algo in &grid.algorithm_labels {
            row.push(format!("{:.3}", grid.geomean_speedup(algo, false).unwrap_or(f64::NAN)));
        }
        table.push_row(row);
    }
    Experiment::new("fig15", "Geomean speedup vs LLC size (Fig. 15)", table)
        .with_note("paper: Alecto stays 2.76%–3.10% ahead of Bandit6 across 0.5–4 MB LLCs")
}

/// Fig. 16: geomean speedup under DDR3-1600 and DDR4-2400.
#[must_use]
pub fn fig16(scale: &RunScale) -> Experiment {
    let workloads = memory_intensive_workloads(scale);
    let mut table = Table::new({
        let mut h = vec!["DRAM".to_string()];
        h.extend(main_algorithms().iter().map(|a| a.label().to_string()));
        h
    });
    for (label, kind) in [("DDR3-1600", DramKind::Ddr3_1600), ("DDR4-2400", DramKind::Ddr4_2400)] {
        let config = SystemConfig::from_machine(&scale.machine_at(1).with_dram_kind(kind))
            .with_core_model(scale.core_model);
        let grid = run_single_core_suite(
            &workloads,
            &main_algorithms(),
            scale.composite(CompositeKind::GsCsPmp),
            &config,
            scale.jobs,
        );
        let mut row = vec![label.to_string()];
        for algo in &grid.algorithm_labels {
            row.push(format!("{:.3}", grid.geomean_speedup(algo, false).unwrap_or(f64::NAN)));
        }
        table.push_row(row);
    }
    Experiment::new("fig16", "Geomean speedup vs DRAM bandwidth (Fig. 16)", table)
        .with_note("paper: Alecto beats Bandit6 by 3.18% on DDR3-1600 and 2.76% on DDR4-2400")
}

/// Fig. 17: eight-core speedups on SPEC06/SPEC17 mixes, PARSEC and Ligra.
#[must_use]
pub fn fig17(scale: &RunScale) -> Experiment {
    let algorithms = main_algorithms();
    // Eight cores historically; a selected machine brings its own count.
    let cores = scale.multicore_cores(8);
    let config = system_config(scale, cores);
    let mut grids = Vec::new();

    // Heterogeneous SPEC06 and SPEC17 mixes over the memory-intensive subset
    // (cycled when the machine has more cores than the subset has members).
    let spec06_mix: Vec<TraceSource> = traces::spec06::memory_intensive()
        .iter()
        .cycle()
        .take(cores)
        .enumerate()
        .map(|(i, n)| offset_source(traces::spec06::source(n, scale.multicore_accesses), i))
        .collect();
    grids.push(run_multicore_mix(
        "SPEC06-mix",
        &spec06_mix,
        &algorithms,
        scale.composite(CompositeKind::GsCsPmp),
        &config,
        scale.jobs,
    ));
    let spec17_mix: Vec<TraceSource> = traces::spec17::memory_intensive()
        .iter()
        .cycle()
        .take(cores)
        .enumerate()
        .map(|(i, n)| offset_source(traces::spec17::source(n, scale.multicore_accesses), i))
        .collect();
    grids.push(run_multicore_mix(
        "SPEC17-mix",
        &spec17_mix,
        &algorithms,
        scale.composite(CompositeKind::GsCsPmp),
        &config,
        scale.jobs,
    ));

    // PARSEC: each core runs one thread of the same benchmark.
    for bench in ["canneal", "streamcluster"] {
        let per_core = traces::parsec::per_core_sources(bench, scale.multicore_accesses, cores);
        grids.push(run_multicore_mix(
            &format!("PARSEC-{bench}"),
            &per_core,
            &algorithms,
            scale.composite(CompositeKind::GsCsPmp),
            &config,
            scale.jobs,
        ));
    }
    // Ligra: each core runs a kernel instance over its own graph partition.
    for kernel in ["BFS", "PageRank"] {
        let per_core: Vec<TraceSource> = (0..cores)
            .map(|i| offset_source(traces::ligra::source(kernel, scale.multicore_accesses), i))
            .collect();
        grids.push(run_multicore_mix(
            &format!("Ligra-{kernel}"),
            &per_core,
            &algorithms,
            scale.composite(CompositeKind::GsCsPmp),
            &config,
            scale.jobs,
        ));
    }

    let merged = merge_grids(grids);
    let mut table = merged.to_table();
    table.push_row({
        let mut row = vec!["Geomean".to_string()];
        for algo in &merged.algorithm_labels {
            row.push(format!("{:.3}", merged.geomean_speedup(algo, false).unwrap_or(f64::NAN)));
        }
        row
    });
    Experiment::new("fig17", "Eight-core speedup over no prefetching (Fig. 17)", table)
        .with_grid(&merged)
        .with_note(
            "paper: Alecto beats IPCP by 10.60%, DOL by 11.52%, Bandit3 by 9.51%, Bandit6 by 7.56%",
        )
}

fn offset_source(source: TraceSource, core: usize) -> TraceSource {
    // Give each core its own address-space slice (SPEC-rate style), applied
    // lazily on the record stream.
    source.with_addr_offset((core as u64) << 40)
}

// ---------------------------------------------------------------------------
// Energy, ablations, PPF and the extended Bandit (Figs. 18–20, §VI-H/I, §VII)
// ---------------------------------------------------------------------------

/// Fig. 18 + §VI-I: per-prefetcher training occurrences and energy, Bandit6
/// versus Alecto.
#[must_use]
pub fn fig18(scale: &RunScale) -> Experiment {
    let workloads = memory_intensive_workloads(scale);
    let config = system_config(scale, 1);
    let grid = run_single_core_suite(
        &workloads,
        &[SelectionAlgorithm::Bandit6, SelectionAlgorithm::Alecto],
        scale.composite(CompositeKind::GsCsPmp),
        &config,
        scale.jobs,
    );
    let totals = |algo: &str| -> (Vec<(String, u64)>, f64, f64) {
        let mut by_pf: Vec<(String, u64)> = Vec::new();
        let mut hierarchy = 0.0;
        let mut prefetcher = 0.0;
        let model = EnergyModel::default();
        for bench in &grid.benchmarks {
            if let Some(a) = bench.algorithms.iter().find(|a| a.algorithm == algo) {
                for (name, trainings) in a.report.trainings_by_prefetcher() {
                    match by_pf.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, t)) => *t += trainings,
                        None => by_pf.push((name, trainings)),
                    }
                }
                let e = model.evaluate(&a.report);
                hierarchy += e.hierarchy_nj;
                prefetcher += e.prefetcher_nj;
            }
        }
        (by_pf, hierarchy, prefetcher)
    };
    let (bandit_pf, bandit_h, bandit_p) = totals("Bandit6");
    let (alecto_pf, alecto_h, alecto_p) = totals("Alecto");
    let mut table =
        Table::new(vec!["prefetcher", "Bandit6 trainings", "Alecto trainings", "reduction"]);
    for (name, bandit_t) in &bandit_pf {
        let alecto_t = alecto_pf.iter().find(|(n, _)| n == name).map_or(0, |(_, t)| *t);
        let reduction = if *bandit_t == 0 { 0.0 } else { 1.0 - alecto_t as f64 / *bandit_t as f64 };
        table.push_row(vec![
            name.clone(),
            bandit_t.to_string(),
            alecto_t.to_string(),
            format!("{:.1}%", reduction * 100.0),
        ]);
    }
    let train_reduction = {
        let b: u64 = bandit_pf.iter().map(|(_, t)| t).sum();
        let a: u64 = alecto_pf.iter().map(|(_, t)| t).sum();
        if b == 0 {
            0.0
        } else {
            1.0 - a as f64 / b as f64
        }
    };
    Experiment::new("fig18", "Prefetcher training occurrences and energy (Fig. 18, §VI-I)", table)
        .with_note(format!("total training reduction: {:.1}% (paper: 48%)", train_reduction * 100.0))
        .with_note(format!(
            "prefetcher-table energy: Bandit6 {bandit_p:.0} nJ vs Alecto {alecto_p:.0} nJ; hierarchy energy {:.1}% lower (paper: 7%)",
            (1.0 - (alecto_h + alecto_p) / (bandit_h + bandit_p)) * 100.0
        ))
}

/// Fig. 19 (§VII-A): the ablation isolating demand request allocation from
/// dynamic degree adjustment.
#[must_use]
pub fn fig19(scale: &RunScale) -> Experiment {
    let workloads = memory_intensive_workloads(scale);
    let grid = run_single_core_suite(
        &workloads,
        &[
            SelectionAlgorithm::Bandit6,
            SelectionAlgorithm::AlectoFixedDegree(6),
            SelectionAlgorithm::Alecto,
        ],
        scale.composite(CompositeKind::GsCsPmp),
        &system_config(scale, 1),
        scale.jobs,
    );
    Experiment::new("fig19", "Ablation: Alecto with fixed prefetching degree (Fig. 19)", grid.to_table())
        .with_grid(&grid)
        .with_note("paper: Alecto_fix beats Bandit6 by 4.34%, full Alecto by 5.25% — most of the gain comes from DDRA")
}

/// Fig. 20 (§VII-C): prefetch filtering (PPF) versus demand request allocation.
#[must_use]
pub fn fig20(scale: &RunScale) -> Experiment {
    let workloads = memory_intensive_workloads(scale);
    let grid = run_single_core_suite(
        &workloads,
        &[
            SelectionAlgorithm::PpfAggressive,
            SelectionAlgorithm::PpfConservative,
            SelectionAlgorithm::Alecto,
        ],
        scale.composite(CompositeKind::GsCsPmp),
        &system_config(scale, 1),
        scale.jobs,
    );
    Experiment::new(
        "fig20",
        "IPCP+PPF vs Alecto on memory-intensive benchmarks (Fig. 20)",
        grid.to_table(),
    )
    .with_grid(&grid)
    .with_note(
        "paper: Alecto beats IPCP+PPF_Aggressive by 18.38% and IPCP+PPF_Conservative by 14.98%",
    )
}

/// §VI-H: the extended-arm Bandit versus Bandit6 and Alecto.
#[must_use]
pub fn bandit_extended(scale: &RunScale) -> Experiment {
    let workloads = memory_intensive_workloads(scale);
    let grid = run_single_core_suite(
        &workloads,
        &[
            SelectionAlgorithm::Bandit6,
            SelectionAlgorithm::BanditExtended,
            SelectionAlgorithm::Alecto,
        ],
        scale.composite(CompositeKind::GsCsPmp),
        &system_config(scale, 1),
        scale.jobs,
    );
    let mut table = Table::new(vec!["algorithm", "geomean speedup", "storage (bytes)"]);
    for (algo, selector) in [
        (SelectionAlgorithm::Bandit6, cpu::build_selector(SelectionAlgorithm::Bandit6, 3)),
        (
            SelectionAlgorithm::BanditExtended,
            cpu::build_selector(SelectionAlgorithm::BanditExtended, 3),
        ),
        (SelectionAlgorithm::Alecto, cpu::build_selector(SelectionAlgorithm::Alecto, 3)),
    ] {
        let label = algo.label();
        table.push_row(vec![
            label.to_string(),
            format!("{:.3}", grid.geomean_speedup(label, false).unwrap_or(f64::NAN)),
            (selector.map_or(0, |s| s.storage_bits()) / 8).to_string(),
        ]);
    }
    Experiment::new("vi_h", "Extended-arm Bandit vs Bandit6 vs Alecto (§VI-H)", table)
        .with_grid(&grid)
        .with_note("paper: the 512-arm Bandit is 0.83% below Bandit6 and 3.59% below Alecto while needing 4 KB")
}

// ---------------------------------------------------------------------------
// Beyond the paper: the stress sweep over the production scenario families
// ---------------------------------------------------------------------------

/// The `stress` experiment: a long-horizon sweep over the three
/// production-scenario families (pointer chasing, Zipfian web serving,
/// database scan/join) plus a paper anchor (`mcf`), at 1×, 2× and 4× the
/// configured access budget. Every cell streams its trace, so the sweep's
/// memory footprint is flat however large `--accesses` gets — which is the
/// property that lets CI track speedup stability versus run length.
#[must_use]
pub fn stress(scale: &RunScale) -> Experiment {
    let algorithms =
        [SelectionAlgorithm::Ipcp, SelectionAlgorithm::Bandit6, SelectionAlgorithm::Alecto];
    let config = system_config(scale, 1);
    let mut grids = Vec::new();
    let corpus = corpus_sources(scale.accesses);
    for mult in [1usize, 2, 4] {
        let accesses = scale.accesses.saturating_mul(mult);
        let sources: Vec<TraceSource> = [
            traces::gc::source("linked-list", accesses),
            traces::web::source("web-cache", accesses),
            traces::db::source("hash-join", accesses),
            traces::spec06::source("mcf", accesses),
        ]
        .into_iter()
        .map(|s| {
            let name = format!("{}@{}x", s.name(), mult);
            s.with_name(name)
        })
        .collect();
        grids.push(run_single_core_suite(
            &sources,
            &algorithms,
            scale.composite(CompositeKind::GsCsPmp),
            &config,
            scale.jobs,
        ));
    }
    let corpus_count = corpus.len();
    if !corpus.is_empty() {
        grids.push(run_single_core_suite(
            &corpus,
            &algorithms,
            scale.composite(CompositeKind::GsCsPmp),
            &config,
            scale.jobs,
        ));
    }
    let merged = merge_grids(grids);
    let mut experiment = Experiment::new(
        "stress",
        "Access-count stress sweep over the scenario families (1x/2x/4x budget)",
        merged.to_table(),
    )
    .with_grid(&merged)
    .with_note("traces are streamed: memory stays O(1) in the access budget at every multiplier")
    .with_note(
        "families: pointer chasing (linked-list), Zipfian web serving (web-cache), database join (hash-join), paper anchor (mcf)",
    );
    if corpus_count > 0 {
        experiment = experiment.with_note(format!(
            "corpus: {corpus_count} graduated repro trace(s) from ${STRESS_CORPUS_ENV}"
        ));
    }
    experiment
}

/// Env var naming a directory whose `*.altr` traces graduate into the
/// `stress` sweep: every readable trace in it (sorted by file name, so the
/// sweep stays deterministic) is appended as a `file:`-backed benchmark at
/// the scale's base access budget. Unset — the default everywhere except
/// fuzzing workflows — leaves `stress` exactly as it always was.
pub const STRESS_CORPUS_ENV: &str = "ALECTO_STRESS_CORPUS";

/// The graduated-corpus sources for [`stress`], if [`STRESS_CORPUS_ENV`]
/// names a directory.
///
/// # Panics
///
/// Panics if a corpus file cannot be opened or has a corrupt header —
/// graduated repros are regression inputs, so a broken one must fail the
/// sweep loudly rather than silently shrink it.
fn corpus_sources(accesses: usize) -> Vec<TraceSource> {
    let Some(dir) = std::env::var_os(STRESS_CORPUS_ENV) else {
        return Vec::new();
    };
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "altr"))
                .collect()
        })
        .unwrap_or_default();
    paths.sort();
    paths
        .into_iter()
        .map(|path| traces::Suite::File.source(&format!("file:{}", path.display()), accesses))
        .collect()
}

/// The `timing` experiment: the cycle-level model's knobs made visible.
/// One benchmark per scenario family (paper anchor, pointer chasing, web
/// serving, database scan) is swept under a *latency-sensitive* DRAM
/// admission queue (`@lat`, four fills admitted per cycle), a
/// *bandwidth-bound* one (`@bw`, one fill per sixteen cycles), and the
/// latency-sensitive queue driven by the staged out-of-order core (`@ooo`,
/// [`cpu::CoreModelKind::OutOfOrder`] regardless of `--core-model`),
/// reporting speedup, IPC and average memory-access latency per cell — the
/// v2 report fields CI's perf gate tracks.
#[must_use]
pub fn timing(scale: &RunScale) -> Experiment {
    let algorithms =
        [SelectionAlgorithm::Ipcp, SelectionAlgorithm::Bandit6, SelectionAlgorithm::Alecto];
    let configs = [
        ("lat", memsys::TimingParams::latency_sensitive(), scale.core_model),
        ("bw", memsys::TimingParams::bandwidth_bound(), scale.core_model),
        ("ooo", memsys::TimingParams::latency_sensitive(), cpu::CoreModelKind::OutOfOrder),
    ];
    let mut grids = Vec::new();
    for (tag, timing, core_model) in configs {
        let config = SystemConfig::from_machine(&scale.machine_at(1).with_timing(timing))
            .with_core_model(core_model);
        let sources: Vec<TraceSource> = [
            traces::spec06::source("mcf", scale.accesses),
            traces::gc::source("linked-list", scale.accesses),
            traces::web::source("web-cache", scale.accesses),
            traces::db::source("seq-scan", scale.accesses),
        ]
        .into_iter()
        .map(|s| {
            let name = format!("{}@{tag}", s.name());
            s.with_name(name)
        })
        .collect();
        grids.push(run_single_core_suite(
            &sources,
            &algorithms,
            scale.composite(CompositeKind::GsCsPmp),
            &config,
            scale.jobs,
        ));
    }
    let merged = merge_grids(grids);
    let mut table = Table::new(vec![
        "benchmark",
        "algorithm",
        "speedup",
        "IPC",
        "avg mem lat",
        "base IPC",
        "base lat",
    ]);
    for bench in &merged.benchmarks {
        let base_ipc = bench.baseline.geomean_ipc().unwrap_or(f64::NAN);
        let base_lat = bench.baseline.avg_mem_latency();
        for algo in &bench.algorithms {
            table.push_row(vec![
                bench.benchmark.clone(),
                algo.algorithm.clone(),
                format!("{:.3}", algo.speedup),
                format!("{:.3}", algo.report.geomean_ipc().unwrap_or(f64::NAN)),
                format!("{:.1}", algo.report.avg_mem_latency()),
                format!("{base_ipc:.3}"),
                format!("{base_lat:.1}"),
            ]);
        }
    }
    Experiment::new(
        "timing",
        "Latency-sensitive vs bandwidth-bound timing sweep (cycle model)",
        table,
    )
    .with_grid(&merged)
    .with_note(
        "@lat admits 4 DRAM fills/cycle (latency-limited); @bw admits 1 per 16 cycles \
         (bandwidth-limited): the same trace shows higher average memory latency and lower \
         IPC under @bw; @ooo replays the @lat regime under the staged out-of-order core",
    )
    .with_note(
        "cells carry the alecto-bench-v2 fields: instructions, cycles, avg_mem_latency, and \
         (under the ooo core model) branch_mpki and rob_occupancy",
    )
}

/// The `trace replay` grid: the full hierarchy × selector sweep of the
/// paper's main comparison, driven from the given sources — typically one
/// file-backed [`TraceSource`] minted by `traceio`, but any source works.
/// The experiment's id, title and cells depend only on the sources' records
/// and names, never on where they came from, which is what makes a recorded
/// replay byte-identical to the generated-source run (pinned by the root
/// `trace_replay` integration test and the CI `trace-roundtrip` job).
#[must_use]
pub fn replay(sources: &[TraceSource], scale: &RunScale) -> Experiment {
    let grid = run_single_core_suite(
        sources,
        &main_algorithms(),
        scale.composite(CompositeKind::GsCsPmp),
        &system_config(scale, 1),
        scale.jobs,
    );
    Experiment::new("replay", "Hierarchy x selector grid over trace sources", grid.to_table())
        .with_grid(&grid)
        .with_note(
            "cells carry the alecto-bench-v2 fields; a recorded trace replays byte-identically \
             to its generated source",
        )
}

/// Every experiment id the CLI dispatches, in paper order, plus the
/// composite runs — what `alecto-harness list` prints. Kept next to
/// [`all`] so a new experiment is added to both or neither.
pub const EXPERIMENT_IDS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "bandit-ext",
    "stress",
    "timing",
    "all",
    "quick",
];

/// Maps an experiment id to its builder, or `None` for unknown ids. The
/// recognized set must match [`EXPERIMENT_IDS`] (what `alecto-harness list`
/// advertises) — a unit test pins the two together, so adding an experiment
/// to one and not the other fails the build, not a user. Both the CLI
/// dispatch and the sweep server's `POST /v1/sweep` resolve ids here, which
/// is one of the preconditions for their reports being byte-identical.
#[must_use]
pub fn builder(id: &str) -> Option<fn(&RunScale) -> Vec<Experiment>> {
    Some(match id {
        "table1" => |s| vec![table1(s)],
        "table2" => |_| vec![table2()],
        "table3" => |_| vec![table3()],
        "fig1" => |s| vec![fig1(s)],
        "fig2" => |s| vec![fig2(s)],
        "fig8" => |s| vec![fig8(s)],
        "fig9" => |s| vec![fig9(s)],
        "fig10" => |s| vec![fig10(s)],
        "fig11" => |s| vec![fig11(s)],
        "fig12" => |s| vec![fig12(s)],
        "fig13" => |s| vec![fig13(s)],
        "fig14" => |s| vec![fig14(s)],
        "fig15" => |s| vec![fig15(s)],
        "fig16" => |s| vec![fig16(s)],
        "fig17" => |s| vec![fig17(s)],
        "fig18" => |s| vec![fig18(s)],
        "fig19" => |s| vec![fig19(s)],
        "fig20" => |s| vec![fig20(s)],
        "bandit-ext" | "vi_h" => |s| vec![bandit_extended(s)],
        "stress" => |s| vec![stress(s)],
        "timing" => |s| vec![timing(s)],
        "all" | "quick" => all,
        _ => return None,
    })
}

/// Every experiment, in paper order (used by `alecto-harness all`).
#[must_use]
pub fn all(scale: &RunScale) -> Vec<Experiment> {
    vec![
        fig1(scale),
        fig2(scale),
        table1(scale),
        table2(),
        fig8(scale),
        fig9(scale),
        fig10(scale),
        fig11(scale),
        fig12(scale),
        fig13(scale),
        fig14(scale),
        fig15(scale),
        fig16(scale),
        fig17(scale),
        table3(),
        bandit_extended(scale),
        fig18(scale),
        fig19(scale),
        fig20(scale),
        stress(scale),
        timing(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunScale {
        RunScale::with_accesses(600, 300)
    }

    #[test]
    fn static_tables_render() {
        assert!(table1(&RunScale::default()).render().contains("256-entry ROB"));
        // A named machine surfaces as the leading Table-I row.
        let server = RunScale::default().with_machine(machine::builtin("server").expect("builtin"));
        let rendered = table1(&server).render();
        assert!(rendered.contains("Machine"), "{rendered}");
        assert!(rendered.contains("server (alecto-machine-v1)"), "{rendered}");
        assert!(table2().render().contains("PMP"));
        let t3 = table3();
        assert_eq!(t3.table.cell("3", "Excl. sandbox (bytes)"), Some("760"));
    }

    #[test]
    fn fig2_finds_multiple_pattern_classes() {
        let e = fig2(&tiny());
        assert!(e.table.rows.len() >= 2);
    }

    #[test]
    fn fig19_and_fig20_run_at_tiny_scale() {
        let scale = RunScale::with_accesses(300, 200).with_jobs(2);
        let e = fig19(&scale);
        assert!(e.table.rows.iter().any(|r| r[0].starts_with("Geomean")));
        let e = fig20(&scale);
        assert!(e.render().contains("Alecto"));
    }

    #[test]
    fn stress_sweeps_every_family_at_every_multiplier() {
        let scale = RunScale::with_accesses(300, 150).with_jobs(2);
        let e = stress(&scale);
        for bench in ["linked-list", "web-cache", "hash-join", "mcf"] {
            for mult in ["1x", "2x", "4x"] {
                let row = format!("{bench}@{mult}");
                assert!(
                    e.table.rows.iter().any(|r| r[0].starts_with(&row)),
                    "stress table is missing {row}"
                );
            }
        }
        // Grid cells are exported for the JSON report.
        assert!(!e.cells.is_empty());
    }

    #[test]
    fn timing_experiment_contrasts_latency_and_bandwidth_regimes() {
        let scale = RunScale::with_accesses(600, 300).with_jobs(2);
        let e = timing(&scale);
        // Every family appears under all three timing regimes.
        for bench in ["mcf", "linked-list", "web-cache", "seq-scan"] {
            for tag in ["lat", "bw", "ooo"] {
                let row = format!("{bench}@{tag}");
                assert!(e.table.rows.iter().any(|r| r[0] == row), "timing table is missing {row}");
            }
        }
        // Cells carry the v2 timing fields, and the bandwidth-bound variant
        // of the streaming database scan shows the higher memory latency.
        assert_eq!(e.cells.len(), 3 * 4 * 3);
        assert!(e.cells.iter().all(|c| c.cycles > 0 && c.avg_mem_latency > 0.0));
        // Only the out-of-order regime reports the pipeline metrics.
        for c in &e.cells {
            let ooo = c.benchmark.ends_with("@ooo");
            assert_eq!(c.branch_mpki.is_some(), ooo, "{}", c.benchmark);
            assert_eq!(c.rob_occupancy.is_some(), ooo, "{}", c.benchmark);
        }
        let lat_of = |name: &str| {
            e.cells
                .iter()
                .find(|c| c.benchmark == name && c.algorithm == "IPCP")
                .map(|c| c.avg_mem_latency)
                .unwrap_or_else(|| panic!("missing cell {name}"))
        };
        assert!(
            lat_of("seq-scan@bw") > lat_of("seq-scan@lat"),
            "bandwidth-bound scan must expose queueing latency ({} vs {})",
            lat_of("seq-scan@bw"),
            lat_of("seq-scan@lat")
        );
    }

    #[test]
    fn bandit_extended_reports_storage_gap() {
        let scale = RunScale::with_accesses(300, 200);
        let e = bandit_extended(&scale);
        let ext_storage: u64 =
            e.table.cell("BanditExt", "storage (bytes)").unwrap().parse().unwrap();
        let alecto_storage: u64 =
            e.table.cell("Alecto", "storage (bytes)").unwrap().parse().unwrap();
        assert!(ext_storage > 2 * alecto_storage);
    }
}
