//! # Alecto — prefetcher selection with dynamic demand request allocation
//!
//! This crate implements the paper's contribution: a prefetcher-selection
//! framework that, instead of merely throttling prefetcher *outputs*, decides
//! per memory-access instruction (per PC) **which prefetchers are allowed to
//! train** on each demand request and with what prefetching degree
//! ("dynamic demand request allocation", DDRA).
//!
//! Alecto consists of three small SRAM structures (Fig. 4):
//!
//! * the [`AllocationTable`] — per-PC, per-prefetcher state machine
//!   (UI / IA_m / IB_n, Fig. 5) driving allocation and degree,
//! * the [`SampleTable`] — per-PC issued/confirmed counters, the epoch
//!   (demand) counter and the deadlock (dead) counter,
//! * the [`SandboxTable`] — recently issued prefetches, used both to confirm
//!   prefetch usefulness and as the prefetch filter of step ⑥.
//!
//! [`AlectoSelector`] ties the three together and implements the
//! [`selectors::Selector`] trait, so the CPU model can schedule it exactly
//! like the IPCP/DOL/Bandit baselines.
//!
//! # Example
//!
//! ```
//! use alecto::{AlectoConfig, AlectoSelector};
//! use selectors::Selector;
//! use prefetch::{build_composite, CompositeKind};
//! use alecto_types::{DemandAccess, Pc, Addr};
//!
//! let mut alecto = AlectoSelector::new(AlectoConfig::default(), 3);
//! let prefetchers = build_composite(CompositeKind::GsCsPmp);
//! let decision = alecto.allocate(&DemandAccess::load(Pc::new(0x40), Addr::new(0x1000)), &prefetchers);
//! // A never-seen PC starts with every prefetcher Un-Identified: all train
//! // with the conservative degree c = 3.
//! assert_eq!(decision.allocated_count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation_table;
pub mod config;
pub mod sample_table;
pub mod sandbox_table;
pub mod selector;
pub mod state;
pub mod storage;

pub use allocation_table::AllocationTable;
pub use config::AlectoConfig;
pub use sample_table::SampleTable;
pub use sandbox_table::SandboxTable;
pub use selector::AlectoSelector;
pub use state::{PrefetcherState, StateTransitionInput};
pub use storage::{storage_breakdown, StorageBreakdown};
