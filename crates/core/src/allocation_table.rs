//! The Allocation Table (Fig. 4): a 64-entry, PC-indexed table storing the
//! state of every prefetcher for every tracked memory-access instruction.
//!
//! The table is the decision point of dynamic demand request allocation: a
//! lookup with the demand request's PC yields the per-prefetcher states, from
//! which the identifier (which prefetchers may train and with what degree) is
//! derived.

use alecto_types::Pc;

use crate::config::AlectoConfig;
use crate::state::{transition, PrefetcherState, StateTransitionInput};

#[derive(Debug, Clone)]
struct AllocationEntry {
    pc: Pc,
    states: Vec<PrefetcherState>,
    lru: u64,
}

/// The PC-indexed Allocation Table.
#[derive(Debug, Clone)]
pub struct AllocationTable {
    entries: Vec<Option<AllocationEntry>>,
    prefetchers: usize,
    lru_clock: u64,
    evictions: u64,
}

impl AllocationTable {
    /// Creates an allocation table for `prefetchers` prefetchers.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `prefetchers` is zero.
    #[must_use]
    pub fn new(entries: usize, prefetchers: usize) -> Self {
        assert!(entries > 0, "allocation table needs entries");
        assert!(prefetchers > 0, "allocation table needs at least one prefetcher");
        Self { entries: vec![None; entries], prefetchers, lru_clock: 0, evictions: 0 }
    }

    /// Number of prefetchers tracked per entry.
    #[must_use]
    pub const fn prefetchers(&self) -> usize {
        self.prefetchers
    }

    /// Number of entries evicted so far (capacity pressure indicator).
    #[must_use]
    pub const fn evictions(&self) -> u64 {
        self.evictions
    }

    fn find(&self, pc: Pc) -> Option<usize> {
        self.entries.iter().position(|e| e.as_ref().map(|e| e.pc) == Some(pc))
    }

    /// Returns the states of `pc`, allocating a fresh all-UI entry if the PC
    /// has not been seen (or has been evicted since).
    pub fn lookup_or_insert(&mut self, pc: Pc) -> &[PrefetcherState] {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let slot = match self.find(pc) {
            Some(i) => i,
            None => {
                let slot = if let Some(i) = self.entries.iter().position(Option::is_none) {
                    i
                } else {
                    let victim = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.as_ref().map(|e| e.lru).unwrap_or(0))
                        .map(|(i, _)| i)
                        .expect("table non-empty");
                    self.evictions += 1;
                    victim
                };
                self.entries[slot] = Some(AllocationEntry {
                    pc,
                    states: vec![PrefetcherState::Unidentified; self.prefetchers],
                    lru: clock,
                });
                slot
            }
        };
        let entry = self.entries[slot].as_mut().expect("slot filled above");
        entry.lru = clock;
        &self.entries[slot].as_ref().expect("slot filled above").states
    }

    /// Returns the states of `pc` without allocating, if present.
    #[must_use]
    pub fn get(&self, pc: Pc) -> Option<&[PrefetcherState]> {
        self.find(pc)
            .map(|i| self.entries[i].as_ref().expect("found index is occupied").states.as_slice())
    }

    /// Resets every prefetcher of `pc` back to UI (the dead-counter recovery
    /// path of §IV-C). Does nothing if the PC is not tracked.
    pub fn reset_to_unidentified(&mut self, pc: Pc) {
        if let Some(i) = self.find(pc) {
            let entry = self.entries[i].as_mut().expect("found index is occupied");
            for s in &mut entry.states {
                *s = PrefetcherState::Unidentified;
            }
        }
    }

    /// Applies one epoch-boundary transition for `pc` given each prefetcher's
    /// measured accuracy and whether it is a temporal prefetcher.
    ///
    /// Returns the new states (empty if the PC is untracked).
    pub fn epoch_transition(
        &mut self,
        pc: Pc,
        accuracies: &[Option<f64>],
        is_temporal: &[bool],
        config: &AlectoConfig,
    ) -> Vec<PrefetcherState> {
        let Some(i) = self.find(pc) else {
            return Vec::new();
        };
        let entry = self.entries[i].as_mut().expect("found index is occupied");
        assert_eq!(accuracies.len(), entry.states.len(), "one accuracy per prefetcher");
        assert_eq!(is_temporal.len(), entry.states.len(), "one temporal flag per prefetcher");

        let pb = config.proficiency_boundary;
        // Which prefetchers qualify for promotion this epoch?
        let promotable: Vec<bool> = entry
            .states
            .iter()
            .zip(accuracies)
            .map(|(s, acc)| {
                matches!(s, PrefetcherState::Unidentified) && acc.map(|a| a >= pb).unwrap_or(false)
            })
            .collect();
        let non_temporal_promotable = promotable.iter().zip(is_temporal).any(|(&p, &t)| p && !t);
        let any_promotable = promotable.iter().any(|&p| p);

        let mut new_states: Vec<PrefetcherState> = entry
            .states
            .iter()
            .enumerate()
            .map(|(j, &s)| {
                let input = StateTransitionInput {
                    accuracy: accuracies[j],
                    another_promoted: any_promotable && !promotable[j],
                    temporal_demotion: promotable[j] && is_temporal[j] && non_temporal_promotable,
                };
                transition(s, input, config)
            })
            .collect();

        // Event ②/③ follow-up: if no prefetcher remains aggressive, thawed
        // (IB_0) prefetchers are reconsidered, i.e. moved back to UI.
        let any_aggressive = new_states.iter().any(PrefetcherState::is_aggressive);
        if !any_aggressive {
            for s in &mut new_states {
                if *s == PrefetcherState::Blocked(0) {
                    *s = PrefetcherState::Unidentified;
                }
            }
        }
        entry.states = new_states.clone();
        new_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AlectoConfig {
        AlectoConfig::default()
    }

    #[test]
    fn new_pc_starts_all_unidentified() {
        let mut t = AllocationTable::new(64, 3);
        let states = t.lookup_or_insert(Pc::new(0x40));
        assert_eq!(states, &[PrefetcherState::Unidentified; 3]);
        assert_eq!(t.prefetchers(), 3);
    }

    #[test]
    fn promotion_blocks_the_losers() {
        let mut t = AllocationTable::new(64, 3);
        t.lookup_or_insert(Pc::new(0x40));
        let states = t.epoch_transition(
            Pc::new(0x40),
            &[Some(0.9), Some(0.3), Some(0.5)],
            &[false, false, false],
            &cfg(),
        );
        assert_eq!(states[0], PrefetcherState::Aggressive(0));
        assert_eq!(states[1], PrefetcherState::Blocked(0));
        assert_eq!(states[2], PrefetcherState::Blocked(0));
    }

    #[test]
    fn temporal_prefetcher_loses_ties_to_non_temporal() {
        let mut t = AllocationTable::new(64, 2);
        t.lookup_or_insert(Pc::new(0x44));
        let states =
            t.epoch_transition(Pc::new(0x44), &[Some(0.9), Some(0.95)], &[false, true], &cfg());
        assert_eq!(states[0], PrefetcherState::Aggressive(0));
        assert_eq!(states[1], PrefetcherState::Blocked(0), "temporal prefetcher should be demoted");
    }

    #[test]
    fn temporal_prefetcher_promotes_when_alone() {
        let mut t = AllocationTable::new(64, 2);
        t.lookup_or_insert(Pc::new(0x48));
        let states =
            t.epoch_transition(Pc::new(0x48), &[Some(0.2), Some(0.95)], &[false, true], &cfg());
        assert_eq!(states[1], PrefetcherState::Aggressive(0));
    }

    #[test]
    fn deficient_prefetcher_blocked_for_n_epochs_then_reconsidered() {
        let cfg = cfg();
        let mut t = AllocationTable::new(64, 2);
        t.lookup_or_insert(Pc::new(0x4c));
        // Epoch 1: prefetcher 0 below DB → IB_-N; prefetcher 1 middling → UI.
        let s = t.epoch_transition(Pc::new(0x4c), &[Some(0.0), Some(0.3)], &[false, false], &cfg);
        assert_eq!(s[0], PrefetcherState::Blocked(cfg.blocked_epochs));
        // Thaw for N epochs with no other activity.
        for _ in 0..cfg.blocked_epochs {
            t.epoch_transition(Pc::new(0x4c), &[None, None], &[false, false], &cfg);
        }
        // Having reached IB_0 with no aggressive prefetcher, it is reconsidered.
        let s = t.get(Pc::new(0x4c)).unwrap();
        assert_eq!(s[0], PrefetcherState::Unidentified);
    }

    #[test]
    fn blocked_prefetcher_stays_blocked_while_another_is_aggressive() {
        let cfg = cfg();
        let mut t = AllocationTable::new(64, 2);
        t.lookup_or_insert(Pc::new(0x50));
        // Prefetcher 0 promoted, prefetcher 1 blocked.
        t.epoch_transition(Pc::new(0x50), &[Some(0.9), Some(0.2)], &[false, false], &cfg);
        // Many epochs with prefetcher 0 staying accurate.
        for _ in 0..12 {
            t.epoch_transition(Pc::new(0x50), &[Some(0.9), None], &[false, false], &cfg);
        }
        let s = t.get(Pc::new(0x50)).unwrap();
        assert!(s[0].is_aggressive());
        assert_eq!(
            s[1],
            PrefetcherState::Blocked(0),
            "IB_0 is held while another prefetcher is IA"
        );
    }

    #[test]
    fn reset_to_unidentified_clears_states() {
        let mut t = AllocationTable::new(64, 3);
        t.lookup_or_insert(Pc::new(0x54));
        t.epoch_transition(Pc::new(0x54), &[Some(0.9), Some(0.0), Some(0.0)], &[false; 3], &cfg());
        t.reset_to_unidentified(Pc::new(0x54));
        assert_eq!(t.get(Pc::new(0x54)).unwrap(), &[PrefetcherState::Unidentified; 3]);
        // Resetting an unknown PC is a no-op.
        t.reset_to_unidentified(Pc::new(0xdead));
    }

    #[test]
    fn capacity_eviction_forgets_oldest_pc() {
        let mut t = AllocationTable::new(4, 1);
        for pc in 0..6u64 {
            t.lookup_or_insert(Pc::new(pc));
        }
        assert!(t.evictions() >= 2);
        assert!(t.get(Pc::new(0)).is_none(), "oldest PC should have been evicted");
        assert!(t.get(Pc::new(5)).is_some());
    }

    #[test]
    fn untracked_pc_transition_is_empty() {
        let mut t = AllocationTable::new(8, 2);
        let s = t.epoch_transition(Pc::new(0x99), &[None, None], &[false, false], &cfg());
        assert!(s.is_empty());
    }

    #[test]
    fn aggressive_climb_through_epochs() {
        let cfg = cfg();
        let mut t = AllocationTable::new(8, 1);
        t.lookup_or_insert(Pc::new(0x58));
        for _ in 0..8 {
            t.epoch_transition(Pc::new(0x58), &[Some(0.95)], &[false], &cfg);
        }
        assert_eq!(
            t.get(Pc::new(0x58)).unwrap()[0],
            PrefetcherState::Aggressive(cfg.max_aggressive)
        );
    }
}
