//! [`AlectoSelector`]: the complete Alecto framework wired together as a
//! [`selectors::Selector`], following the process of §III-C:
//!
//! 1. the demand request (PC + address) is presented to the Allocation Table
//!    (step ①) and to the Sandbox Table (step ④),
//! 2. the Allocation Table emits an identifier describing which prefetchers
//!    may train and with what degree (step ②),
//! 3. the selected prefetchers' issued requests update the Sandbox and Sample
//!    Tables (step ③/⑤),
//! 4. the Sandbox Table filters duplicate prefetch requests before they reach
//!    the prefetch queue (step ⑥).

use alecto_types::{DemandAccess, PrefetchRequest};
use prefetch::Prefetcher;
use selectors::{AllocationDecision, DegreeAllocation, Selector};

use crate::allocation_table::AllocationTable;
use crate::config::AlectoConfig;
use crate::sample_table::{SampleEvent, SampleTable};
use crate::sandbox_table::SandboxTable;
use crate::state::PrefetcherState;
use crate::storage::storage_breakdown;

/// Runtime counters exposed for analysis and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlectoStats {
    /// Epoch-boundary state transitions executed.
    pub epoch_transitions: u64,
    /// Dead-counter deadlock resets executed.
    pub deadlock_resets: u64,
    /// Demand requests withheld from at least one prefetcher (the essence of
    /// dynamic demand request allocation).
    pub allocations_withheld: u64,
    /// Total demand requests observed.
    pub demands: u64,
}

/// The Alecto prefetcher-selection framework.
#[derive(Debug, Clone)]
pub struct AlectoSelector {
    config: AlectoConfig,
    prefetcher_count: usize,
    allocation: AllocationTable,
    sample: SampleTable,
    sandbox: SandboxTable,
    is_temporal: Vec<bool>,
    stats: AlectoStats,
}

impl AlectoSelector {
    /// Creates an Alecto selector for a composite of `prefetcher_count`
    /// prefetchers.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`AlectoConfig::validate`])
    /// or `prefetcher_count` is zero.
    #[must_use]
    pub fn new(config: AlectoConfig, prefetcher_count: usize) -> Self {
        config.validate();
        assert!(prefetcher_count > 0, "Alecto needs at least one prefetcher to schedule");
        Self {
            allocation: AllocationTable::new(config.allocation_entries, prefetcher_count),
            sample: SampleTable::new(config.sample_entries, prefetcher_count),
            sandbox: SandboxTable::new(config.sandbox_entries, prefetcher_count),
            is_temporal: vec![false; prefetcher_count],
            prefetcher_count,
            config,
            stats: AlectoStats::default(),
        }
    }

    /// Creates an Alecto selector with the paper's default parameters.
    #[must_use]
    pub fn default_config(prefetcher_count: usize) -> Self {
        Self::new(AlectoConfig::default(), prefetcher_count)
    }

    /// Configuration in use.
    #[must_use]
    pub const fn config(&self) -> &AlectoConfig {
        &self.config
    }

    /// Runtime statistics.
    #[must_use]
    pub const fn stats(&self) -> &AlectoStats {
        &self.stats
    }

    /// The current state of every prefetcher for `pc`, if tracked.
    #[must_use]
    pub fn states_of(&self, pc: alecto_types::Pc) -> Option<&[PrefetcherState]> {
        self.allocation.get(pc)
    }

    /// Read-only access to the Sandbox Table (diagnostics).
    #[must_use]
    pub const fn sandbox(&self) -> &SandboxTable {
        &self.sandbox
    }

    fn decision_for_state(&self, state: PrefetcherState) -> Option<DegreeAllocation> {
        let c = self.config.conservative_degree;
        match state {
            PrefetcherState::Unidentified => Some(DegreeAllocation::l1(c)),
            PrefetcherState::Aggressive(m) => match self.config.fixed_ia_degree {
                Some(fixed) => Some(DegreeAllocation::l1(fixed)),
                None => Some(DegreeAllocation::split(c, m + 1)),
            },
            PrefetcherState::Blocked(_) => None,
        }
    }
}

impl Selector for AlectoSelector {
    fn name(&self) -> &'static str {
        if self.config.fixed_ia_degree.is_some() {
            "Alecto_fix"
        } else {
            "Alecto"
        }
    }

    fn allocate(
        &mut self,
        access: &DemandAccess,
        prefetchers: &[Box<dyn Prefetcher>],
    ) -> AllocationDecision {
        assert_eq!(
            prefetchers.len(),
            self.prefetcher_count,
            "Alecto was configured for {} prefetchers but the composite has {}",
            self.prefetcher_count,
            prefetchers.len()
        );
        // Learn which composite slots hold temporal prefetchers (cheap and
        // idempotent; avoids a separate configuration step).
        for (flag, pf) in self.is_temporal.iter_mut().zip(prefetchers) {
            *flag = pf.is_temporal();
        }
        self.stats.demands += 1;

        // Step ④/⑤: confirm earlier prefetches that this demand request hits.
        for pf_idx in self.sandbox.confirm_demand(access.line(), access.pc) {
            self.sample.record_confirmed(access.pc, pf_idx);
        }

        // Step ①: per-PC demand counting, epoch transitions, deadlock resets.
        match self.sample.record_demand(access.pc, &self.config) {
            SampleEvent::EpochBoundary => {
                let accuracies = self.sample.accuracies(access.pc);
                self.allocation.lookup_or_insert(access.pc);
                self.allocation.epoch_transition(
                    access.pc,
                    &accuracies,
                    &self.is_temporal,
                    &self.config,
                );
                self.sample.reset_epoch(access.pc);
                self.stats.epoch_transitions += 1;
            }
            SampleEvent::DeadlockReset => {
                self.allocation.reset_to_unidentified(access.pc);
                self.stats.deadlock_resets += 1;
            }
            SampleEvent::None => {}
        }

        // Step ②: build the identifier from the per-prefetcher states.
        let states: Vec<PrefetcherState> = self.allocation.lookup_or_insert(access.pc).to_vec();
        let per_prefetcher: Vec<Option<DegreeAllocation>> =
            states.iter().map(|&s| self.decision_for_state(s)).collect();
        if per_prefetcher.iter().any(Option::is_none) {
            self.stats.allocations_withheld += 1;
        }
        AllocationDecision { per_prefetcher }
    }

    fn select_requests(
        &mut self,
        access: &DemandAccess,
        candidates: Vec<PrefetchRequest>,
    ) -> Vec<PrefetchRequest> {
        // Step ③ + ⑥: the Sandbox Table drops duplicates and records the
        // rest; the Sample Table's Issued counters count the requests that
        // actually reach the prefetch queue (a request whose line is already
        // pending is not a new issue, though its issuer is still remembered in
        // the sandbox entry so a later demand hit can confirm it).
        let mut issued_per_prefetcher = vec![0u32; self.prefetcher_count];
        let mut out = Vec::with_capacity(candidates.len());
        for req in candidates {
            let duplicate =
                self.sandbox.filter_and_record(req.line, req.issuer.index(), req.trigger_pc);
            if !duplicate {
                // §IV-B: the first c (surviving) lines of a prefetcher fill the
                // cache the prefetchers reside in; the extra lines granted by
                // the IA_m state fill the next-level cache.
                let fill = if self.config.fixed_ia_degree.is_some()
                    || issued_per_prefetcher[req.issuer.index()] < self.config.conservative_degree
                {
                    alecto_types::FillLevel::L1
                } else {
                    alecto_types::FillLevel::L2
                };
                issued_per_prefetcher[req.issuer.index()] += 1;
                out.push(req.with_fill_level(fill));
            }
        }
        for (i, count) in issued_per_prefetcher.into_iter().enumerate() {
            self.sample.record_issued(access.pc, i, count);
        }

        // Dead-counter bookkeeping: did this prediction produce any prefetch?
        self.sample.record_prediction_outcome(access.pc, !out.is_empty());
        out
    }

    fn needs_external_filter(&self) -> bool {
        // The Sandbox Table already is the prefetch filter (step ⑥).
        false
    }

    fn storage_bits(&self) -> u64 {
        storage_breakdown(&self.config, self.prefetcher_count).total_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::{Addr, LineAddr, Pc, PrefetcherId};
    use prefetch::{build_composite, CompositeKind};

    fn access(pc: u64, line: u64) -> DemandAccess {
        DemandAccess::load(Pc::new(pc), Addr::new(line * 64))
    }

    fn req(issuer: usize, pc: u64, line: u64) -> PrefetchRequest {
        PrefetchRequest::new(LineAddr::new(line), Pc::new(pc), PrefetcherId(issuer))
    }

    /// Runs one epoch of demand accesses for `pc` where prefetcher `good`
    /// always issues prefetches that are later confirmed and prefetcher `bad`
    /// issues prefetches that never are.
    fn run_epoch(
        alecto: &mut AlectoSelector,
        prefetchers: &[Box<dyn Prefetcher>],
        pc: u64,
        good: usize,
        bad: usize,
    ) {
        let epoch = alecto.config().epoch_demands;
        for i in 0..epoch as u64 {
            let a = access(pc, 1_000 + i);
            let _ = alecto.allocate(&a, prefetchers);
            // The good prefetcher prefetches exactly the next line the PC will
            // touch; the bad prefetcher prefetches garbage far away.
            let requests = vec![req(good, pc, 1_000 + i + 1), req(bad, pc, 900_000 + i * 17)];
            let _ = alecto.select_requests(&a, requests);
        }
    }

    #[test]
    fn fresh_pc_gets_conservative_allocation_for_everyone() {
        let mut alecto = AlectoSelector::default_config(3);
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        let d = alecto.allocate(&access(0x40, 10), &prefetchers);
        assert_eq!(d.allocated_count(), 3);
        for a in d.per_prefetcher.iter().flatten() {
            assert_eq!(a.total, 3);
            assert_eq!(a.l1_portion, 3);
        }
    }

    #[test]
    fn accurate_prefetcher_promoted_and_inaccurate_blocked_after_an_epoch() {
        let mut alecto = AlectoSelector::default_config(3);
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        run_epoch(&mut alecto, &prefetchers, 0x80, 1, 2);
        // One more access so the post-epoch states are visible in a decision.
        let d = alecto.allocate(&access(0x80, 50_000), &prefetchers);
        let states = alecto.states_of(Pc::new(0x80)).unwrap();
        assert!(states[1].is_aggressive(), "the confirmed prefetcher should be IA: {states:?}");
        assert!(states[2].is_blocked(), "the useless prefetcher should be IB: {states:?}");
        assert!(d.per_prefetcher[2].is_none(), "blocked prefetchers receive no demand requests");
        assert!(alecto.stats().epoch_transitions >= 1);
        assert!(alecto.stats().allocations_withheld >= 1);
    }

    #[test]
    fn aggressive_prefetcher_gets_split_degree() {
        let mut alecto = AlectoSelector::default_config(3);
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        // Two epochs of perfect behaviour for prefetcher 0 → IA_1.
        run_epoch(&mut alecto, &prefetchers, 0x84, 0, 2);
        run_epoch(&mut alecto, &prefetchers, 0x84, 0, 2);
        let d = alecto.allocate(&access(0x84, 123_456), &prefetchers);
        let alloc = d.per_prefetcher[0].expect("IA prefetcher is allocated");
        let c = alecto.config().conservative_degree;
        assert_eq!(alloc.l1_portion, c, "c lines go to the L1");
        assert!(alloc.total > c, "the m+1 extra lines go to the next level: {alloc:?}");
    }

    #[test]
    fn fixed_degree_ablation_uses_flat_degree() {
        let mut alecto = AlectoSelector::new(AlectoConfig::fixed_degree(6), 3);
        assert_eq!(alecto.name(), "Alecto_fix");
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        run_epoch(&mut alecto, &prefetchers, 0x88, 0, 2);
        let d = alecto.allocate(&access(0x88, 77_000), &prefetchers);
        let alloc = d.per_prefetcher[0].expect("IA prefetcher is allocated");
        assert_eq!(alloc.total, 6);
        assert_eq!(alloc.l1_portion, 6);
    }

    #[test]
    fn sandbox_filters_duplicate_requests() {
        let mut alecto = AlectoSelector::default_config(3);
        let a = access(0x8c, 10);
        let out = alecto.select_requests(&a, vec![req(0, 0x8c, 500), req(1, 0x8c, 500)]);
        assert_eq!(out.len(), 1, "the second request to the same line is a duplicate");
        let out = alecto.select_requests(&a, vec![req(2, 0x8c, 500)]);
        assert!(out.is_empty(), "later duplicates are also dropped");
        assert!(!alecto.needs_external_filter());
    }

    #[test]
    fn deadlock_reset_returns_states_to_ui() {
        let mut alecto = AlectoSelector::default_config(3);
        let prefetchers = build_composite(CompositeKind::GsCsPmp);
        // Promote prefetcher 0 first.
        run_epoch(&mut alecto, &prefetchers, 0x90, 0, 2);
        assert!(alecto.states_of(Pc::new(0x90)).unwrap()[0].is_aggressive());
        // Now the PC keeps accessing but no prefetcher ever emits anything:
        // the dead counter climbs until the states reset.
        let threshold = alecto.config().dead_threshold;
        for i in 0..(threshold + 5) as u64 {
            let a = access(0x90, 200_000 + i);
            let _ = alecto.allocate(&a, &prefetchers);
            let _ = alecto.select_requests(&a, Vec::new());
        }
        assert!(alecto.stats().deadlock_resets >= 1);
        let states = alecto.states_of(Pc::new(0x90)).unwrap();
        assert!(states.iter().all(|s| *s == PrefetcherState::Unidentified));
    }

    #[test]
    fn temporal_prefetcher_demoted_when_non_temporal_equally_good() {
        let mut alecto = AlectoSelector::default_config(4);
        let prefetchers =
            build_composite(CompositeKind::GsCsPmpTemporal { metadata_bytes: 64 * 1024 });
        // Both prefetcher 1 (stride, non-temporal) and 3 (temporal) are always
        // confirmed; prefetcher 2 is useless.
        let epoch = alecto.config().epoch_demands;
        for i in 0..epoch as u64 {
            let a = access(0x94, 3_000 + i);
            let _ = alecto.allocate(&a, &prefetchers);
            let requests = vec![
                req(1, 0x94, 3_000 + i + 1),
                req(3, 0x94, 3_000 + i + 2),
                req(2, 0x94, 700_000 + i),
            ];
            let _ = alecto.select_requests(&a, requests);
        }
        let _ = alecto.allocate(&access(0x94, 999_999), &prefetchers);
        let states = alecto.states_of(Pc::new(0x94)).unwrap();
        assert!(states[1].is_aggressive(), "non-temporal winner: {states:?}");
        assert!(
            states[3].is_blocked(),
            "temporal prefetcher should be demoted in favour of the non-temporal one: {states:?}"
        );
    }

    #[test]
    fn storage_matches_table3() {
        let alecto = AlectoSelector::default_config(3);
        assert_eq!(alecto.storage_bits(), 5312 + 1792 * 3);
        assert_eq!(alecto.name(), "Alecto");
    }

    #[test]
    #[should_panic(expected = "configured for 3 prefetchers")]
    fn mismatched_composite_size_panics() {
        let mut alecto = AlectoSelector::default_config(3);
        let prefetchers = build_composite(CompositeKind::PmpOnly);
        let _ = alecto.allocate(&access(1, 1), &prefetchers);
    }
}
