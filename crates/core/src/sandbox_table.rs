//! The Sandbox Table (Fig. 4): a small, address-indexed record of recently
//! issued prefetch requests.
//!
//! It serves the two purposes described in §III-B and §IV-D:
//!
//! 1. **Usefulness confirmation** — when a later demand request matches an
//!    entry's tag and its (hashed) PC matches the PC recorded for a
//!    prefetcher, that prefetcher's Confirmed counter in the Sample Table is
//!    incremented (step ⑤).
//! 2. **Prefetch filtering** — a new prefetch request whose address already
//!    hits in the table is a duplicate and is dropped (step ⑥), which is why
//!    Alecto does not need the external prefetch filter the baselines get.

use alecto_types::{fold_pc, hash::mix64, LineAddr, Pc};

/// Per-prefetcher slot inside a sandbox entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PrefetcherSlot {
    valid: bool,
    pc_hash: u32,
}

#[derive(Debug, Clone)]
struct SandboxEntry {
    /// Partial tag of the prefetched line (6 bits in Table III; the model
    /// keeps the full line address for exactness and charges only 6 bits).
    line: LineAddr,
    slots: Vec<PrefetcherSlot>,
}

/// The address-indexed Sandbox Table.
#[derive(Debug, Clone)]
pub struct SandboxTable {
    entries: Vec<Option<SandboxEntry>>,
    prefetchers: usize,
    pc_hash_bits: u32,
    recorded: u64,
    filtered: u64,
    confirmations: u64,
}

impl SandboxTable {
    /// Creates a sandbox table with `entries` direct-mapped slots for
    /// `prefetchers` prefetchers.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two, or `prefetchers` is zero.
    #[must_use]
    pub fn new(entries: usize, prefetchers: usize) -> Self {
        assert!(entries > 0 && entries.is_power_of_two(), "sandbox table must be a power of two");
        assert!(prefetchers > 0, "sandbox table needs at least one prefetcher");
        // §IV-C: the PC hash width matches the logarithm of the entry count.
        let pc_hash_bits = entries.trailing_zeros().max(1);
        Self {
            entries: vec![None; entries],
            prefetchers,
            pc_hash_bits,
            recorded: 0,
            filtered: 0,
            confirmations: 0,
        }
    }

    /// Width of the folded PC hash stored per prefetcher slot.
    #[must_use]
    pub const fn pc_hash_bits(&self) -> u32 {
        self.pc_hash_bits
    }

    /// Prefetch requests recorded.
    #[must_use]
    pub const fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Prefetch requests dropped as duplicates.
    #[must_use]
    pub const fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Demand-request confirmations produced.
    #[must_use]
    pub const fn confirmations(&self) -> u64 {
        self.confirmations
    }

    fn index(&self, line: LineAddr) -> usize {
        (mix64(line.raw()) as usize) & (self.entries.len() - 1)
    }

    /// Step ⑥: returns `true` (duplicate, drop the request) if `line` already
    /// hits in the table; otherwise records the request for `prefetcher`
    /// triggered by `trigger_pc` and returns `false`.
    pub fn filter_and_record(&mut self, line: LineAddr, prefetcher: usize, trigger_pc: Pc) -> bool {
        assert!(prefetcher < self.prefetchers, "prefetcher index out of range");
        let idx = self.index(line);
        let pc_hash = fold_pc(trigger_pc, self.pc_hash_bits);
        match &mut self.entries[idx] {
            Some(e) if e.line == line => {
                // Tag hit: duplicate. Still remember that this prefetcher also
                // wanted the line so it can be credited on confirmation.
                e.slots[prefetcher] = PrefetcherSlot { valid: true, pc_hash };
                self.filtered += 1;
                true
            }
            slot => {
                let mut slots = vec![PrefetcherSlot::default(); self.prefetchers];
                slots[prefetcher] = PrefetcherSlot { valid: true, pc_hash };
                *slot = Some(SandboxEntry { line, slots });
                self.recorded += 1;
                false
            }
        }
    }

    /// Step ④/⑤: checks an incoming demand request against the table and
    /// returns the indices of prefetchers whose recorded (hashed) trigger PC
    /// matches the demand's PC — these get a Confirmed increment.
    pub fn confirm_demand(&mut self, line: LineAddr, pc: Pc) -> Vec<usize> {
        let idx = self.index(line);
        let pc_hash = fold_pc(pc, self.pc_hash_bits);
        let Some(entry) = &self.entries[idx] else {
            return Vec::new();
        };
        if entry.line != line {
            return Vec::new();
        }
        let matched: Vec<usize> = entry
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid && s.pc_hash == pc_hash)
            .map(|(i, _)| i)
            .collect();
        self.confirmations += matched.len() as u64;
        matched
    }

    /// Number of currently valid entries (diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_confirm_matching_pc() {
        let mut t = SandboxTable::new(512, 3);
        let pc = Pc::new(0x30b00);
        assert!(!t.filter_and_record(LineAddr::new(100), 2, pc));
        let matched = t.confirm_demand(LineAddr::new(100), pc);
        assert_eq!(matched, vec![2]);
        assert_eq!(t.confirmations(), 1);
    }

    #[test]
    fn mismatched_pc_does_not_confirm() {
        let mut t = SandboxTable::new(512, 3);
        t.filter_and_record(LineAddr::new(100), 1, Pc::new(0x30b00));
        let matched = t.confirm_demand(LineAddr::new(100), Pc::new(0x30aca));
        assert!(matched.is_empty());
    }

    #[test]
    fn duplicate_prefetch_is_filtered() {
        let mut t = SandboxTable::new(512, 3);
        assert!(!t.filter_and_record(LineAddr::new(7), 0, Pc::new(0x10)));
        assert!(t.filter_and_record(LineAddr::new(7), 1, Pc::new(0x20)));
        assert_eq!(t.filtered(), 1);
        assert_eq!(t.recorded(), 1);
        // Both prefetchers can now be confirmed by their own PCs.
        assert_eq!(t.confirm_demand(LineAddr::new(7), Pc::new(0x10)), vec![0]);
        assert_eq!(t.confirm_demand(LineAddr::new(7), Pc::new(0x20)), vec![1]);
    }

    #[test]
    fn unknown_line_confirms_nothing() {
        let mut t = SandboxTable::new(64, 2);
        assert!(t.confirm_demand(LineAddr::new(1234), Pc::new(0x40)).is_empty());
    }

    #[test]
    fn conflicting_lines_overwrite_direct_mapped_slot() {
        let mut t = SandboxTable::new(2, 1);
        // With only two slots, inserting many lines must overwrite earlier ones
        // without panicking, and occupancy never exceeds the entry count.
        for i in 0..64u64 {
            t.filter_and_record(LineAddr::new(i * 977), 0, Pc::new(0x40));
        }
        assert!(t.occupancy() <= 2);
    }

    #[test]
    fn pc_hash_width_follows_entry_count() {
        assert_eq!(SandboxTable::new(512, 3).pc_hash_bits(), 9);
        assert_eq!(SandboxTable::new(64, 3).pc_hash_bits(), 6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = SandboxTable::new(100, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_prefetcher_panics() {
        let mut t = SandboxTable::new(64, 2);
        t.filter_and_record(LineAddr::new(1), 5, Pc::new(1));
    }
}
