//! The Sample Table (Fig. 4): per-PC runtime metrics feeding the Allocation
//! Table's state transitions.
//!
//! Each entry tracks, for its PC: the number of prefetches issued by each
//! prefetcher ("IssuedByP_i"), how many of them were confirmed by later demand
//! requests ("ConfirmedP_i"), the Demand Counter that defines the per-PC epoch
//! (threshold 100), and the Dead Counter that detects PCs stuck in an IA state
//! without producing prefetches (threshold 150).

use alecto_types::{Pc, RatioCounter};

use crate::config::AlectoConfig;

#[derive(Debug, Clone)]
struct SampleEntry {
    pc: Pc,
    per_prefetcher: Vec<RatioCounter>,
    demand_counter: u32,
    dead_counter: u32,
    lru: u64,
}

/// What the Sample Table asks the selector to do after recording a demand
/// access for a PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleEvent {
    /// Keep going; no threshold reached.
    None,
    /// The Demand Counter reached the epoch length: run an Allocation Table
    /// state transition with the accuracies included here (indexed per
    /// prefetcher; `None` means the prefetcher issued nothing this epoch).
    EpochBoundary,
    /// The Dead Counter saturated: reset the PC's states back to UI.
    DeadlockReset,
}

/// The PC-indexed Sample Table.
#[derive(Debug, Clone)]
pub struct SampleTable {
    entries: Vec<Option<SampleEntry>>,
    prefetchers: usize,
    lru_clock: u64,
    evictions: u64,
}

impl SampleTable {
    /// Creates a sample table for `prefetchers` prefetchers.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `prefetchers` is zero.
    #[must_use]
    pub fn new(entries: usize, prefetchers: usize) -> Self {
        assert!(entries > 0, "sample table needs entries");
        assert!(prefetchers > 0, "sample table needs at least one prefetcher");
        Self { entries: vec![None; entries], prefetchers, lru_clock: 0, evictions: 0 }
    }

    /// Number of entries evicted due to capacity pressure.
    #[must_use]
    pub const fn evictions(&self) -> u64 {
        self.evictions
    }

    fn find(&self, pc: Pc) -> Option<usize> {
        self.entries.iter().position(|e| e.as_ref().map(|e| e.pc) == Some(pc))
    }

    fn slot_for(&mut self, pc: Pc) -> usize {
        if let Some(i) = self.find(pc) {
            return i;
        }
        let slot = if let Some(i) = self.entries.iter().position(Option::is_none) {
            i
        } else {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.as_ref().map(|e| e.lru).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("table non-empty");
            self.evictions += 1;
            victim
        };
        self.entries[slot] = Some(SampleEntry {
            pc,
            per_prefetcher: vec![RatioCounter::new(); self.prefetchers],
            demand_counter: 0,
            dead_counter: 0,
            lru: 0,
        });
        slot
    }

    /// Records one demand access from `pc` and returns what (if anything) the
    /// selector must do in response.
    pub fn record_demand(&mut self, pc: Pc, config: &AlectoConfig) -> SampleEvent {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let slot = self.slot_for(pc);
        let entry = self.entries[slot].as_mut().expect("slot filled above");
        entry.lru = clock;
        entry.demand_counter += 1;
        if entry.dead_counter >= config.dead_threshold {
            entry.dead_counter = 0;
            return SampleEvent::DeadlockReset;
        }
        if entry.demand_counter >= config.epoch_demands {
            return SampleEvent::EpochBoundary;
        }
        SampleEvent::None
    }

    /// Records `count` prefetch requests issued by prefetcher `prefetcher` on
    /// behalf of `pc`.
    pub fn record_issued(&mut self, pc: Pc, prefetcher: usize, count: u32) {
        if count == 0 {
            return;
        }
        let slot = self.slot_for(pc);
        let entry = self.entries[slot].as_mut().expect("slot filled above");
        entry.per_prefetcher[prefetcher].record_issued(count);
    }

    /// Records that a previously issued prefetch of prefetcher `prefetcher`
    /// was confirmed by a demand request from `pc`.
    pub fn record_confirmed(&mut self, pc: Pc, prefetcher: usize) {
        let slot = self.slot_for(pc);
        let entry = self.entries[slot].as_mut().expect("slot filled above");
        entry.per_prefetcher[prefetcher].record_confirmed();
    }

    /// Bumps the Dead Counter (no prefetch was generated for a prediction) or
    /// decays it (a prefetch was generated).
    pub fn record_prediction_outcome(&mut self, pc: Pc, generated_prefetch: bool) {
        let slot = self.slot_for(pc);
        let entry = self.entries[slot].as_mut().expect("slot filled above");
        if generated_prefetch {
            entry.dead_counter = entry.dead_counter.saturating_sub(1);
        } else {
            entry.dead_counter += 1;
        }
    }

    /// Per-prefetcher accuracies of `pc` for the current epoch (`None` for
    /// prefetchers that issued nothing).
    #[must_use]
    pub fn accuracies(&self, pc: Pc) -> Vec<Option<f64>> {
        match self.find(pc) {
            Some(i) => self.entries[i]
                .as_ref()
                .expect("found index occupied")
                .per_prefetcher
                .iter()
                .map(RatioCounter::accuracy)
                .collect(),
            None => vec![None; self.prefetchers],
        }
    }

    /// Clears the per-epoch counters of `pc` (issued/confirmed and the Demand
    /// Counter). The Dead Counter intentionally survives (§IV-C).
    pub fn reset_epoch(&mut self, pc: Pc) {
        if let Some(i) = self.find(pc) {
            let entry = self.entries[i].as_mut().expect("found index occupied");
            for c in &mut entry.per_prefetcher {
                c.reset();
            }
            entry.demand_counter = 0;
        }
    }

    /// Current Dead Counter of `pc` (testing/diagnostics).
    #[must_use]
    pub fn dead_counter(&self, pc: Pc) -> u32 {
        self.find(pc)
            .map(|i| self.entries[i].as_ref().expect("found index occupied").dead_counter)
            .unwrap_or(0)
    }

    /// Current Demand Counter of `pc` (testing/diagnostics).
    #[must_use]
    pub fn demand_counter(&self, pc: Pc) -> u32 {
        self.find(pc)
            .map(|i| self.entries[i].as_ref().expect("found index occupied").demand_counter)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AlectoConfig {
        AlectoConfig::default()
    }

    #[test]
    fn epoch_boundary_after_100_demands() {
        let mut t = SampleTable::new(64, 3);
        let pc = Pc::new(0x40);
        for i in 1..100 {
            assert_eq!(t.record_demand(pc, &cfg()), SampleEvent::None, "demand {i}");
        }
        assert_eq!(t.record_demand(pc, &cfg()), SampleEvent::EpochBoundary);
        assert_eq!(t.demand_counter(pc), 100);
        t.reset_epoch(pc);
        assert_eq!(t.demand_counter(pc), 0);
    }

    #[test]
    fn accuracy_tracks_issued_and_confirmed() {
        let mut t = SampleTable::new(64, 2);
        let pc = Pc::new(0x44);
        t.record_issued(pc, 0, 4);
        t.record_confirmed(pc, 0);
        t.record_confirmed(pc, 0);
        t.record_issued(pc, 1, 10);
        let acc = t.accuracies(pc);
        assert_eq!(acc[0], Some(0.5));
        assert_eq!(acc[1], Some(0.0));
        // Unknown PC yields all-None.
        assert_eq!(t.accuracies(Pc::new(0x9999)), vec![None, None]);
    }

    #[test]
    fn epoch_reset_clears_ratio_but_not_dead_counter() {
        let mut t = SampleTable::new(64, 1);
        let pc = Pc::new(0x48);
        t.record_issued(pc, 0, 8);
        for _ in 0..5 {
            t.record_prediction_outcome(pc, false);
        }
        t.reset_epoch(pc);
        assert_eq!(t.accuracies(pc)[0], None);
        assert_eq!(t.dead_counter(pc), 5, "the Dead Counter is not reset with the epoch");
    }

    #[test]
    fn dead_counter_saturation_triggers_reset_event() {
        let cfg = cfg();
        let mut t = SampleTable::new(64, 1);
        let pc = Pc::new(0x4c);
        for _ in 0..cfg.dead_threshold {
            t.record_prediction_outcome(pc, false);
        }
        // The next demand observes the saturated counter.
        assert_eq!(t.record_demand(pc, &cfg), SampleEvent::DeadlockReset);
        assert_eq!(t.dead_counter(pc), 0, "the reset event clears the dead counter");
    }

    #[test]
    fn successful_predictions_decay_dead_counter() {
        let mut t = SampleTable::new(64, 1);
        let pc = Pc::new(0x50);
        for _ in 0..10 {
            t.record_prediction_outcome(pc, false);
        }
        for _ in 0..4 {
            t.record_prediction_outcome(pc, true);
        }
        assert_eq!(t.dead_counter(pc), 6);
    }

    #[test]
    fn zero_count_issue_is_a_noop() {
        let mut t = SampleTable::new(64, 1);
        let pc = Pc::new(0x54);
        t.record_issued(pc, 0, 0);
        assert_eq!(t.accuracies(pc)[0], None);
    }

    #[test]
    fn capacity_eviction_counts() {
        let mut t = SampleTable::new(4, 1);
        for pc in 0..8u64 {
            t.record_demand(Pc::new(pc), &cfg());
        }
        assert!(t.evictions() >= 4);
    }

    #[test]
    #[should_panic(expected = "needs entries")]
    fn zero_entries_panics() {
        let _ = SampleTable::new(0, 1);
    }
}
