//! The per-PC, per-prefetcher state machine of the Allocation Table (Fig. 5).
//!
//! Every prefetcher is, for a given memory-access instruction, in one of three
//! states:
//!
//! * **UI** (Un-Identified) — suitability unknown; the prefetcher trains with
//!   the conservative degree `c`,
//! * **IA_m** (Identified and Aggressive, m ∈ 0..=M) — the prefetcher is
//!   accurate; it trains with degree `c + m + 1`,
//! * **IB_n** (Identified and Blocked, n ∈ -N..=0) — the prefetcher is
//!   unsuitable; it receives no demand requests while it thaws one sub-state
//!   per epoch.

use crate::config::AlectoConfig;

/// The state of one prefetcher for one memory-access instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PrefetcherState {
    /// Un-Identified: suitability not yet determined.
    #[default]
    Unidentified,
    /// Identified and Aggressive with sub-state `m` (0..=M).
    Aggressive(u32),
    /// Identified and Blocked with sub-state `n` stored as epochs remaining
    /// (N..=0); `Blocked(0)` is the IB_0 state ready for reconsideration.
    Blocked(u32),
}

impl PrefetcherState {
    /// Whether demand requests are currently allocated to the prefetcher.
    #[must_use]
    pub const fn receives_requests(&self) -> bool {
        !matches!(self, PrefetcherState::Blocked(_))
    }

    /// Whether the prefetcher is in any IA sub-state.
    #[must_use]
    pub const fn is_aggressive(&self) -> bool {
        matches!(self, PrefetcherState::Aggressive(_))
    }

    /// Whether the prefetcher is in any IB sub-state.
    #[must_use]
    pub const fn is_blocked(&self) -> bool {
        matches!(self, PrefetcherState::Blocked(_))
    }
}

/// Inputs to one epoch-boundary state transition of a single prefetcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateTransitionInput {
    /// Per-PC prefetching accuracy measured over the epoch, or `None` when the
    /// prefetcher issued nothing (insufficient data).
    pub accuracy: Option<f64>,
    /// Whether *some other* prefetcher qualifies for promotion this epoch
    /// (drives the "remaining prefetchers go to IB_0" part of event ①).
    pub another_promoted: bool,
    /// Whether this prefetcher is denied promotion by the temporal-prefetcher
    /// exception of event ① (a non-temporal prefetcher is being promoted at
    /// the same time).
    pub temporal_demotion: bool,
}

/// Applies one epoch-boundary transition (events ①–④ of Fig. 5) and returns
/// the next state.
#[must_use]
pub fn transition(
    state: PrefetcherState,
    input: StateTransitionInput,
    config: &AlectoConfig,
) -> PrefetcherState {
    let pb = config.proficiency_boundary;
    let db = config.deficiency_boundary;
    match state {
        PrefetcherState::Unidentified => match input.accuracy {
            Some(acc) if acc >= pb => {
                if input.temporal_demotion {
                    // Event ① exception: the temporal prefetcher is demoted in
                    // favour of an equally accurate non-temporal prefetcher.
                    PrefetcherState::Blocked(0)
                } else {
                    PrefetcherState::Aggressive(0)
                }
            }
            Some(acc) if acc < db => PrefetcherState::Blocked(config.blocked_epochs),
            Some(_) | None => {
                if input.another_promoted {
                    // Event ①: prefetchers not meeting PB while another is
                    // promoted are transitioned to IB_0.
                    PrefetcherState::Blocked(0)
                } else {
                    PrefetcherState::Unidentified
                }
            }
        },
        PrefetcherState::Aggressive(m) => match input.accuracy {
            Some(acc) if acc >= pb => {
                // Event ④: promote aggressiveness up to M.
                PrefetcherState::Aggressive((m + 1).min(config.max_aggressive))
            }
            Some(acc) if acc < db && m > 0 => PrefetcherState::Aggressive(m - 1),
            Some(acc) if acc < pb && m == 0 => {
                // Event ②: IA_0 falling below PB returns to UI.
                PrefetcherState::Unidentified
            }
            _ => PrefetcherState::Aggressive(m),
        },
        PrefetcherState::Blocked(n) => {
            if n > 0 {
                // Event ③: thaw one sub-state per epoch.
                PrefetcherState::Blocked(n - 1)
            } else {
                // IB_0 stays blocked; reconsideration to UI is applied by the
                // Allocation Table when no prefetcher remains in IA.
                PrefetcherState::Blocked(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AlectoConfig {
        AlectoConfig::default()
    }

    fn input(acc: Option<f64>) -> StateTransitionInput {
        StateTransitionInput { accuracy: acc, another_promoted: false, temporal_demotion: false }
    }

    #[test]
    fn ui_promotes_above_pb() {
        let next = transition(PrefetcherState::Unidentified, input(Some(0.9)), &cfg());
        assert_eq!(next, PrefetcherState::Aggressive(0));
    }

    #[test]
    fn ui_blocks_below_db() {
        let next = transition(PrefetcherState::Unidentified, input(Some(0.01)), &cfg());
        assert_eq!(next, PrefetcherState::Blocked(8));
    }

    #[test]
    fn ui_stays_with_middling_accuracy_and_no_promotion() {
        let next = transition(PrefetcherState::Unidentified, input(Some(0.4)), &cfg());
        assert_eq!(next, PrefetcherState::Unidentified);
        let next = transition(PrefetcherState::Unidentified, input(None), &cfg());
        assert_eq!(next, PrefetcherState::Unidentified);
    }

    #[test]
    fn ui_goes_to_ib0_when_someone_else_promotes() {
        let i = StateTransitionInput {
            accuracy: Some(0.4),
            another_promoted: true,
            temporal_demotion: false,
        };
        assert_eq!(
            transition(PrefetcherState::Unidentified, i, &cfg()),
            PrefetcherState::Blocked(0)
        );
    }

    #[test]
    fn temporal_exception_demotes_despite_high_accuracy() {
        let i = StateTransitionInput {
            accuracy: Some(0.95),
            another_promoted: true,
            temporal_demotion: true,
        };
        assert_eq!(
            transition(PrefetcherState::Unidentified, i, &cfg()),
            PrefetcherState::Blocked(0)
        );
    }

    #[test]
    fn ia_climbs_and_saturates_at_m() {
        let mut s = PrefetcherState::Aggressive(0);
        for _ in 0..10 {
            s = transition(s, input(Some(0.9)), &cfg());
        }
        assert_eq!(s, PrefetcherState::Aggressive(5));
    }

    #[test]
    fn ia0_returns_to_ui_below_pb() {
        assert_eq!(
            transition(PrefetcherState::Aggressive(0), input(Some(0.5)), &cfg()),
            PrefetcherState::Unidentified
        );
    }

    #[test]
    fn ia_m_steps_down_below_db() {
        assert_eq!(
            transition(PrefetcherState::Aggressive(3), input(Some(0.01)), &cfg()),
            PrefetcherState::Aggressive(2)
        );
    }

    #[test]
    fn ia_m_holds_between_db_and_pb() {
        assert_eq!(
            transition(PrefetcherState::Aggressive(3), input(Some(0.5)), &cfg()),
            PrefetcherState::Aggressive(3)
        );
        // Insufficient data also holds the state.
        assert_eq!(
            transition(PrefetcherState::Aggressive(3), input(None), &cfg()),
            PrefetcherState::Aggressive(3)
        );
    }

    #[test]
    fn ib_thaws_one_epoch_at_a_time() {
        let mut s = PrefetcherState::Blocked(8);
        for expected in (0..8).rev() {
            s = transition(s, input(None), &cfg());
            assert_eq!(s, PrefetcherState::Blocked(expected));
        }
        // IB_0 stays blocked by itself.
        assert_eq!(transition(s, input(Some(0.9)), &cfg()), PrefetcherState::Blocked(0));
    }

    #[test]
    fn state_predicates() {
        assert!(PrefetcherState::Unidentified.receives_requests());
        assert!(PrefetcherState::Aggressive(2).receives_requests());
        assert!(!PrefetcherState::Blocked(0).receives_requests());
        assert!(PrefetcherState::Aggressive(0).is_aggressive());
        assert!(PrefetcherState::Blocked(3).is_blocked());
        assert_eq!(PrefetcherState::default(), PrefetcherState::Unidentified);
    }
}
