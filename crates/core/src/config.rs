//! Alecto configuration parameters (§V-B).

/// Tunable parameters of the Alecto framework. The defaults are the values
/// used throughout the paper's evaluation: N = 8, M = 5, c = 3, PB = 0.75,
/// DB = 0.05, a 100-demand epoch and a dead-counter threshold of 150.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlectoConfig {
    /// N — number of epochs a prefetcher stays blocked after falling below DB.
    pub blocked_epochs: u32,
    /// M — maximum aggressive sub-state (degree bonus) of the IA state.
    pub max_aggressive: u32,
    /// c — conservative prefetching degree used in the UI state and as the
    /// L1-filling portion in the IA state.
    pub conservative_degree: u32,
    /// PB — Proficiency Boundary: per-PC accuracy above which a prefetcher is
    /// promoted.
    pub proficiency_boundary: f64,
    /// DB — Deficiency Boundary: per-PC accuracy below which a prefetcher is
    /// blocked.
    pub deficiency_boundary: f64,
    /// Epoch length in demand accesses per PC (the Demand Counter threshold).
    pub epoch_demands: u32,
    /// Dead Counter threshold after which a PC's states are reset to UI.
    pub dead_threshold: u32,
    /// Allocation Table entries (Table III: 64).
    pub allocation_entries: usize,
    /// Sample Table entries (Table III: 64).
    pub sample_entries: usize,
    /// Sandbox Table entries (Table III: 512).
    pub sandbox_entries: usize,
    /// Ablation mode of §VII-A ("Alecto_fix"): when `Some(d)`, a prefetcher in
    /// any IA state issues exactly `d` prefetches into the L1 instead of the
    /// state-dependent `c + m + 1` split, decoupling DDRA from degree control.
    pub fixed_ia_degree: Option<u32>,
}

impl Default for AlectoConfig {
    fn default() -> Self {
        Self {
            blocked_epochs: 8,
            max_aggressive: 5,
            conservative_degree: 3,
            proficiency_boundary: 0.75,
            deficiency_boundary: 0.05,
            epoch_demands: 100,
            dead_threshold: 150,
            allocation_entries: 64,
            sample_entries: 64,
            sandbox_entries: 512,
            fixed_ia_degree: None,
        }
    }
}

impl AlectoConfig {
    /// The ablation configuration of §VII-A: IA-state prefetchers always issue
    /// 6 prefetches (like Bandit6), isolating the benefit of demand request
    /// allocation from dynamic degree adjustment.
    #[must_use]
    pub fn fixed_degree(degree: u32) -> Self {
        Self { fixed_ia_degree: Some(degree), ..Self::default() }
    }

    /// Largest total degree a prefetcher can be granted (`c + M + 1`), the
    /// value the extended-Bandit comparison of §VI-H enumerates.
    #[must_use]
    pub const fn max_total_degree(&self) -> u32 {
        self.conservative_degree + self.max_aggressive + 1
    }

    /// Validates the configuration, panicking on nonsensical parameters.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not probabilities, if PB ≤ DB, or if any
    /// table is empty.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.proficiency_boundary)
                && (0.0..=1.0).contains(&self.deficiency_boundary),
            "accuracy boundaries must lie in [0, 1]"
        );
        assert!(self.proficiency_boundary > self.deficiency_boundary, "PB must exceed DB");
        assert!(self.epoch_demands > 0, "epoch length must be non-zero");
        assert!(
            self.allocation_entries > 0 && self.sample_entries > 0 && self.sandbox_entries > 0,
            "tables must have at least one entry"
        );
        assert!(
            self.sandbox_entries.is_power_of_two(),
            "sandbox table is direct-mapped and must be a power of two"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AlectoConfig::default();
        assert_eq!(c.blocked_epochs, 8);
        assert_eq!(c.max_aggressive, 5);
        assert_eq!(c.conservative_degree, 3);
        assert!((c.proficiency_boundary - 0.75).abs() < 1e-12);
        assert!((c.deficiency_boundary - 0.05).abs() < 1e-12);
        assert_eq!(c.epoch_demands, 100);
        assert_eq!(c.dead_threshold, 150);
        assert_eq!(c.allocation_entries, 64);
        assert_eq!(c.sample_entries, 64);
        assert_eq!(c.sandbox_entries, 512);
        assert_eq!(c.fixed_ia_degree, None);
        c.validate();
    }

    #[test]
    fn max_total_degree_matches_section_vi_h() {
        // c = 3, M = 5 → degrees 0, 3, 4, ..., 9: maximum 9 = c + M + 1.
        assert_eq!(AlectoConfig::default().max_total_degree(), 9);
    }

    #[test]
    fn fixed_degree_mode() {
        let c = AlectoConfig::fixed_degree(6);
        assert_eq!(c.fixed_ia_degree, Some(6));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "PB must exceed DB")]
    fn invalid_boundaries_panic() {
        AlectoConfig { proficiency_boundary: 0.1, deficiency_boundary: 0.5, ..Default::default() }
            .validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sandbox_panics() {
        AlectoConfig { sandbox_entries: 500, ..Default::default() }.validate();
    }
}
