//! Storage-overhead accounting reproducing Table III.
//!
//! Table III: for `P` prefetchers,
//!
//! * Allocation Table: 64 × (valid 1 + tag 9 + 4·P state bits) = 640 + 256·P,
//! * Sample Table: 64 × (valid 1 + tag 9 + 8·P issued + 8·P confirmed +
//!   7 dead + 8 demand) = 1600 + 1024·P,
//! * Sandbox Table / prefetch filter: 512 × (tag 6 + P valid bits)
//!   = 3072 + 512·P,
//!
//! for a total of 5312 + 1792·P bits (≈ 1.30 KB at P = 3, ≈ 760 B excluding
//! the Sandbox Table, which doubles as the prefetch filter every system needs
//! anyway).

use crate::config::AlectoConfig;

/// Per-structure storage requirement in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// Allocation Table bits.
    pub allocation_table_bits: u64,
    /// Sample Table bits.
    pub sample_table_bits: u64,
    /// Sandbox Table (prefetch filter) bits.
    pub sandbox_table_bits: u64,
}

impl StorageBreakdown {
    /// Total storage in bits.
    #[must_use]
    pub const fn total_bits(&self) -> u64 {
        self.allocation_table_bits + self.sample_table_bits + self.sandbox_table_bits
    }

    /// Total storage in bytes (rounded up).
    #[must_use]
    pub const fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }

    /// Storage excluding the Sandbox Table, the number the paper quotes as
    /// "approximately 760 bytes" for P = 3 because the Sandbox Table replaces
    /// the prefetch filter the system would need regardless.
    #[must_use]
    pub const fn bits_excluding_sandbox(&self) -> u64 {
        self.allocation_table_bits + self.sample_table_bits
    }

    /// Same as [`StorageBreakdown::bits_excluding_sandbox`], in bytes.
    #[must_use]
    pub const fn bytes_excluding_sandbox(&self) -> u64 {
        self.bits_excluding_sandbox().div_ceil(8)
    }
}

/// Computes the Table III storage breakdown for `prefetchers` prefetchers
/// under `config`.
#[must_use]
pub fn storage_breakdown(config: &AlectoConfig, prefetchers: usize) -> StorageBreakdown {
    let p = prefetchers as u64;
    let alloc_entry_bits = 1 + 9 + 4 * p;
    let sample_entry_bits = 1 + 9 + 8 * p + 8 * p + 7 + 8;
    let sandbox_entry_bits = 6 + p;
    StorageBreakdown {
        allocation_table_bits: config.allocation_entries as u64 * alloc_entry_bits,
        sample_table_bits: config.sample_entries as u64 * sample_entry_bits,
        sandbox_table_bits: config.sandbox_entries as u64 * sandbox_entry_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table3_closed_form() {
        let cfg = AlectoConfig::default();
        for p in 1..=6usize {
            let b = storage_breakdown(&cfg, p);
            assert_eq!(b.allocation_table_bits, 640 + 256 * p as u64, "allocation table, P={p}");
            assert_eq!(b.sample_table_bits, 1600 + 1024 * p as u64, "sample table, P={p}");
            assert_eq!(b.sandbox_table_bits, 3072 + 512 * p as u64, "sandbox table, P={p}");
            assert_eq!(b.total_bits(), 5312 + 1792 * p as u64, "total, P={p}");
        }
    }

    #[test]
    fn p3_is_about_1_3_kb_total_and_760_b_excluding_sandbox() {
        let b = storage_breakdown(&AlectoConfig::default(), 3);
        // 5312 + 1792×3 = 10688 bits = 1336 bytes ≈ 1.30 KB.
        assert_eq!(b.total_bits(), 10_688);
        assert_eq!(b.total_bytes(), 1_336);
        // 2240 + 1280×3 = 6080 bits = 760 bytes.
        assert_eq!(b.bits_excluding_sandbox(), 6_080);
        assert_eq!(b.bytes_excluding_sandbox(), 760);
        // The headline claim: under 1 KB of Alecto-specific storage.
        assert!(b.bytes_excluding_sandbox() < 1024);
    }

    #[test]
    fn storage_scales_linearly_not_exponentially() {
        let cfg = AlectoConfig::default();
        let p3 = storage_breakdown(&cfg, 3).total_bits();
        let p6 = storage_breakdown(&cfg, 6).total_bits();
        // Doubling the prefetcher count less than doubles the storage, in
        // contrast to Bandit's #actions^P growth.
        assert!(p6 < 2 * p3);
    }
}
