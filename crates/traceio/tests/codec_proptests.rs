//! Property tests of the `.altr` codec layers: varint and zigzag encodings
//! invert exactly over the full 64-bit ranges, and the block-structured
//! delta codec round-trips arbitrary `MemoryRecord` streams — any PCs, any
//! addresses (including wrapping deltas), any flags, any block size.
//!
//! The registry-wide round trip (every generated benchmark through a real
//! file) lives in the root `tests/traceio_roundtrip.rs`, which can depend on
//! the `traces` generators without a dependency cycle.

use std::io::Cursor;

use alecto_types::{AccessKind, Addr, MemoryRecord, Pc};
use proptest::collection::vec;
use proptest::prelude::*;
use traceio::{decode_document, varint, TraceWriter};

fn record_strategy() -> impl Strategy<Value = MemoryRecord> {
    (any::<u64>(), any::<u64>(), any::<u32>(), any::<bool>(), any::<bool>()).prop_map(
        |(pc, addr, gap, store, dependent)| MemoryRecord {
            pc: Pc::new(pc),
            addr: Addr::new(addr),
            kind: if store { AccessKind::Store } else { AccessKind::Load },
            gap_instructions: gap,
            dependent,
        },
    )
}

fn encode(records: &[MemoryRecord], block: usize) -> Vec<u8> {
    let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "prop", true, 0xabcd)
        .unwrap()
        .with_block_records(block);
    writer.write_all(records.iter().copied()).unwrap();
    writer.finish_into_inner().unwrap().1.into_inner()
}

proptest! {
    // LEB128 inverts exactly anywhere in the u64 range, and small values
    // stay small on the wire.
    #[test]
    fn varint_round_trips(value in any::<u64>(), small in 0u64..128) {
        let mut buf = Vec::new();
        varint::encode_u64(value, &mut buf);
        prop_assert!(buf.len() <= varint::MAX_VARINT_BYTES);
        prop_assert_eq!(varint::decode_u64(&mut Cursor::new(&buf)).unwrap(), value);
        let mut buf = Vec::new();
        varint::encode_u64(small, &mut buf);
        prop_assert_eq!(buf.len(), 1);
    }

    // The zigzag mapping is a bijection and composes with LEB128.
    #[test]
    fn signed_varint_round_trips(value in any::<i64>()) {
        prop_assert_eq!(varint::unzigzag(varint::zigzag(value)), value);
        let mut buf = Vec::new();
        varint::encode_i64(value, &mut buf);
        prop_assert_eq!(varint::decode_i64(&mut Cursor::new(&buf)).unwrap(), value);
    }

    // encode → decode ≡ original for arbitrary record streams, at a block
    // size small enough that multi-block traces are the common case.
    #[test]
    fn arbitrary_record_streams_round_trip(
        records in vec(record_strategy(), 0..200),
        block in 1usize..64,
    ) {
        let bytes = encode(&records, block);
        let (header, decoded) = decode_document(&bytes).unwrap();
        prop_assert_eq!(header.record_count, records.len() as u64);
        prop_assert_eq!(header.name.as_str(), "prop");
        prop_assert!(header.memory_intensive);
        prop_assert_eq!(decoded, records);
    }

    // The encoding is canonical: the same records produce the same bytes
    // whatever order writes are batched in, and a one-byte corruption never
    // decodes silently.
    #[test]
    fn encoding_is_deterministic_and_corruption_detected(
        records in vec(record_strategy(), 1..80),
        victim in any::<usize>(),
    ) {
        let a = encode(&records, 32);
        let b = encode(&records, 32);
        prop_assert_eq!(&a, &b);
        // Flip one bit in the integrity-protected region: the record-count
        // and checksum words or the block payloads. (The name/seed/flag
        // prefix is structural, not checksummed — a flipped name is a
        // different, equally valid trace.)
        let protected_from = 8 + "prop".len() + 8;
        let mut corrupt = a.clone();
        let idx = protected_from + victim % (corrupt.len() - protected_from);
        corrupt[idx] ^= 1;
        let decoded = decode_document(&corrupt);
        match decoded {
            Err(_) => {}
            Ok((_, decoded_records)) => {
                // The only way a flip decodes cleanly is if it never fed the
                // checksum (impossible: every body byte is hashed and every
                // header byte is structural), so reaching here is a failure.
                prop_assert!(
                    false,
                    "corrupt byte {} decoded cleanly to {} record(s)",
                    idx,
                    decoded_records.len()
                );
            }
        }
    }
}
