//! The `.altr` container layout: magic, versioned header, block framing.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ALTR"
//! 4       2     format version (u16 LE, currently 1)
//! 6       1     flags (bit 0: memory_intensive)
//! 7       1     benchmark name length L (bytes)
//! 8       L     benchmark name (UTF-8)
//! 8+L     8     generation seed (u64 LE; 0 for imported traces)
//! 16+L    8     record count (u64 LE, patched on finish)
//! 24+L    8     FNV-1a64 checksum of every byte after the header
//!               (u64 LE, patched on finish)
//! 32+L    ...   blocks
//! ```
//!
//! Each block is `varint(records)`, `varint(payload bytes)`, payload. Within
//! a block every record is three varints — `zigzag(pc delta)`,
//! `zigzag(addr delta)`, `gap_instructions << 2 | store << 1 | dependent` —
//! where deltas are taken against the previous record *of the block* (the
//! first record of a block is delta'd against zero), so any block can be
//! decoded without its predecessors. That independence is what future
//! sharded replays will key on.
//!
//! # Versioning policy
//!
//! Any change to the byte layout — header fields, block framing, record
//! encoding — must bump [`FORMAT_VERSION`]. Readers reject versions they do
//! not know with an error naming both versions; old files are never silently
//! reinterpreted. The committed golden fixture (`tests/fixtures/`) pins the
//! current layout byte for byte.

use std::io::{self, Read};

use crate::varint;

/// The four magic bytes opening every `.altr` file.
pub const MAGIC: [u8; 4] = *b"ALTR";

/// Current format version. Bump on any byte-layout change (see the module
/// docs for the policy).
pub const FORMAT_VERSION: u16 = 1;

/// Records per block the writer targets (the last block of a trace is
/// usually shorter). 4096 three-varint records keep blocks comfortably
/// inside L2 while amortising the framing overhead to noise.
pub const DEFAULT_BLOCK_RECORDS: usize = 4096;

/// Offset basis of the FNV-1a64 running checksum.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a64 running state.
#[must_use]
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state = (state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    state
}

/// The decoded fixed header of an `.altr` trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Benchmark name the trace was recorded under.
    pub name: String,
    /// Whether the paper counts the benchmark as memory intensive.
    pub memory_intensive: bool,
    /// Seed the generator derived the trace from (0 for imported traces).
    pub seed: u64,
    /// Number of records in the trace.
    pub record_count: u64,
    /// FNV-1a64 checksum over every byte following the header.
    pub checksum: u64,
}

impl TraceHeader {
    /// Total encoded header size in bytes for this name.
    #[must_use]
    pub fn encoded_len(&self) -> u64 {
        8 + self.name.len() as u64 + 24
    }

    /// Byte offset of the `record_count` field (the first patched field;
    /// `checksum` follows eight bytes later).
    #[must_use]
    pub fn count_offset(&self) -> u64 {
        8 + self.name.len() as u64 + 8
    }

    /// Serialises the header.
    ///
    /// # Panics
    ///
    /// Panics if the name exceeds 255 bytes; [`crate::TraceWriter`] rejects
    /// such names with an error before reaching this point.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.name.len() <= u8::MAX as usize, "benchmark name longer than 255 bytes");
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(u8::from(self.memory_intensive));
        out.push(self.name.len() as u8);
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.record_count.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Reads and validates a header from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on a bad magic, an unsupported
    /// version, a malformed name, or unknown flag bits, and propagates
    /// truncation as [`io::ErrorKind::UnexpectedEof`].
    pub fn decode<R: Read>(reader: &mut R) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut fixed = [0u8; 8];
        reader.read_exact(&mut fixed)?;
        if fixed[..4] != MAGIC {
            return Err(bad(format!(
                "not an .altr trace: magic {:02x?} (expected {:02x?} = \"ALTR\")",
                &fixed[..4],
                MAGIC
            )));
        }
        let version = u16::from_le_bytes([fixed[4], fixed[5]]);
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported .altr version {version} (this build reads version \
                 {FORMAT_VERSION}); re-record the trace or use a matching build"
            )));
        }
        let flags = fixed[6];
        if flags & !1 != 0 {
            return Err(bad(format!("unknown header flag bits {flags:#04x}")));
        }
        let name_len = usize::from(fixed[7]);
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|_| bad("benchmark name is not UTF-8".to_string()))?;
        let mut tail = [0u8; 24];
        reader.read_exact(&mut tail)?;
        let word = |i: usize| u64::from_le_bytes(tail[i..i + 8].try_into().expect("8 bytes"));
        Ok(Self {
            name,
            memory_intensive: flags & 1 != 0,
            seed: word(0),
            record_count: word(8),
            checksum: word(16),
        })
    }
}

/// The framing of one block: record count and payload length, both varints.
///
/// Returns `None` at a clean end of input (no more blocks).
///
/// # Errors
///
/// Propagates varint decode errors; a truncation *inside* the framing (after
/// its first byte) is an error, not a clean end.
pub fn read_block_frame<R: Read>(reader: &mut R) -> io::Result<Option<(u64, u64)>> {
    let mut first = [0u8; 1];
    match reader.read_exact(&mut first) {
        Err(err) if err.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        other => other?,
    }
    let records = if first[0] & 0x80 == 0 {
        u64::from(first[0])
    } else {
        // Re-join the already-consumed first byte with the rest of the varint.
        let mut chained = io::Read::chain(&first[..], reader.by_ref());
        varint::decode_u64(&mut chained)?
    };
    let payload_len = varint::decode_u64(reader)?;
    Ok(Some((records, payload_len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn header() -> TraceHeader {
        TraceHeader {
            name: "mcf".to_string(),
            memory_intensive: true,
            seed: 0xdead_beef,
            record_count: 42,
            checksum: 7,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        let bytes = h.encode();
        assert_eq!(bytes.len() as u64, h.encoded_len());
        assert_eq!(TraceHeader::decode(&mut Cursor::new(&bytes)).unwrap(), h);
    }

    #[test]
    fn patched_field_offsets_line_up() {
        let h = header();
        let bytes = h.encode();
        let off = h.count_offset() as usize;
        assert_eq!(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()), 42);
        assert_eq!(u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap()), 7);
    }

    #[test]
    fn bad_magic_version_and_flags_are_rejected() {
        let h = header();
        let mut bytes = h.encode();
        bytes[0] = b'X';
        assert!(TraceHeader::decode(&mut Cursor::new(&bytes)).is_err());

        let mut bytes = h.encode();
        bytes[4] = 99;
        let err = TraceHeader::decode(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        let mut bytes = h.encode();
        bytes[6] = 0x82;
        assert!(TraceHeader::decode(&mut Cursor::new(&bytes)).is_err());

        // Truncated name.
        let bytes = h.encode();
        assert!(TraceHeader::decode(&mut Cursor::new(&bytes[..9])).is_err());
    }

    #[test]
    fn block_frame_reads_and_signals_end() {
        let mut buf = Vec::new();
        varint::encode_u64(4096, &mut buf);
        varint::encode_u64(70_000, &mut buf);
        let mut cursor = Cursor::new(&buf);
        assert_eq!(read_block_frame(&mut cursor).unwrap(), Some((4096, 70_000)));
        assert_eq!(read_block_frame(&mut cursor).unwrap(), None);
        // One-byte (small) frames work through the fast path.
        let small = [3u8, 9u8];
        assert_eq!(read_block_frame(&mut Cursor::new(&small)).unwrap(), Some((3, 9)));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a64 test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x85944171f73967e8);
    }
}
