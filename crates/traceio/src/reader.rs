//! Streaming `.altr` trace reader and the file-backed [`TraceSource`]
//! adapter that lets recorded traces drop into `System::run_sources`, the
//! `Suite` registry and every existing experiment unchanged.

use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use alecto_types::{AccessKind, Addr, MemoryRecord, Pc, TraceSource};

use crate::format::{self, read_block_frame, TraceHeader};
use crate::varint;

/// Decodes the record stream following an already-consumed header.
///
/// Yields `io::Result<MemoryRecord>`; after the first error the iterator
/// fuses to `None`. The decoder carries the running checksum so a full pass
/// can verify the header's stored value (see [`RecordDecoder::verify`]).
#[derive(Debug)]
pub struct RecordDecoder<R: Read> {
    reader: R,
    /// Records the header promises; decoding stops after this many.
    remaining: u64,
    /// Records left in the current block.
    block_remaining: u64,
    checksum: u64,
    /// When set, the final [`Iterator::next`] call additionally runs the
    /// trailing-bytes and checksum checks against this expected value and
    /// refuses to yield the last record of a corrupt stream.
    expected_checksum: Option<u64>,
    last_pc: u64,
    last_addr: u64,
    failed: bool,
}

impl<R: Read> RecordDecoder<R> {
    /// Starts decoding `record_count` records from `reader`, positioned at
    /// the first block frame.
    #[must_use]
    pub fn new(reader: R, record_count: u64) -> Self {
        Self {
            reader,
            remaining: record_count,
            block_remaining: 0,
            checksum: format::FNV_OFFSET,
            expected_checksum: None,
            last_pc: 0,
            last_addr: 0,
            failed: false,
        }
    }

    /// Arms end-of-stream verification: when the iterator reaches the last
    /// record it also checks the running checksum against `expected` (and
    /// that nothing follows the final block), erroring instead of yielding
    /// that record on a mismatch. This is how every replay a
    /// [`TraceReader`]-minted source performs detects corruption without a
    /// separate validation pass.
    #[must_use]
    pub fn verifying(mut self, expected: u64) -> Self {
        self.expected_checksum = Some(expected);
        self
    }

    fn bad(&mut self, msg: String) -> io::Error {
        self.failed = true;
        io::Error::new(io::ErrorKind::InvalidData, msg)
    }

    /// The end-of-stream integrity checks shared by [`RecordDecoder::verify`]
    /// and the armed iterator path: no trailing bytes, checksum matches.
    fn finish_checks(&mut self, expected: u64) -> io::Result<()> {
        let mut tail = [0u8; 1];
        if self.reader.read(&mut tail)? != 0 {
            return Err(self.bad("trailing bytes after the last block".to_string()));
        }
        if self.checksum != expected {
            let msg = format!(
                "checksum mismatch: file body hashes to {:#018x}, header says {expected:#018x} \
                 (corrupt or hand-edited trace)",
                self.checksum
            );
            return Err(self.bad(msg));
        }
        Ok(())
    }

    fn next_record(&mut self) -> io::Result<MemoryRecord> {
        if self.block_remaining == 0 {
            // Checksum the frame exactly as the writer emitted it by
            // re-encoding the two varints (canonical LEB128 is unique).
            let Some((records, payload_len)) = read_block_frame(&mut self.reader)? else {
                return Err(self.bad(format!(
                    "trace ends {} record(s) early (truncated file?)",
                    self.remaining
                )));
            };
            if records == 0 {
                return Err(self.bad("empty block".to_string()));
            }
            if records > self.remaining {
                let msg = format!(
                    "block of {records} record(s) overruns the header count by {}",
                    records - self.remaining
                );
                return Err(self.bad(msg));
            }
            let mut frame = Vec::with_capacity(2 * varint::MAX_VARINT_BYTES);
            varint::encode_u64(records, &mut frame);
            varint::encode_u64(payload_len, &mut frame);
            self.checksum = format::fnv1a(self.checksum, &frame);
            self.block_remaining = records;
            self.last_pc = 0;
            self.last_addr = 0;
        }
        let mut tracked = ChecksumReader { inner: &mut self.reader, state: self.checksum };
        let pc_delta = varint::decode_i64(&mut tracked)?;
        let addr_delta = varint::decode_i64(&mut tracked)?;
        let flags = varint::decode_u64(&mut tracked)?;
        self.checksum = tracked.state;
        let gap = flags >> 2;
        let Ok(gap_instructions) = u32::try_from(gap) else {
            return Err(self.bad(format!("record gap {gap} exceeds u32")));
        };
        self.last_pc = self.last_pc.wrapping_add(pc_delta as u64);
        self.last_addr = self.last_addr.wrapping_add(addr_delta as u64);
        self.block_remaining -= 1;
        self.remaining -= 1;
        if self.remaining == 0 {
            if let Some(expected) = self.expected_checksum {
                self.finish_checks(expected)?;
            }
        }
        Ok(MemoryRecord {
            pc: Pc::new(self.last_pc),
            addr: Addr::new(self.last_addr),
            kind: if flags & 0b10 == 0 { AccessKind::Load } else { AccessKind::Store },
            gap_instructions,
            dependent: flags & 0b01 != 0,
        })
    }

    /// After full decoding, checks the running checksum against the header's
    /// stored value and that no trailing garbage follows the last block.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on a checksum mismatch or
    /// trailing bytes, and an error if records remain undecoded.
    pub fn verify(mut self, header: &TraceHeader) -> io::Result<()> {
        if self.remaining != 0 {
            let msg = format!("verify called with {} record(s) undecoded", self.remaining);
            return Err(self.bad(msg));
        }
        if self.failed {
            // The armed iterator path already reported (and consumed) the
            // failure; don't re-read past it.
            return Err(io::Error::new(io::ErrorKind::InvalidData, "decode already failed"));
        }
        if self.expected_checksum.is_some() {
            // An armed decoder that delivered every record already ran the
            // end-of-stream checks.
            return Ok(());
        }
        self.finish_checks(header.checksum)
    }
}

/// Folds every byte it passes through into the FNV-1a64 running state.
struct ChecksumReader<'a, R: Read> {
    inner: &'a mut R,
    state: u64,
}

impl<R: Read> Read for ChecksumReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.state = format::fnv1a(self.state, &buf[..n]);
        Ok(n)
    }
}

impl<R: Read> Iterator for RecordDecoder<R> {
    type Item = io::Result<MemoryRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        match self.next_record() {
            Ok(record) => Some(Ok(record)),
            Err(err) => {
                self.failed = true;
                Some(Err(err))
            }
        }
    }
}

/// Decodes an entire in-memory `.altr` document (header + blocks),
/// verifying the checksum. The eager counterpart of [`TraceReader`], used by
/// tests and the round-trip proptests.
///
/// # Errors
///
/// Returns any header, record or checksum error.
pub fn decode_document(bytes: &[u8]) -> io::Result<(TraceHeader, Vec<MemoryRecord>)> {
    let mut cursor = io::Cursor::new(bytes);
    let header = TraceHeader::decode(&mut cursor)?;
    let mut decoder = RecordDecoder::new(cursor, header.record_count);
    let records: Vec<MemoryRecord> = (&mut decoder).collect::<io::Result<_>>()?;
    decoder.verify(&header)?;
    Ok((header, records))
}

/// Aggregate per-field statistics of one full decode pass, reported by
/// `alecto-harness trace info`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Demand loads.
    pub loads: u64,
    /// Demand stores.
    pub stores: u64,
    /// Records flagged data-dependent on their predecessor (pointer chases).
    pub dependent: u64,
    /// Total instructions (memory accesses + gaps).
    pub instructions: u64,
    /// Largest single-record instruction gap.
    pub max_gap: u32,
    /// Distinct 4 KiB pages touched.
    pub touched_pages: u64,
    /// Lowest byte address accessed (0 for an empty trace).
    pub min_addr: u64,
    /// Highest byte address accessed (0 for an empty trace).
    pub max_addr: u64,
    /// Distinct PCs in the trace.
    pub distinct_pcs: u64,
}

impl TraceStats {
    /// Folds `record` into the running stats (page/PC sets folded by the
    /// caller, which owns the scratch sets).
    fn fold(&mut self, record: &MemoryRecord) {
        if record.kind.is_load() {
            self.loads += 1;
        } else {
            self.stores += 1;
        }
        self.dependent += u64::from(record.dependent);
        self.instructions += record.instructions();
        self.max_gap = self.max_gap.max(record.gap_instructions);
        self.min_addr = self.min_addr.min(record.addr.raw());
        self.max_addr = self.max_addr.max(record.addr.raw());
    }
}

/// A validated, file-backed `.altr` trace: the header plus the ability to
/// mint fresh record streams and a [`TraceSource`] view.
#[derive(Debug, Clone)]
pub struct TraceReader {
    path: PathBuf,
    header: TraceHeader,
}

impl TraceReader {
    /// Opens `path` and decodes its header. The body is *not* scanned here —
    /// use [`TraceReader::stats`] to verify the checksum eagerly. Sources
    /// minted by [`TraceReader::source`] verify it on every *full* replay
    /// (a replay capped below the recorded count never reaches the stream
    /// tail, so it checks structure but not the final checksum).
    ///
    /// # Errors
    ///
    /// Returns file-open and header-format errors, each naming the path.
    pub fn open(path: &Path) -> io::Result<Self> {
        let in_file =
            |err: io::Error| io::Error::new(err.kind(), format!("{}: {err}", path.display()));
        let mut reader = BufReader::new(File::open(path).map_err(in_file)?);
        let header = TraceHeader::decode(&mut reader).map_err(in_file)?;
        Ok(Self { path: path.to_path_buf(), header })
    }

    /// The decoded header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The trace file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Starts one decoding pass over the records.
    ///
    /// # Errors
    ///
    /// Returns file-open or header errors (the file is re-read from the
    /// start so concurrent passes are independent).
    pub fn records(&self) -> io::Result<RecordDecoder<BufReader<File>>> {
        let mut reader = BufReader::new(File::open(&self.path)?);
        TraceHeader::decode(&mut reader)?;
        Ok(RecordDecoder::new(reader, self.header.record_count))
    }

    /// Decodes the whole trace once, verifying the checksum, and returns the
    /// per-field statistics.
    ///
    /// # Errors
    ///
    /// Returns any decode or checksum error.
    pub fn stats(&self) -> io::Result<TraceStats> {
        let mut decoder = self.records()?;
        let mut stats = TraceStats { min_addr: u64::MAX, ..TraceStats::default() };
        let mut pages: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut pcs: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for record in &mut decoder {
            let record = record?;
            stats.fold(&record);
            pages.insert(record.addr.page().raw());
            pcs.insert(record.pc.raw());
        }
        decoder.verify(&self.header)?;
        if self.header.record_count == 0 {
            stats.min_addr = 0;
        }
        stats.touched_pages = pages.len() as u64;
        stats.distinct_pcs = pcs.len() as u64;
        Ok(stats)
    }

    /// Re-walks the trace block by block, checking every block's structure
    /// (frame varints, record payloads, header record count) and finally the
    /// FNV-1a64 body checksum against the header's stored value — the check
    /// `trace info --verify` runs. Returns the number of blocks walked.
    ///
    /// Unlike [`TraceReader::stats`], which detects corruption as a side
    /// effect of decoding records, this pass is about *localising* it:
    /// structural errors name the 1-based block (and record within it) where
    /// the walk failed.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] with a `block N:`-prefixed
    /// message for structural corruption, and a block-count-qualified
    /// checksum-mismatch message when the body hashes to something other
    /// than the header's stored checksum.
    pub fn verify_blocks(&self) -> io::Result<u64> {
        let block_err = |block: u64, msg: String| {
            io::Error::new(io::ErrorKind::InvalidData, format!("block {block}: {msg}"))
        };
        let mut reader = BufReader::new(File::open(&self.path)?);
        TraceHeader::decode(&mut reader)?;
        let mut checksum = format::FNV_OFFSET;
        let mut remaining = self.header.record_count;
        let mut blocks: u64 = 0;
        while remaining > 0 {
            let block = blocks + 1;
            let Some((records, payload_len)) =
                read_block_frame(&mut reader).map_err(|err| block_err(block, err.to_string()))?
            else {
                return Err(block_err(
                    block,
                    format!("trace ends {remaining} record(s) early (truncated file?)"),
                ));
            };
            if records == 0 {
                return Err(block_err(block, "empty block".to_string()));
            }
            if records > remaining {
                return Err(block_err(
                    block,
                    format!(
                        "block of {records} record(s) overruns the header count by {}",
                        records - remaining
                    ),
                ));
            }
            let mut frame = Vec::with_capacity(2 * varint::MAX_VARINT_BYTES);
            varint::encode_u64(records, &mut frame);
            varint::encode_u64(payload_len, &mut frame);
            checksum = format::fnv1a(checksum, &frame);
            let len = usize::try_from(payload_len).map_err(|_| {
                block_err(block, format!("payload length {payload_len} exceeds usize"))
            })?;
            let mut payload = vec![0u8; len];
            reader.read_exact(&mut payload).map_err(|err| {
                block_err(block, format!("payload of {payload_len} byte(s) is truncated: {err}"))
            })?;
            checksum = format::fnv1a(checksum, &payload);
            // The payload must hold exactly `records` delta triples.
            let mut cursor = io::Cursor::new(&payload[..]);
            for record in 0..records {
                let triple = varint::decode_i64(&mut cursor)
                    .and_then(|_| varint::decode_i64(&mut cursor))
                    .and_then(|_| varint::decode_u64(&mut cursor));
                if let Err(err) = triple {
                    return Err(block_err(block, format!("record {}: {err}", record + 1)));
                }
            }
            let undecoded = payload_len - cursor.position();
            if undecoded != 0 {
                return Err(block_err(
                    block,
                    format!("payload carries {undecoded} undecoded byte(s) after the last record"),
                ));
            }
            remaining -= records;
            blocks = block;
        }
        let mut tail = [0u8; 1];
        if reader.read(&mut tail)? != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trailing bytes after block {blocks}"),
            ));
        }
        if checksum != self.header.checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "body checksum mismatch over {blocks} block(s): blocks hash to \
                     {checksum:#018x}, header says {:#018x} (corrupt or hand-edited trace)",
                    self.header.checksum
                ),
            ));
        }
        Ok(blocks)
    }

    /// A lazy [`TraceSource`] replaying the file, optionally capped to the
    /// first `cap` records. Every replay re-opens the file; a file that is
    /// deleted or corrupted *between* `open` and a replay makes that replay
    /// panic with the underlying error (the experiment engine has no error
    /// channel inside a running cell), so validate first where that matters.
    #[must_use]
    pub fn source(&self, cap: Option<usize>) -> TraceSource {
        let count = usize::try_from(self.header.record_count).unwrap_or(usize::MAX);
        let accesses = cap.map_or(count, |c| c.min(count));
        let path = Arc::new(self.path.clone());
        let header_count = self.header.record_count;
        let header_checksum = self.header.checksum;
        TraceSource::new(
            self.header.name.clone(),
            self.header.memory_intensive,
            accesses,
            move || {
                let path = Arc::clone(&path);
                let mut reader = BufReader::new(File::open(path.as_ref()).unwrap_or_else(|err| {
                    panic!("replaying {}: {err}", path.display());
                }));
                TraceHeader::decode(&mut reader).unwrap_or_else(|err| {
                    panic!("replaying {}: {err}", path.display());
                });
                let display = path.display().to_string();
                let decoder = RecordDecoder::new(reader, header_count).verifying(header_checksum);
                Box::new(decoder.map(move |record| {
                    record.unwrap_or_else(|err| panic!("replaying {display}: {err}"))
                }))
            },
        )
        // Tie the source identity to the file *content* (body checksum +
        // generation seed from the header), not the path: re-recorded or
        // moved files only share a cache identity when their records match.
        .with_content_tag(&format!("altr:{:#018x}", header_checksum))
        .with_content_seed(self.header.seed)
    }

    /// Like [`TraceReader::source`], but each replay decodes block frames on
    /// `workers` background threads ([`crate::parallel`]). The record stream
    /// — and therefore the source's fingerprint and every simulation result —
    /// is byte-identical to the serial [`TraceReader::source`]; only
    /// wall-clock changes, so the worker count is deliberately *not* part of
    /// the fingerprint. `workers == 0` falls back to the serial source.
    #[must_use]
    pub fn source_parallel(&self, cap: Option<usize>, workers: usize) -> TraceSource {
        if workers == 0 {
            return self.source(cap);
        }
        let count = usize::try_from(self.header.record_count).unwrap_or(usize::MAX);
        let accesses = cap.map_or(count, |c| c.min(count));
        let path = Arc::new(self.path.clone());
        let header_count = self.header.record_count;
        let header_checksum = self.header.checksum;
        TraceSource::new(
            self.header.name.clone(),
            self.header.memory_intensive,
            accesses,
            move || {
                let path = Arc::clone(&path);
                let mut reader = BufReader::new(File::open(path.as_ref()).unwrap_or_else(|err| {
                    panic!("replaying {}: {err}", path.display());
                }));
                TraceHeader::decode(&mut reader).unwrap_or_else(|err| {
                    panic!("replaying {}: {err}", path.display());
                });
                let display = path.display().to_string();
                let records = crate::parallel::parallel_records(
                    reader,
                    header_count,
                    Some(header_checksum),
                    workers,
                );
                Box::new(records.map(move |record| {
                    record.unwrap_or_else(|err| panic!("replaying {display}: {err}"))
                }))
            },
        )
        // Same content identity as the serial source: identical records must
        // share a cache identity regardless of how they were decoded.
        .with_content_tag(&format!("altr:{:#018x}", header_checksum))
        .with_content_seed(self.header.seed)
    }
}

/// Convenience: opens `path` and returns a [`TraceSource`] over it, capped
/// to `cap` records when given.
///
/// # Errors
///
/// Returns the [`TraceReader::open`] errors.
pub fn file_source(path: &Path, cap: Option<usize>) -> io::Result<TraceSource> {
    Ok(TraceReader::open(path)?.source(cap))
}

/// Convenience: opens `path` and returns a block-parallel [`TraceSource`]
/// over it — see [`TraceReader::source_parallel`].
///
/// # Errors
///
/// Returns the [`TraceReader::open`] errors.
pub fn file_source_parallel(
    path: &Path,
    cap: Option<usize>,
    workers: usize,
) -> io::Result<TraceSource> {
    Ok(TraceReader::open(path)?.source_parallel(cap, workers))
}
