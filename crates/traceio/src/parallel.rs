//! Block-parallel `.altr` decoding.
//!
//! The writer resets the delta predictors at every block frame (`last_pc =
//! 0`, `last_addr = 0`), so each block's payload decodes independently of
//! every other block. The parallel reader exploits that: a *coordinator*
//! thread walks the container sequentially — reading block frames and
//! folding the body checksum exactly as the serial [`crate::RecordDecoder`]
//! does — and ships raw payloads to a pool of decode workers, while a
//! reordering consumer ([`ParallelRecords`]) yields the records in file
//! order. The output is byte-for-byte the serial decode; the worker count
//! changes wall-clock only, which is why it is never folded into a source's
//! fingerprint.
//!
//! All queues are bounded, so however large the trace, the pipeline holds
//! O(workers × block) records in flight. Dropping the consumer early (a
//! capped replay) disconnects the channels and the threads exit on their
//! next send.

use std::collections::HashMap;
use std::io::{self, Read};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use alecto_types::{AccessKind, Addr, MemoryRecord, Pc};

use crate::format::{self, read_block_frame, TraceHeader};
use crate::varint;

/// Blocks each worker may have queued or in flight: bounds pipeline memory
/// at `workers × QUEUE_BLOCKS_PER_WORKER` blocks on both the work and the
/// result channel.
const QUEUE_BLOCKS_PER_WORKER: usize = 2;

/// One block frame, read off the container by the coordinator and decoded by
/// a worker.
struct WorkItem {
    seq: u64,
    records: u64,
    payload: Vec<u8>,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Decodes the `records` delta-encoded records of one block `payload`. The
/// per-block delta reset means no state flows in from earlier blocks.
fn decode_block(payload: &[u8], records: u64) -> io::Result<Vec<MemoryRecord>> {
    let mut cursor = payload;
    let mut out = Vec::with_capacity(usize::try_from(records).unwrap_or(0));
    let mut last_pc = 0u64;
    let mut last_addr = 0u64;
    for _ in 0..records {
        let pc_delta = varint::decode_i64(&mut cursor)?;
        let addr_delta = varint::decode_i64(&mut cursor)?;
        let flags = varint::decode_u64(&mut cursor)?;
        let gap = flags >> 2;
        let Ok(gap_instructions) = u32::try_from(gap) else {
            return Err(bad(format!("record gap {gap} exceeds u32")));
        };
        last_pc = last_pc.wrapping_add(pc_delta as u64);
        last_addr = last_addr.wrapping_add(addr_delta as u64);
        out.push(MemoryRecord {
            pc: Pc::new(last_pc),
            addr: Addr::new(last_addr),
            kind: if flags & 0b10 == 0 { AccessKind::Load } else { AccessKind::Store },
            gap_instructions,
            dependent: flags & 0b01 != 0,
        });
    }
    if !cursor.is_empty() {
        return Err(bad(format!("{} byte(s) left over after the block's records", cursor.len())));
    }
    Ok(out)
}

/// The coordinator: reads frames sequentially, folds the body checksum the
/// way the serial decoder does (re-encoded frame varints + payload bytes),
/// and runs the end-of-stream checks when `expected_checksum` arms them.
fn coordinate<R: Read>(
    mut reader: R,
    record_count: u64,
    expected_checksum: Option<u64>,
    work_tx: &mpsc::SyncSender<WorkItem>,
) -> io::Result<()> {
    let mut checksum = format::FNV_OFFSET;
    let mut remaining = record_count;
    let mut seq = 0u64;
    while remaining > 0 {
        let Some((records, payload_len)) = read_block_frame(&mut reader)? else {
            return Err(bad(format!("trace ends {remaining} record(s) early (truncated file?)")));
        };
        if records == 0 {
            return Err(bad("empty block".to_string()));
        }
        if records > remaining {
            return Err(bad(format!(
                "block of {records} record(s) overruns the header count by {}",
                records - remaining
            )));
        }
        let mut frame = Vec::with_capacity(2 * varint::MAX_VARINT_BYTES);
        varint::encode_u64(records, &mut frame);
        varint::encode_u64(payload_len, &mut frame);
        checksum = format::fnv1a(checksum, &frame);
        let len = usize::try_from(payload_len)
            .map_err(|_| bad(format!("block payload of {payload_len} bytes exceeds memory")))?;
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload)?;
        checksum = format::fnv1a(checksum, &payload);
        remaining -= records;
        if work_tx.send(WorkItem { seq, records, payload }).is_err() {
            // The consumer was dropped (capped replay): stop quietly.
            return Ok(());
        }
        seq += 1;
    }
    if let Some(expected) = expected_checksum {
        let mut tail = [0u8; 1];
        if reader.read(&mut tail)? != 0 {
            return Err(bad("trailing bytes after the last block".to_string()));
        }
        if checksum != expected {
            return Err(bad(format!(
                "checksum mismatch: file body hashes to {checksum:#018x}, header says \
                 {expected:#018x} (corrupt or hand-edited trace)"
            )));
        }
    }
    Ok(())
}

/// Streaming iterator over a block-parallel decode, yielding exactly the
/// records (and errors) the serial [`crate::RecordDecoder`] would, in file
/// order. When end-of-stream verification is armed, the final record is
/// withheld in favour of the error if the checks fail — mirroring
/// [`crate::RecordDecoder::verifying`].
#[derive(Debug)]
pub struct ParallelRecords {
    result_rx: mpsc::Receiver<(u64, io::Result<Vec<MemoryRecord>>)>,
    verdict_rx: mpsc::Receiver<io::Result<()>>,
    /// Blocks that arrived ahead of their turn, keyed by sequence number.
    /// Bounded by the result channel's capacity.
    reordered: HashMap<u64, io::Result<Vec<MemoryRecord>>>,
    next_seq: u64,
    current: std::vec::IntoIter<MemoryRecord>,
    remaining: u64,
    armed: bool,
    verdict_taken: bool,
    failed: bool,
}

impl ParallelRecords {
    /// The coordinator's end-of-stream result (trailing bytes + checksum).
    fn verdict(&mut self) -> io::Result<()> {
        self.verdict_taken = true;
        match self.verdict_rx.recv() {
            Ok(result) => result,
            // The coordinator only vanishes without a verdict after a clean
            // early stop (consumer-driven shutdown).
            Err(_) => Ok(()),
        }
    }

    /// Pulls the next block in sequence order off the result channel.
    fn next_block(&mut self) -> io::Result<Vec<MemoryRecord>> {
        if let Some(block) = self.reordered.remove(&self.next_seq) {
            return block;
        }
        loop {
            match self.result_rx.recv() {
                Ok((seq, block)) if seq == self.next_seq => return block,
                Ok((seq, block)) => {
                    self.reordered.insert(seq, block);
                }
                Err(_) => {
                    // Every worker exited without producing the next block:
                    // the coordinator stopped early — surface its error.
                    let fallback = bad(format!(
                        "trace ends {} record(s) early (truncated file?)",
                        self.remaining
                    ));
                    return Err(self.verdict().err().unwrap_or(fallback));
                }
            }
        }
    }
}

impl Iterator for ParallelRecords {
    type Item = io::Result<MemoryRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.remaining == 0 {
            // A zero-record armed stream still gets its end checks (the
            // serial eager path verifies empty documents too).
            if self.armed && !self.verdict_taken {
                if let Err(err) = self.verdict() {
                    self.failed = true;
                    return Some(Err(err));
                }
            }
            return None;
        }
        loop {
            if let Some(record) = self.current.next() {
                self.remaining -= 1;
                if self.remaining == 0 && self.armed {
                    if let Err(err) = self.verdict() {
                        self.failed = true;
                        return Some(Err(err));
                    }
                }
                return Some(Ok(record));
            }
            match self.next_block() {
                Ok(records) => {
                    self.next_seq += 1;
                    self.current = records.into_iter();
                }
                Err(err) => {
                    self.failed = true;
                    return Some(Err(err));
                }
            }
        }
    }
}

/// Starts a block-parallel decode of `record_count` records from `reader`,
/// which must be positioned at the first block frame (header already
/// consumed). `expected_checksum` arms the end-of-stream verification the
/// way [`crate::RecordDecoder::verifying`] does. `workers` decode threads
/// are spawned (minimum 1), plus the coordinator; all of them exit when the
/// stream ends or the returned iterator is dropped.
#[must_use]
pub fn parallel_records<R: Read + Send + 'static>(
    reader: R,
    record_count: u64,
    expected_checksum: Option<u64>,
    workers: usize,
) -> ParallelRecords {
    let workers = workers.max(1);
    let depth = workers * QUEUE_BLOCKS_PER_WORKER;
    let (work_tx, work_rx) = mpsc::sync_channel::<WorkItem>(depth);
    let (result_tx, result_rx) = mpsc::sync_channel(depth);
    let (verdict_tx, verdict_rx) = mpsc::sync_channel(1);
    let work_rx = Arc::new(Mutex::new(work_rx));
    for _ in 0..workers {
        let work_rx = Arc::clone(&work_rx);
        let result_tx = result_tx.clone();
        thread::spawn(move || loop {
            // Hold the lock only for the dequeue, never during the decode.
            let item = work_rx.lock().expect("decode work queue poisoned").recv();
            let Ok(item) = item else { break };
            let decoded = decode_block(&item.payload, item.records);
            if result_tx.send((item.seq, decoded)).is_err() {
                break;
            }
        });
    }
    drop(result_tx);
    thread::spawn(move || {
        let result = coordinate(reader, record_count, expected_checksum, &work_tx);
        drop(work_tx);
        // Send failure just means the consumer is gone; nothing to report to.
        let _ = verdict_tx.send(result);
    });
    ParallelRecords {
        result_rx,
        verdict_rx,
        reordered: HashMap::new(),
        next_seq: 0,
        current: Vec::new().into_iter(),
        remaining: record_count,
        armed: expected_checksum.is_some(),
        verdict_taken: false,
        failed: false,
    }
}

/// Eager block-parallel counterpart of [`crate::decode_document`]: decodes
/// an in-memory `.altr` document across `workers` threads, verifying the
/// checksum. Output is byte-identical to the serial decode.
///
/// # Errors
///
/// Returns any header, record or checksum error.
pub fn decode_document_parallel(
    bytes: &[u8],
    workers: usize,
) -> io::Result<(TraceHeader, Vec<MemoryRecord>)> {
    let mut cursor = io::Cursor::new(bytes);
    let header = TraceHeader::decode(&mut cursor)?;
    let offset = usize::try_from(cursor.position()).expect("in-memory offset fits usize");
    let body = bytes[offset..].to_vec();
    let mut iter = parallel_records(
        io::Cursor::new(body),
        header.record_count,
        Some(header.checksum),
        workers,
    );
    let records: Vec<MemoryRecord> = (&mut iter).collect::<io::Result<_>>()?;
    // Zero-record documents never enter the record loop; take the verdict.
    if let Some(Err(err)) = iter.next() {
        return Err(err);
    }
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::decode_document;
    use crate::writer::TraceWriter;
    use std::io::Cursor;

    fn sample_records(n: u64) -> Vec<MemoryRecord> {
        (0..n)
            .map(|i| {
                let pc = Pc::new(0x400 + (i % 5) * 4);
                let addr = Addr::new(i.wrapping_mul(0x9e37_79b9) % (1 << 34));
                match i % 3 {
                    0 => MemoryRecord::load(pc, addr, (i % 50) as u32),
                    1 => MemoryRecord::store(pc, addr, 1),
                    _ => MemoryRecord::dependent_load(pc, addr, 0),
                }
            })
            .collect()
    }

    fn encode(records: &[MemoryRecord], block: usize) -> Vec<u8> {
        let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "t", false, 9)
            .unwrap()
            .with_block_records(block);
        writer.write_all(records.iter().copied()).unwrap();
        writer.finish_into_inner().unwrap().1.into_inner()
    }

    #[test]
    fn parallel_decode_matches_serial_across_blocks_and_workers() {
        let records = sample_records(500);
        for block in [1usize, 7, 64, 500, 4096] {
            let bytes = encode(&records, block);
            let (serial_header, serial) = decode_document(&bytes).unwrap();
            for workers in [1usize, 2, 4, 8] {
                let (header, parallel) = decode_document_parallel(&bytes, workers).unwrap();
                assert_eq!(header, serial_header);
                assert_eq!(parallel, serial, "block {block} × workers {workers}");
            }
        }
    }

    #[test]
    fn empty_document_decodes_in_parallel() {
        let bytes = encode(&[], 16);
        let (header, records) = decode_document_parallel(&bytes, 4).unwrap();
        assert_eq!(header.record_count, 0);
        assert!(records.is_empty());
    }

    #[test]
    fn corruption_is_detected_in_parallel() {
        let records = sample_records(200);
        let bytes = encode(&records, 16);
        let mut corrupt = bytes.clone();
        let target = bytes.len() - 3;
        corrupt[target] ^= 0x40;
        assert!(decode_document_parallel(&corrupt, 4).is_err(), "flipped byte must be caught");
        assert!(decode_document_parallel(&bytes[..bytes.len() - 1], 4).is_err(), "truncation");
        let mut padded = bytes;
        padded.push(0);
        assert!(decode_document_parallel(&padded, 4).is_err(), "trailing garbage");
    }

    #[test]
    fn dropping_the_iterator_early_shuts_the_pipeline_down() {
        let records = sample_records(400);
        let bytes = encode(&records, 8);
        let mut cursor = Cursor::new(bytes);
        let header = TraceHeader::decode(&mut cursor).unwrap();
        let mut iter = parallel_records(cursor, header.record_count, Some(header.checksum), 4);
        // Consume a prefix, then drop: the background threads must exit via
        // channel disconnection (this test hangs forever if they do not and
        // the process leaks a thread per run — fine either way for a test,
        // but the early records must still be correct).
        let prefix: Vec<MemoryRecord> = (&mut iter).take(30).collect::<io::Result<_>>().unwrap();
        assert_eq!(prefix, records[..30]);
        drop(iter);
    }
}
