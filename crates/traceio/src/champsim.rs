//! Ingestion of external traces in a simple ChampSim-compatible text/CSV
//! record layout, converting them into `.altr`.
//!
//! Real machine traces usually start life as a textual dump — a ChampSim
//! `L1D` access log, a Pin tool's CSV, a DynamoRIO postprocess. The accepted
//! layout is the least common denominator of those: one record per line,
//! comma- or whitespace-separated,
//!
//! ```text
//! <pc> <addr> <kind> [gap_instructions] [dependent]
//! ```
//!
//! where `pc`/`addr` are decimal or `0x`-hex, `kind` is `L`/`R`/`0` for a
//! load and `S`/`W`/`1` for a store (case-insensitive), `gap_instructions`
//! defaults to 0, and `dependent` is `0`/`1` (default 0). Blank lines and
//! `#` comments are skipped. Example:
//!
//! ```text
//! # pc       addr      kind gap dep
//! 0x400b12,  0x7ffd1040, L,  12,  0
//! 0x400b12,  0x7ffd1080, L,  3
//! 0x400b30   0x21000     S
//! ```

use std::fmt;
use std::io::{self, BufRead};
use std::path::Path;

use alecto_types::{AccessKind, Addr, MemoryRecord, Pc};

use crate::writer::TraceWriter;

/// A rejected input line: the 1-based line number and what was wrong.
#[derive(Debug)]
pub struct ImportError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ImportError {}

impl From<ImportError> for io::Error {
    fn from(err: ImportError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, err.to_string())
    }
}

fn parse_u64(field: &str) -> Result<u64, String> {
    let field = field.trim();
    let parsed = match field.strip_prefix("0x").or_else(|| field.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => field.parse(),
    };
    parsed.map_err(|_| format!("`{field}` is not a decimal or 0x-hex integer"))
}

fn parse_kind(field: &str) -> Result<AccessKind, String> {
    match field.trim().to_ascii_lowercase().as_str() {
        "l" | "r" | "0" | "load" | "read" => Ok(AccessKind::Load),
        "s" | "w" | "1" | "store" | "write" => Ok(AccessKind::Store),
        other => Err(format!("`{other}` is not an access kind (L/R/0 or S/W/1)")),
    }
}

/// Parses one record line (already known to be non-blank, non-comment).
///
/// # Errors
///
/// Returns a description of the malformed field.
pub fn parse_line(line: &str) -> Result<MemoryRecord, String> {
    let fields: Vec<&str> =
        line.split(|c: char| c == ',' || c.is_whitespace()).filter(|f| !f.is_empty()).collect();
    if !(3..=5).contains(&fields.len()) {
        return Err(format!(
            "expected 3-5 fields (pc addr kind [gap] [dependent]), found {}",
            fields.len()
        ));
    }
    let pc = parse_u64(fields[0])?;
    let addr = parse_u64(fields[1])?;
    let kind = parse_kind(fields[2])?;
    let gap = match fields.get(3) {
        Some(f) => {
            u32::try_from(parse_u64(f)?).map_err(|_| format!("gap `{}` exceeds u32", f.trim()))?
        }
        None => 0,
    };
    let dependent = match fields.get(4).map(|f| f.trim()) {
        Some("0") | None => false,
        Some("1") => true,
        Some(other) => return Err(format!("dependent flag `{other}` must be 0 or 1")),
    };
    Ok(MemoryRecord {
        pc: Pc::new(pc),
        addr: Addr::new(addr),
        kind,
        gap_instructions: gap,
        dependent,
    })
}

/// Streams ChampSim-style text records from `input` into an `.altr` trace at
/// `out`, returning the record count. `name` and `memory_intensive` stamp
/// the header (the seed is 0: imported traces have no generator seed).
///
/// # Errors
///
/// Returns the first malformed line as an [`ImportError`]-derived
/// [`io::Error`], or any underlying I/O error. On error the partially
/// written output is left unfinished (header claims zero records).
pub fn import_text(
    input: impl BufRead,
    name: &str,
    memory_intensive: bool,
    out: &Path,
) -> io::Result<u64> {
    let mut writer = TraceWriter::create(out, name, memory_intensive, 0)?;
    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let record =
            parse_line(trimmed).map_err(|message| ImportError { line: idx + 1, message })?;
        writer.write_record(record)?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_layouts() {
        let r = parse_line("0x400b12, 0x7ffd1040, L, 12, 0").unwrap();
        assert_eq!(r.pc.raw(), 0x400b12);
        assert_eq!(r.addr.raw(), 0x7ffd1040);
        assert!(r.kind.is_load());
        assert_eq!(r.gap_instructions, 12);
        assert!(!r.dependent);

        let r = parse_line("0x400b30 0x21000 S").unwrap();
        assert!(!r.kind.is_load());
        assert_eq!(r.gap_instructions, 0);

        let r = parse_line("1024,2048,w,7,1").unwrap();
        assert!(!r.kind.is_load());
        assert!(r.dependent);
        assert_eq!(r.pc.raw(), 1024);
    }

    #[test]
    fn rejects_malformed_lines_with_field_context() {
        assert!(parse_line("0x1 0x2").unwrap_err().contains("3-5 fields"));
        assert!(parse_line("zzz 0x2 L").unwrap_err().contains("zzz"));
        assert!(parse_line("0x1 0x2 X").unwrap_err().contains("access kind"));
        assert!(parse_line("0x1 0x2 L 5 2").unwrap_err().contains("must be 0 or 1"));
        assert!(parse_line("0x1 0x2 L 99999999999").unwrap_err().contains("exceeds u32"));
        assert!(parse_line("1 2 3 4 5 6").unwrap_err().contains("found 6"));
    }
}
