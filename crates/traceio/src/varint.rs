//! LEB128 variable-length integers and the zigzag signed mapping.
//!
//! The `.altr` record codec stores almost everything as unsigned LEB128:
//! small values (the common case after delta encoding) cost one byte, and a
//! full 64-bit value costs at most ten. Signed deltas go through the zigzag
//! mapping first so that small *negative* deltas — backwards strides, the
//! return edge of a pointer chase — stay small on the wire too.

use std::io::{self, Read, Write};

/// Maximum encoded size of a `u64` LEB128 varint, in bytes.
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends the zigzag-LEB128 encoding of `value` to `out`.
pub fn encode_i64(value: i64, out: &mut Vec<u8>) {
    encode_u64(zigzag(value), out);
}

/// Maps a signed value to the zigzag unsigned space (0, -1, 1, -2, ... →
/// 0, 1, 2, 3, ...), keeping small-magnitude values small.
#[must_use]
pub const fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub const fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Reads one LEB128 varint from `reader`.
///
/// # Errors
///
/// Returns [`io::ErrorKind::UnexpectedEof`] on a truncated varint and
/// [`io::ErrorKind::InvalidData`] when the encoding exceeds ten bytes or
/// overflows 64 bits (both impossible for writer-produced streams).
pub fn decode_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        let byte = byte[0];
        let bits = u64::from(byte & 0x7f);
        if shift == 63 && bits > 1 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflows u64"));
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint longer than 10 bytes"));
        }
    }
}

/// Reads one zigzag-LEB128 signed varint from `reader`.
///
/// # Errors
///
/// Propagates the [`decode_u64`] error conditions.
pub fn decode_i64<R: Read>(reader: &mut R) -> io::Result<i64> {
    decode_u64(reader).map(unzigzag)
}

/// Writes `value` as LEB128 straight to `writer` (header-sized fields only;
/// the record codec batches through a `Vec` buffer instead).
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_u64<W: Write>(writer: &mut W, value: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(MAX_VARINT_BYTES);
    encode_u64(value, &mut buf);
    writer.write_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_u64(value: u64) -> usize {
        let mut buf = Vec::new();
        encode_u64(value, &mut buf);
        let decoded = decode_u64(&mut Cursor::new(&buf)).expect("decode");
        assert_eq!(decoded, value);
        buf.len()
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128u64 {
            assert_eq!(round_trip_u64(v), 1);
        }
        assert_eq!(round_trip_u64(128), 2);
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u64::from(u32::MAX), u64::MAX - 1, u64::MAX] {
            round_trip_u64(v);
        }
        assert_eq!(round_trip_u64(u64::MAX), MAX_VARINT_BYTES);
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [0i64, -1, 1, -300, 300, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            encode_i64(v, &mut buf);
            assert_eq!(decode_i64(&mut Cursor::new(&buf)).unwrap(), v);
        }
    }

    #[test]
    fn truncated_and_overlong_inputs_error() {
        // Truncated: continuation bit set but no next byte.
        assert!(decode_u64(&mut Cursor::new(&[0x80u8])).is_err());
        assert!(decode_u64(&mut Cursor::new(&[] as &[u8])).is_err());
        // Overlong: eleven continuation bytes.
        let overlong = [0x80u8; 11];
        assert!(decode_u64(&mut Cursor::new(&overlong)).is_err());
        // Overflow: a tenth byte carrying more than one bit.
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(decode_u64(&mut Cursor::new(&overflow)).is_err());
    }
}
