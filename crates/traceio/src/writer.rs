//! Buffered `.altr` trace writer.

use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use alecto_types::{MemoryRecord, TraceSource};

use crate::format::{self, TraceHeader, DEFAULT_BLOCK_RECORDS};
use crate::varint;

/// Streams [`MemoryRecord`]s into the block-structured `.altr` encoding.
///
/// Records are delta-encoded into an in-memory block buffer and flushed a
/// block at a time, so the writer's memory footprint is one block regardless
/// of trace length. The header's record count and checksum are back-patched
/// by [`TraceWriter::finish`] — dropping a writer without finishing leaves a
/// file whose header claims zero records, which readers treat as empty
/// rather than corrupt, so always call `finish`.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    header: TraceHeader,
    block: Vec<u8>,
    block_records: u64,
    records_per_block: usize,
    written_records: u64,
    checksum: u64,
    last_pc: u64,
    last_addr: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) `path` and writes the header for a trace named
    /// `name`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors, and rejects names longer
    /// than 255 bytes.
    pub fn create(path: &Path, name: &str, memory_intensive: bool, seed: u64) -> io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?), name, memory_intensive, seed)
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a trace in `sink`, writing the header immediately.
    ///
    /// # Errors
    ///
    /// Propagates write errors; rejects names longer than 255 bytes (the
    /// header stores a one-byte length).
    pub fn new(mut sink: W, name: &str, memory_intensive: bool, seed: u64) -> io::Result<Self> {
        if name.len() > usize::from(u8::MAX) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("benchmark name is {} bytes; the .altr header caps it at 255", name.len()),
            ));
        }
        let header = TraceHeader {
            name: name.to_string(),
            memory_intensive,
            seed,
            record_count: 0,
            checksum: format::FNV_OFFSET,
        };
        sink.write_all(&header.encode())?;
        Ok(Self {
            sink,
            header,
            block: Vec::new(),
            block_records: 0,
            records_per_block: DEFAULT_BLOCK_RECORDS,
            written_records: 0,
            checksum: format::FNV_OFFSET,
            last_pc: 0,
            last_addr: 0,
        })
    }

    /// Overrides the records-per-block target (mainly for tests and the
    /// golden fixture, which wants several blocks in a tiny file).
    ///
    /// # Panics
    ///
    /// Panics if `records_per_block` is zero.
    #[must_use]
    pub fn with_block_records(mut self, records_per_block: usize) -> Self {
        assert!(records_per_block > 0, "a block must hold at least one record");
        self.records_per_block = records_per_block;
        self
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates write errors from a block flush.
    pub fn write_record(&mut self, record: MemoryRecord) -> io::Result<()> {
        let pc = record.pc.raw();
        let addr = record.addr.raw();
        varint::encode_i64(pc.wrapping_sub(self.last_pc) as i64, &mut self.block);
        varint::encode_i64(addr.wrapping_sub(self.last_addr) as i64, &mut self.block);
        let flags = u64::from(record.gap_instructions) << 2
            | u64::from(!record.kind.is_load()) << 1
            | u64::from(record.dependent);
        varint::encode_u64(flags, &mut self.block);
        self.last_pc = pc;
        self.last_addr = addr;
        self.block_records += 1;
        self.written_records += 1;
        if self.block_records as usize >= self.records_per_block {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Appends every record of an iterator.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn write_all(&mut self, records: impl IntoIterator<Item = MemoryRecord>) -> io::Result<()> {
        for record in records {
            self.write_record(record)?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.block_records == 0 {
            return Ok(());
        }
        let mut frame = Vec::with_capacity(2 * varint::MAX_VARINT_BYTES);
        varint::encode_u64(self.block_records, &mut frame);
        varint::encode_u64(self.block.len() as u64, &mut frame);
        self.checksum = format::fnv1a(self.checksum, &frame);
        self.checksum = format::fnv1a(self.checksum, &self.block);
        self.sink.write_all(&frame)?;
        self.sink.write_all(&self.block)?;
        self.block.clear();
        self.block_records = 0;
        // Deltas reset per block so blocks decode independently.
        self.last_pc = 0;
        self.last_addr = 0;
        Ok(())
    }

    /// Flushes the trailing partial block, back-patches the header's record
    /// count and checksum, and returns the record count.
    ///
    /// # Errors
    ///
    /// Propagates write/seek errors.
    pub fn finish(self) -> io::Result<u64> {
        self.finish_into_inner().map(|(count, _)| count)
    }

    /// [`TraceWriter::finish`], additionally handing back the sink — how the
    /// in-memory tests and benches recover their `Cursor<Vec<u8>>`.
    ///
    /// # Errors
    ///
    /// Propagates write/seek errors.
    pub fn finish_into_inner(mut self) -> io::Result<(u64, W)> {
        self.flush_block()?;
        self.sink.seek(SeekFrom::Start(self.header.count_offset()))?;
        self.sink.write_all(&self.written_records.to_le_bytes())?;
        self.sink.write_all(&self.checksum.to_le_bytes())?;
        self.sink.flush()?;
        Ok((self.written_records, self.sink))
    }
}

/// Records a full replay of `source` into `path`, stamping `seed` into the
/// header, and returns the record count.
///
/// # Errors
///
/// Propagates file and write errors.
pub fn record_source(source: &TraceSource, seed: u64, path: &Path) -> io::Result<u64> {
    let mut writer = TraceWriter::create(path, source.name(), source.memory_intensive(), seed)?;
    writer.write_all(source.records())?;
    writer.finish()
}
