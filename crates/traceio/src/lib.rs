//! Trace I/O: the versioned `.altr` binary record/replay format.
//!
//! Every workload in the reproduction is synthesized in-process; this crate
//! makes those access streams (and external ones) *persistent*. A recorded
//! trace is an immutable on-disk artifact that replays bit-identically into
//! the simulator, so selection results can be shared, archived, diffed and —
//! because [`TraceReader::source`] yields an ordinary
//! [`alecto_types::TraceSource`] — driven through `System::run_sources`, the
//! `traces::Suite` registry (the `file:<path>` scheme) and every existing
//! experiment unchanged.
//!
//! The codec is hand-rolled (crates.io is unreachable in this environment):
//! records are delta-encoded per block and written as zigzag/LEB128 varints
//! ([`varint`]), framed into independently decodable blocks behind a fixed
//! header carrying the benchmark name, generation seed, record count and an
//! FNV-1a64 body checksum ([`mod@format`]). Sequential access streams compress
//! to a few bytes per record; even pointer-chase streams stay well under the
//! 22 bytes a raw in-memory record occupies.
//!
//! The header's body checksum is also the trace's *identity*: sources minted
//! by [`TraceReader::source`] fold it (plus the recorded seed) into their
//! [`alecto_types::TraceSource::fingerprint`], which is how the harness's
//! cell cache and sweep server recognise a `file:` trace by content rather
//! than by path — see `docs/PROTOCOL.md` for the full key derivation.
//!
//! # Example
//!
//! ```
//! use alecto_types::{MemoryRecord, Pc, Addr};
//! use std::io::Cursor;
//!
//! let records: Vec<MemoryRecord> =
//!     (0..100).map(|i| MemoryRecord::load(Pc::new(0x40), Addr::new(i * 64), 3)).collect();
//! let mut writer =
//!     traceio::TraceWriter::new(Cursor::new(Vec::new()), "stream", true, 7).unwrap();
//! writer.write_all(records.iter().copied()).unwrap();
//! writer.finish().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod champsim;
pub mod format;
pub mod parallel;
pub mod reader;
pub mod varint;
pub mod writer;

pub use champsim::{import_text, ImportError};
pub use format::{TraceHeader, DEFAULT_BLOCK_RECORDS, FORMAT_VERSION, MAGIC};
pub use parallel::{decode_document_parallel, parallel_records, ParallelRecords};
pub use reader::{
    decode_document, file_source, file_source_parallel, RecordDecoder, TraceReader, TraceStats,
};
pub use writer::{record_source, TraceWriter};

/// The benchmark-spec prefix that resolves to a file-backed trace in the
/// `traces::Suite` registry and the CLI: `file:<path>`.
pub const FILE_SCHEME: &str = "file:";

/// Splits a `file:<path>` benchmark spec into its path, if it uses the
/// scheme.
#[must_use]
pub fn file_spec_path(spec: &str) -> Option<&std::path::Path> {
    spec.strip_prefix(FILE_SCHEME).map(std::path::Path::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::{Addr, MemoryRecord, Pc};
    use std::io::Cursor;

    fn sample_records(n: u64) -> Vec<MemoryRecord> {
        (0..n)
            .map(|i| {
                let pc = Pc::new(0x400 + (i % 7) * 4);
                let addr = Addr::new(i.wrapping_mul(0x9e37_79b9) % (1 << 34));
                match i % 3 {
                    0 => MemoryRecord::load(pc, addr, (i % 50) as u32),
                    1 => MemoryRecord::store(pc, addr, 1),
                    _ => MemoryRecord::dependent_load(pc, addr, 0),
                }
            })
            .collect()
    }

    fn encode(records: &[MemoryRecord], block: usize) -> Vec<u8> {
        let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "t", false, 9)
            .unwrap()
            .with_block_records(block);
        writer.write_all(records.iter().copied()).unwrap();
        let (count, cursor) = writer.finish_into_inner().unwrap();
        assert_eq!(count, records.len() as u64);
        cursor.into_inner()
    }

    #[test]
    fn in_memory_round_trip_across_block_sizes() {
        let records = sample_records(300);
        for block in [1usize, 7, 100, 300, 4096] {
            let bytes = encode(&records, block);
            let (header, decoded) = decode_document(&bytes).unwrap();
            assert_eq!(header.name, "t");
            assert_eq!(header.seed, 9);
            assert_eq!(header.record_count, 300);
            assert_eq!(decoded, records, "block size {block}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode(&[], 16);
        let (header, decoded) = decode_document(&bytes).unwrap();
        assert_eq!(header.record_count, 0);
        assert!(decoded.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let records = sample_records(64);
        let bytes = encode(&records, 16);
        // Flip one payload byte: either the decode fails outright or the
        // checksum catches it.
        let mut corrupt = bytes.clone();
        let target = bytes.len() - 3;
        corrupt[target] ^= 0x40;
        assert!(decode_document(&corrupt).is_err(), "flipped byte must not decode cleanly");
        // Truncation is detected.
        assert!(decode_document(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage is detected.
        let mut padded = bytes;
        padded.push(0);
        assert!(decode_document(&padded).is_err());
    }

    #[test]
    fn sequential_streams_compress_far_below_raw_size() {
        let records: Vec<MemoryRecord> =
            (0..4096u64).map(|i| MemoryRecord::load(Pc::new(0x40), Addr::new(i * 64), 3)).collect();
        let bytes = encode(&records, DEFAULT_BLOCK_RECORDS);
        // pc delta 0 (1 B), addr delta 64 → zigzag 128 (2 B), gap 3 (1 B):
        // four bytes per steady-state record, well under the 22-byte
        // in-memory representation.
        let per_record = bytes.len() as f64 / records.len() as f64;
        assert!(per_record < 4.5, "sequential stream costs {per_record:.2} B/record");
    }

    #[test]
    fn verify_blocks_walks_and_localises_corruption() {
        let records = sample_records(100);
        let bytes = encode(&records, 16); // 6 full blocks + 1 partial
        let path = std::env::temp_dir().join(format!("traceio-verify-{}.altr", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(TraceReader::open(&path).unwrap().verify_blocks().unwrap(), 7);

        // A flipped payload byte either breaks a block's structure or the
        // body checksum; both errors name blocks.
        let mut corrupt = bytes.clone();
        let target = bytes.len() - 3;
        corrupt[target] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        let err = TraceReader::open(&path).unwrap().verify_blocks().unwrap_err().to_string();
        assert!(err.contains("block"), "{err}");

        // Truncation is pinned to the block where the walk ran dry.
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let err = TraceReader::open(&path).unwrap().verify_blocks().unwrap_err().to_string();
        assert!(err.starts_with("block 7:"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_spec_path_strips_the_scheme() {
        assert_eq!(file_spec_path("file:/tmp/a.altr").unwrap().to_str(), Some("/tmp/a.altr"));
        assert!(file_spec_path("mcf").is_none());
    }
}
