//! [`MachineSpec`]: the in-memory form of a machine description, its
//! builder-style modifiers, validation, canonical rendering and fingerprint.

use alecto_types::{fnv1a_64, FNV1A_OFFSET};
use memsys::{CacheParams, DramKind, DramParams, HierarchyParams, TimingParams};

use crate::parse::FORMAT_VERSION;
use crate::CoreModelKind;

/// The memory-controller timing of a machine: one of the named presets, or
/// explicit drain-rate knobs. Presets survive the canonical round trip as
/// presets (a machine that says `preset = "balanced"` re-renders that way),
/// while explicit knobs stay explicit even when they happen to equal a
/// preset — the distinction is part of the spec's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingSpec {
    /// A named [`TimingPreset`].
    Preset(TimingPreset),
    /// Explicit `dram_drain_requests` / `dram_drain_period` values.
    Explicit(TimingParams),
}

impl TimingSpec {
    /// The lowered [`TimingParams`] this spec configures.
    #[must_use]
    pub fn params(self) -> TimingParams {
        match self {
            Self::Preset(preset) => preset.params(),
            Self::Explicit(params) => params,
        }
    }
}

/// The named memory-controller timing presets a machine file can select via
/// `[timing] preset = "..."`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingPreset {
    /// [`TimingParams::balanced`]: two fills admitted per cycle.
    Balanced,
    /// [`TimingParams::latency_sensitive`]: four fills per cycle.
    LatencySensitive,
    /// [`TimingParams::bandwidth_bound`]: one fill per sixteen cycles.
    BandwidthBound,
}

impl TimingPreset {
    /// Stable lower-case label used in machine files.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Balanced => "balanced",
            Self::LatencySensitive => "latency-sensitive",
            Self::BandwidthBound => "bandwidth-bound",
        }
    }

    /// Parses a machine-file label.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "balanced" => Some(Self::Balanced),
            "latency-sensitive" => Some(Self::LatencySensitive),
            "bandwidth-bound" => Some(Self::BandwidthBound),
            _ => None,
        }
    }

    /// The preset's lowered [`TimingParams`].
    #[must_use]
    pub fn params(self) -> TimingParams {
        match self {
            Self::Balanced => TimingParams::balanced(),
            Self::LatencySensitive => TimingParams::latency_sensitive(),
            Self::BandwidthBound => TimingParams::bandwidth_bound(),
        }
    }
}

/// The composite prefetcher stack a machine selects via an optional
/// `[prefetch]` section. Mirrors the simulator's composite bundles without
/// depending on the prefetch crate: the machine format names stacks by
/// stable lower-case labels, and `cpu` lowers the chosen stack to its
/// `CompositeKind` at configuration time. A machine without a `[prefetch]`
/// section leaves the experiment's own composite choice in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchStack {
    /// GS + CS + PMP — the paper's default composite.
    GsCsPmp,
    /// GS + Berti + CPLX — the Fig. 11 alternate composite.
    GsBertiCplx,
    /// GS + CS + PMP plus a temporal prefetcher with the given metadata
    /// budget (the Fig. 13/14 configuration).
    GsCsPmpTemporal {
        /// Temporal-prefetcher metadata budget in KiB.
        metadata_kb: u32,
    },
    /// PMP alone (non-composite baseline).
    PmpOnly,
    /// Berti alone (non-composite baseline).
    BertiOnly,
}

impl PrefetchStack {
    /// Metadata budget written when a `gs-cs-pmp-temporal` stack omits
    /// `temporal_metadata_kb`.
    pub const DEFAULT_TEMPORAL_METADATA_KB: u32 = 256;

    /// Stable lower-case label used in machine files.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::GsCsPmp => "gs-cs-pmp",
            Self::GsBertiCplx => "gs-berti-cplx",
            Self::GsCsPmpTemporal { .. } => "gs-cs-pmp-temporal",
            Self::PmpOnly => "pmp",
            Self::BertiOnly => "berti",
        }
    }

    /// Parses a machine-file label; a temporal stack starts at
    /// [`PrefetchStack::DEFAULT_TEMPORAL_METADATA_KB`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "gs-cs-pmp" => Some(Self::GsCsPmp),
            "gs-berti-cplx" => Some(Self::GsBertiCplx),
            "gs-cs-pmp-temporal" => {
                Some(Self::GsCsPmpTemporal { metadata_kb: Self::DEFAULT_TEMPORAL_METADATA_KB })
            }
            "pmp" => Some(Self::PmpOnly),
            "berti" => Some(Self::BertiOnly),
            _ => None,
        }
    }
}

/// The label of a [`DramKind`] as written in machine files.
#[must_use]
pub(crate) const fn dram_label(kind: DramKind) -> &'static str {
    match kind {
        DramKind::Ddr3_1600 => "ddr3-1600",
        DramKind::Ddr4_2400 => "ddr4-2400",
    }
}

/// Parses a machine-file DRAM label.
#[must_use]
pub(crate) fn dram_from_label(label: &str) -> Option<DramKind> {
    match label {
        "ddr3-1600" => Some(DramKind::Ddr3_1600),
        "ddr4-2400" => Some(DramKind::Ddr4_2400),
        _ => None,
    }
}

/// One complete machine description: everything a simulation needs beyond
/// the workload. This is the value the `alecto-machine-v1` format encodes,
/// the built-in registry stores, and `SystemConfig::from_machine` lowers.
///
/// The shared L3 is stored **per core** (`l3_per_core`): machine files write
/// totals at the machine's own core count, and [`MachineSpec::with_cores`]
/// rescales the totals when an experiment runs the machine at a different
/// structural core count (a figure defined at eight cores keeps eight
/// cores, with this machine's per-core geometry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    /// The machine's name; empty for anonymous specs built in code (those
    /// lower without a "Machine" row, keeping default output untouched).
    pub name: String,
    /// Number of cores the machine declares.
    pub cores: usize,
    /// Core timing model (`[core] model`).
    pub core_model: CoreModelKind,
    /// Reorder buffer entries (`[core] rob`).
    pub rob_entries: usize,
    /// Fetch width in instructions per cycle.
    pub fetch_width: u32,
    /// Commit width in instructions per cycle.
    pub commit_width: u32,
    /// Load queue entries.
    pub load_queue: usize,
    /// Store queue entries.
    pub store_queue: usize,
    /// Instructions between selector reward epochs.
    pub selector_epoch_instructions: u64,
    /// Private L1 data cache geometry.
    pub l1d: CacheParams,
    /// Private L2 geometry.
    pub l2: CacheParams,
    /// Shared L3 geometry **per core** (`size_bytes` and `mshrs` scale with
    /// the core count at lowering time; machine files write totals).
    pub l3_per_core: CacheParams,
    /// DRAM device generation (channels and ranks derive from the core
    /// count, exactly as the Table-I presets do).
    pub dram: DramKind,
    /// Memory-controller timing: preset or explicit.
    pub timing: TimingSpec,
    /// Composite prefetcher stack the machine pins (`[prefetch]`), or
    /// `None` to let the experiment choose. Only present specs render the
    /// section, so machines written before the key keep their fingerprint.
    pub prefetch: Option<PrefetchStack>,
}

impl MachineSpec {
    /// The anonymous Table-I machine at `cores` cores — the spec every
    /// omitted key defaults to, and the one `SystemConfig::skylake_like`
    /// lowers. Anonymous (`name` empty) on purpose: configurations built
    /// from it are indistinguishable from the historical hard-coded ones.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn table1(cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        let l3_total = CacheParams::l3_default(cores);
        Self {
            name: String::new(),
            cores,
            core_model: CoreModelKind::Approx,
            rob_entries: 256,
            fetch_width: 6,
            commit_width: 4,
            load_queue: 72,
            store_queue: 56,
            selector_epoch_instructions: 20_000,
            l1d: CacheParams::l1d_default(),
            l2: CacheParams::l2_default(),
            l3_per_core: CacheParams {
                size_bytes: l3_total.size_bytes / cores as u64,
                mshrs: l3_total.mshrs / cores,
                ..l3_total
            },
            dram: DramKind::Ddr4_2400,
            timing: TimingSpec::Preset(TimingPreset::Balanced),
            prefetch: None,
        }
    }

    /// The same machine rescaled to a different structural core count: the
    /// per-core cache geometry is kept, so the L3 total and DRAM channel
    /// count grow or shrink with `cores` exactly as the Table-I presets do.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        self.cores = cores;
        self
    }

    /// Same machine with the core timing model replaced.
    #[must_use]
    pub fn with_core_model(mut self, core_model: CoreModelKind) -> Self {
        self.core_model = core_model;
        self
    }

    /// Same machine with an explicit LLC capacity per core (the Fig. 15
    /// sensitivity axis).
    #[must_use]
    pub fn with_llc_per_core(mut self, llc_bytes_per_core: u64) -> Self {
        self.l3_per_core.size_bytes = llc_bytes_per_core;
        self
    }

    /// Same machine with the given DRAM generation (the Fig. 16 axis).
    #[must_use]
    pub fn with_dram_kind(mut self, kind: DramKind) -> Self {
        self.dram = kind;
        self
    }

    /// Same machine with explicit memory-controller timing knobs (the
    /// `timing` experiment's axis).
    #[must_use]
    pub fn with_timing(mut self, timing: TimingParams) -> Self {
        self.timing = TimingSpec::Explicit(timing);
        self
    }

    /// Same machine with the composite prefetcher stack pinned.
    #[must_use]
    pub fn with_prefetch(mut self, stack: PrefetchStack) -> Self {
        self.prefetch = Some(stack);
        self
    }

    /// Lowers the machine into the simulator's [`HierarchyParams`] at its
    /// own core count: L3 size and MSHRs are multiplied out to totals, DRAM
    /// channels and ranks derive from the core count the same way the
    /// Table-I presets derive them.
    #[must_use]
    pub fn hierarchy(&self) -> HierarchyParams {
        let cores = self.cores;
        let dram = if cores == 1 {
            DramParams::single_core(self.dram)
        } else {
            DramParams::multi_core(self.dram, cores)
        };
        HierarchyParams {
            cores,
            l1d: self.l1d,
            l2: self.l2,
            l3: CacheParams {
                size_bytes: self.l3_per_core.size_bytes * cores as u64,
                mshrs: self.l3_per_core.mshrs * cores,
                ..self.l3_per_core
            },
            dram,
            timing: self.timing.params(),
        }
    }

    /// Validates the machine: core parameters are non-degenerate and the
    /// lowered hierarchy passes [`HierarchyParams::validate`] (which runs
    /// [`CacheParams::validate`] per level, producing the power-of-two-sets
    /// aliasing explanation for bad geometries).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint, prefixed with the level name where one applies.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("at least one core required".to_string());
        }
        if self.cores > 1024 {
            return Err(format!("cores = {} exceeds the supported maximum of 1024", self.cores));
        }
        if !self.name.is_empty() {
            let ok = self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
            if !ok {
                return Err(format!(
                    "machine name {:?} may only contain letters, digits, '-', '_' and '.'",
                    self.name
                ));
            }
        }
        for (label, value) in [
            ("rob", self.rob_entries),
            ("fetch_width", self.fetch_width as usize),
            ("commit_width", self.commit_width as usize),
            ("load_queue", self.load_queue),
            ("store_queue", self.store_queue),
        ] {
            if value == 0 {
                return Err(format!("core {label} must be at least 1"));
            }
        }
        if self.selector_epoch_instructions == 0 {
            return Err("selector epoch_instructions must be at least 1".to_string());
        }
        if let Some(PrefetchStack::GsCsPmpTemporal { metadata_kb: 0 }) = self.prefetch {
            return Err("prefetch temporal_metadata_kb must be at least 1".to_string());
        }
        for (label, level) in [("L1D", &self.l1d), ("L2", &self.l2), ("L3", &self.l3_per_core)] {
            if level.mshrs == 0 {
                return Err(format!("{label}: cache must have at least one MSHR"));
            }
        }
        self.hierarchy().validate()
    }

    /// Renders the spec back to `alecto-machine-v1` text, deterministically:
    /// every field is written explicitly (no defaults are elided), sizes as
    /// `size_kb` when whole-KB and `size` (bytes) otherwise, the L3 as
    /// totals at the machine's core count. `parse(canonical_text(spec))`
    /// reproduces `spec` exactly — the round-trip property the parser
    /// proptests pin — and [`MachineSpec::fingerprint`] digests this text.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = writeln!(out, "format = \"{FORMAT_VERSION}\"");
        let _ = writeln!(out, "name = \"{}\"", self.name);
        let _ = writeln!(out, "cores = {}", self.cores);
        let _ = writeln!(out, "\n[core]");
        let _ = writeln!(out, "model = \"{}\"", self.core_model.label());
        let _ = writeln!(out, "rob = {}", self.rob_entries);
        let _ = writeln!(out, "fetch_width = {}", self.fetch_width);
        let _ = writeln!(out, "commit_width = {}", self.commit_width);
        let _ = writeln!(out, "load_queue = {}", self.load_queue);
        let _ = writeln!(out, "store_queue = {}", self.store_queue);
        let levels = [
            ("l1d", &self.l1d, 1usize),
            ("l2", &self.l2, 1),
            ("l3", &self.l3_per_core, self.cores),
        ];
        for (section, params, scale) in levels {
            let _ = writeln!(out, "\n[cache.{section}]");
            let size = params.size_bytes * scale as u64;
            if size.is_multiple_of(1024) {
                let _ = writeln!(out, "size_kb = {}", size / 1024);
            } else {
                let _ = writeln!(out, "size = {size}");
            }
            let _ = writeln!(out, "ways = {}", params.ways);
            let _ = writeln!(out, "latency = {}", params.latency);
            let _ = writeln!(out, "miss_latency = {}", params.miss_latency);
            let _ = writeln!(out, "mshrs = {}", params.mshrs * scale);
        }
        let _ = writeln!(out, "\n[dram]");
        let _ = writeln!(out, "kind = \"{}\"", dram_label(self.dram));
        let _ = writeln!(out, "\n[timing]");
        match self.timing {
            TimingSpec::Preset(preset) => {
                let _ = writeln!(out, "preset = \"{}\"", preset.label());
            }
            TimingSpec::Explicit(params) => {
                let _ = writeln!(out, "dram_drain_requests = {}", params.dram_drain_requests);
                let _ = writeln!(out, "dram_drain_period = {}", params.dram_drain_period);
            }
        }
        let _ = writeln!(out, "\n[selector]");
        let _ = writeln!(out, "epoch_instructions = {}", self.selector_epoch_instructions);
        // The section is rendered only when a stack is pinned, so every spec
        // written before the key existed keeps its canonical text — and its
        // fingerprint — unchanged.
        if let Some(stack) = self.prefetch {
            let _ = writeln!(out, "\n[prefetch]");
            let _ = writeln!(out, "stack = \"{}\"", stack.label());
            if let PrefetchStack::GsCsPmpTemporal { metadata_kb } = stack {
                let _ = writeln!(out, "temporal_metadata_kb = {metadata_kb}");
            }
        }
        out
    }

    /// The machine's canonical FNV-1a64 fingerprint: the digest of
    /// [`MachineSpec::canonical_text`] under a format-version prefix.
    /// Specs that lower to the same configuration have equal fingerprints
    /// regardless of how their source files were formatted; any semantic
    /// difference — one set count, one latency — changes it.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let key = fnv1a_64(FNV1A_OFFSET, b"alecto-machine|");
        fnv1a_64(key, self.canonical_text().as_bytes())
    }

    /// The fingerprint as the zero-padded hex string used in reports, the
    /// `machines` CLI and the sweep protocol.
    #[must_use]
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lowers_to_the_skylake_preset() {
        for cores in [1usize, 2, 4, 8, 16] {
            let spec = MachineSpec::table1(cores);
            assert_eq!(spec.hierarchy(), HierarchyParams::skylake_like(cores), "{cores} cores");
            assert!(spec.validate().is_ok());
            assert!(spec.name.is_empty(), "table1 must stay anonymous");
        }
    }

    #[test]
    fn with_cores_rescales_l3_totals_and_dram() {
        let spec = MachineSpec::table1(1).with_cores(8);
        let h = spec.hierarchy();
        assert_eq!(h.l3.size_bytes, 16 * 1024 * 1024);
        assert_eq!(h.l3.mshrs, 8 * 64);
        assert_eq!(h.dram.channels, 4);
        assert_eq!(h.dram.ranks_per_channel, 2);
    }

    #[test]
    fn modifiers_match_the_historical_presets() {
        let spec = MachineSpec::table1(1).with_llc_per_core(512 * 1024);
        assert_eq!(spec.hierarchy(), HierarchyParams::with_llc_per_core(1, 512 * 1024));
        let spec = MachineSpec::table1(1).with_dram_kind(DramKind::Ddr3_1600);
        assert_eq!(spec.hierarchy(), HierarchyParams::with_dram(1, DramKind::Ddr3_1600));
        let spec = MachineSpec::table1(1).with_timing(TimingParams::bandwidth_bound());
        assert_eq!(
            spec.hierarchy(),
            HierarchyParams::with_timing(1, TimingParams::bandwidth_bound())
        );
    }

    #[test]
    fn validate_reuses_the_aliasing_explanation() {
        let mut spec = MachineSpec::table1(1);
        spec.l2.size_bytes = 3 * 64 * 8; // 3 sets at 8 ways
        let err = spec.validate().unwrap_err();
        assert!(err.starts_with("L2:"), "level must be named: {err}");
        assert!(err.contains("alias"), "the mask aliasing must be explained: {err}");
    }

    #[test]
    fn validate_rejects_degenerate_machines() {
        let mut spec = MachineSpec::table1(1);
        spec.rob_entries = 0;
        assert!(spec.validate().unwrap_err().contains("rob"));
        let mut spec = MachineSpec::table1(1);
        spec.l1d.mshrs = 0;
        assert!(spec.validate().unwrap_err().contains("MSHR"));
        let mut spec = MachineSpec::table1(1);
        spec.name = "spaced name".to_string();
        assert!(spec.validate().unwrap_err().contains("name"));
    }

    #[test]
    fn fingerprint_tracks_semantic_changes_only() {
        let base = MachineSpec::table1(4);
        assert_eq!(base.fingerprint(), MachineSpec::table1(4).fingerprint());
        assert_ne!(base.fingerprint(), MachineSpec::table1(8).fingerprint());
        assert_ne!(
            base.fingerprint(),
            base.clone().with_dram_kind(DramKind::Ddr3_1600).fingerprint()
        );
        // An explicit timing equal to a preset is a distinct spec.
        assert_ne!(
            base.fingerprint(),
            base.clone().with_timing(TimingParams::balanced()).fingerprint()
        );
        assert_eq!(base.fingerprint_hex().len(), 16);
    }

    #[test]
    fn prefetch_section_renders_only_when_pinned() {
        let base = MachineSpec::table1(1);
        assert!(!base.canonical_text().contains("[prefetch]"));
        let pinned = base.clone().with_prefetch(PrefetchStack::BertiOnly);
        assert!(pinned.canonical_text().contains("[prefetch]\nstack = \"berti\"\n"));
        assert_ne!(base.fingerprint(), pinned.fingerprint());
        let temporal =
            base.clone().with_prefetch(PrefetchStack::GsCsPmpTemporal { metadata_kb: 512 });
        assert!(temporal.canonical_text().contains("temporal_metadata_kb = 512"));
        assert!(temporal.validate().is_ok());
        let degenerate = base.with_prefetch(PrefetchStack::GsCsPmpTemporal { metadata_kb: 0 });
        assert!(degenerate.validate().unwrap_err().contains("temporal_metadata_kb"));
    }

    #[test]
    fn prefetch_labels_round_trip() {
        for stack in [
            PrefetchStack::GsCsPmp,
            PrefetchStack::GsBertiCplx,
            PrefetchStack::GsCsPmpTemporal {
                metadata_kb: PrefetchStack::DEFAULT_TEMPORAL_METADATA_KB,
            },
            PrefetchStack::PmpOnly,
            PrefetchStack::BertiOnly,
        ] {
            assert_eq!(PrefetchStack::from_label(stack.label()), Some(stack));
        }
        assert_eq!(PrefetchStack::from_label("ampm"), None);
    }
}
