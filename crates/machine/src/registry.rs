//! The built-in machine registry: named specs embedded in the binary via
//! `include_str!`, plus [`load`], the one resolver the CLI and server share
//! for "name or file path" machine arguments.

use std::sync::OnceLock;

use crate::parse::parse;
use crate::spec::MachineSpec;

/// Names of the built-in machines, in listing order.
pub const BUILTIN_NAMES: [&str; 4] = ["mobile", "desktop", "server", "manycore"];

const BUILTIN_SOURCES: [&str; 4] = [
    include_str!("../machines/mobile.toml"),
    include_str!("../machines/desktop.toml"),
    include_str!("../machines/server.toml"),
    include_str!("../machines/manycore.toml"),
];

fn builtins() -> &'static Vec<MachineSpec> {
    static CACHE: OnceLock<Vec<MachineSpec>> = OnceLock::new();
    CACHE.get_or_init(|| {
        BUILTIN_NAMES
            .iter()
            .zip(BUILTIN_SOURCES)
            .map(|(name, source)| {
                let spec =
                    parse(source).unwrap_or_else(|err| panic!("built-in machine {name}: {err}"));
                assert_eq!(&spec.name, name, "built-in machine file name mismatch");
                spec
            })
            .collect()
    })
}

/// Looks up a built-in machine by name.
#[must_use]
pub fn builtin(name: &str) -> Option<MachineSpec> {
    builtins().iter().find(|spec| spec.name == name).cloned()
}

/// Resolves a `--machine` argument: a built-in name first, otherwise a path
/// to an `alecto-machine-v1` file.
///
/// # Errors
///
/// Returns a ready-to-print message: parse errors are prefixed with the
/// file path, unreadable path-like arguments report the I/O error, and
/// anything else is diagnosed as neither a built-in nor a file.
pub fn load(arg: &str) -> Result<MachineSpec, String> {
    if let Some(spec) = builtin(arg) {
        return Ok(spec);
    }
    match std::fs::read_to_string(arg) {
        Ok(text) => parse(&text).map_err(|err| format!("{arg}: {err}")),
        Err(io) if arg.contains('/') || arg.contains('.') => {
            Err(format!("cannot read machine file {arg}: {io}"))
        }
        Err(_) => Err(format!(
            "unknown machine {arg:?}: not a built-in ({}) and not a readable file",
            BUILTIN_NAMES.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreModelKind;

    #[test]
    fn every_builtin_parses_validates_and_matches_its_name() {
        for name in BUILTIN_NAMES {
            let spec = builtin(name).unwrap_or_else(|| panic!("missing builtin {name}"));
            assert_eq!(spec.name, name);
            assert!(spec.validate().is_ok(), "{name} must validate");
        }
        assert!(builtin("laptop").is_none());
    }

    #[test]
    fn builtins_are_pairwise_distinct_by_fingerprint() {
        let prints: Vec<u64> =
            BUILTIN_NAMES.iter().map(|n| builtin(n).unwrap().fingerprint()).collect();
        for (i, a) in prints.iter().enumerate() {
            for b in &prints[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn builtins_survive_core_count_rescaling() {
        // Figures run machines at 1, 8 and the machine's own core count;
        // per-core geometry must stay power-of-two at all of them.
        for name in BUILTIN_NAMES {
            let spec = builtin(name).unwrap();
            for cores in [1usize, 8, 16] {
                let rescaled = spec.clone().with_cores(cores);
                assert!(rescaled.validate().is_ok(), "{name} at {cores} cores");
            }
        }
    }

    #[test]
    fn the_server_machine_pins_the_ooo_model() {
        assert_eq!(builtin("server").unwrap().core_model, CoreModelKind::OutOfOrder);
        assert_eq!(builtin("desktop").unwrap().core_model, CoreModelKind::Approx);
    }

    #[test]
    fn load_distinguishes_names_paths_and_garbage() {
        assert_eq!(load("desktop").unwrap().cores, 4);
        let err = load("laptop").unwrap_err();
        assert!(err.contains("not a built-in"), "{err}");
        assert!(err.contains("desktop"), "the builtins must be listed: {err}");
        let err = load("/no/such/machine.toml").unwrap_err();
        assert!(err.contains("cannot read machine file"), "{err}");
    }
}
