//! Declarative machine descriptions: the versioned `alecto-machine-v1` file
//! format, its hand-rolled (std-only) parser, and the built-in registry of
//! named machines.
//!
//! Every scenario axis the evaluation sweeps — cache geometry per level,
//! DRAM generation, memory-controller timing, core model and widths, core
//! count — used to be Rust-side configuration, so growing the scenario
//! matrix meant recompiling. A [`MachineSpec`] captures all of it as data:
//!
//! * parsed from a TOML-shaped text file ([`parse`]) with line-numbered,
//!   aliasing-explaining errors that reuse `memsys`'s own validators;
//! * or taken from the built-in registry ([`builtin`], [`load`]) of named
//!   machines (`mobile` / `desktop` / `server` / `manycore`) embedded via
//!   `include_str!`;
//! * and lowered into the simulator's existing config structs through one
//!   shared funnel (`SystemConfig::from_machine` in the `cpu` crate, built
//!   on [`MachineSpec::hierarchy`]) that the CLI, the sweep server and the
//!   tests all use.
//!
//! Specs are canonical: [`MachineSpec::canonical_text`] renders a spec back
//! to the format deterministically, and [`MachineSpec::fingerprint`] is the
//! FNV-1a64 digest of that rendering — a stable content address that names
//! the machine in reports and the sweep protocol. The lowered configuration
//! feeds the harness cell cache's key through `SystemConfig`'s `Debug`
//! rendering, so memoized cells stay content-addressed per machine.
//!
//! # The format, by example
//!
//! ```toml
//! format = "alecto-machine-v1"
//! name = "desktop"
//! cores = 4
//!
//! [core]
//! model = "approx"          # or "ooo" (staged ROB/LSQ/branch pipeline)
//! rob = 256
//! fetch_width = 6
//! commit_width = 4
//! load_queue = 72
//! store_queue = 56
//!
//! [cache.l1d]
//! size_kb = 32              # or `size = <bytes>`, or `sets = <count>`
//! ways = 8
//! latency = 4
//! miss_latency = 1
//! mshrs = 16
//!
//! [cache.l3]                # totals for the machine's `cores` cores
//! size_kb = 8192
//! ways = 16
//! latency = 35
//! miss_latency = 4
//! mshrs = 256
//!
//! [dram]
//! kind = "ddr4-2400"        # or "ddr3-1600"
//!
//! [timing]
//! preset = "balanced"       # or explicit dram_drain_requests/_period
//!
//! [prefetch]                # optional: pin the composite stack
//! stack = "gs-cs-pmp"       # gs-berti-cplx | gs-cs-pmp-temporal | pmp | berti
//! ```
//!
//! Every key is optional except `format`, `name` and `cores`: omitted keys
//! take the Table-I default at the machine's core count, so a file only has
//! to say what differs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod registry;
mod spec;

pub use parse::{compile_entries, parse, Entry, RawValue, FORMAT_VERSION};
pub use registry::{builtin, load, BUILTIN_NAMES};
pub use spec::{MachineSpec, PrefetchStack, TimingPreset, TimingSpec};

/// Which timing model simulates each core.
///
/// The two models share the prefetch/selection stack and the memory
/// hierarchy; they differ only in how core cycles are accounted. `Approx` is
/// the fast analytic frontier model and stays the default for sweeps;
/// `OutOfOrder` is the staged integer-cycle pipeline (ROB/LSQ/gshare).
/// Selected per run via a machine description's `[core] model` key, the
/// harness `--core-model {approx|ooo}` flag, or the sweep server's
/// `"core_model"` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoreModelKind {
    /// Analytic fetch/retire frontier model, f64 time.
    #[default]
    Approx,
    /// Staged out-of-order pipeline, integer cycles.
    OutOfOrder,
}

impl CoreModelKind {
    /// Stable lower-case label used by machine files, the CLI flag, the
    /// sweep-server JSON field and report annotations.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Approx => "approx",
            Self::OutOfOrder => "ooo",
        }
    }

    /// Parses a machine-file/CLI/server label (`"approx"` or `"ooo"`).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "approx" => Some(Self::Approx),
            "ooo" => Some(Self::OutOfOrder),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_model_labels_round_trip() {
        assert_eq!(CoreModelKind::default(), CoreModelKind::Approx);
        for kind in [CoreModelKind::Approx, CoreModelKind::OutOfOrder] {
            assert_eq!(CoreModelKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(CoreModelKind::from_label("o3"), None);
    }
}
