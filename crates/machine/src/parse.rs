//! The `alecto-machine-v1` text parser: a hand-rolled, std-only reader for
//! the TOML-shaped machine format, split into a line-level lexing stage
//! (producing [`Entry`] records that remember their source line) and a
//! compile stage ([`compile_entries`]) that the sweep server reuses for
//! inline JSON machine objects.

use alecto_types::CACHE_LINE_BYTES;
use memsys::CacheParams;

use crate::spec::{dram_from_label, MachineSpec, PrefetchStack, TimingPreset, TimingSpec};
use crate::CoreModelKind;

/// The format version this build reads and writes.
pub const FORMAT_VERSION: &str = "alecto-machine-v1";

/// A raw value as written in a machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawValue {
    /// An unsigned decimal integer (underscore separators allowed).
    Int(u64),
    /// A double-quoted string.
    Str(String),
}

/// One `key = value` assignment, addressed by its dotted path (section plus
/// key, e.g. `cache.l1d.ways`) and carrying the 1-based source line it came
/// from. Line `0` means "no source line" — the sweep server synthesizes
/// entries at line 0 from inline JSON objects, and errors then omit the
/// `line N:` prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Dotted path: top-level keys are bare (`cores`), section keys are
    /// prefixed (`cache.l3.mshrs`).
    pub path: String,
    /// The assigned value.
    pub value: RawValue,
    /// 1-based source line, or 0 for synthesized entries.
    pub line: usize,
}

fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

fn err_at(line: usize, msg: impl std::fmt::Display) -> String {
    if line == 0 {
        msg.to_string()
    } else {
        format!("line {line}: {msg}")
    }
}

/// Lexes machine-description text into [`Entry`] records: section headers
/// set the path prefix, `key = value` lines append entries, `#` comments
/// and blank lines are skipped. Duplicate paths are an error naming both
/// lines.
fn lex(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut prefix = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            // Allow a trailing comment after the header, TOML-style.
            let rest = rest.split_once('#').map_or(rest, |(head, _)| head).trim_end();
            let Some(section) = rest.strip_suffix(']') else {
                return Err(err_at(line_no, format!("unterminated section header {line:?}")));
            };
            let section = section.trim();
            if !is_ident(section) {
                return Err(err_at(line_no, format!("invalid section name {section:?}")));
            }
            prefix = format!("{section}.");
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err_at(
                line_no,
                format!(
                    "expected `key = value`, a `[section]` header or a `#` comment, got {line:?}"
                ),
            ));
        };
        let key = key.trim();
        if !is_ident(key) || key.contains('.') {
            return Err(err_at(line_no, format!("invalid key {key:?}")));
        }
        let value = value.trim();
        let parsed = if let Some(quoted) = value.strip_prefix('"') {
            let Some(end) = quoted.find('"') else {
                return Err(err_at(line_no, format!("unterminated string for key `{key}`")));
            };
            let tail = quoted[end + 1..].trim();
            if !tail.is_empty() && !tail.starts_with('#') {
                return Err(err_at(
                    line_no,
                    format!("trailing text {tail:?} after string for key `{key}`"),
                ));
            }
            RawValue::Str(quoted[..end].to_string())
        } else {
            let bare = value.split('#').next().unwrap_or("").trim();
            if bare.is_empty() {
                return Err(err_at(line_no, format!("missing value for key `{key}`")));
            }
            let digits: String = bare.chars().filter(|c| *c != '_').collect();
            let Ok(int) = digits.parse::<u64>() else {
                return Err(err_at(
                    line_no,
                    format!("value {bare:?} for key `{key}` is neither a decimal integer nor a quoted string"),
                ));
            };
            RawValue::Int(int)
        };
        let path = format!("{prefix}{key}");
        if let Some(first) = entries.iter().find(|e| e.path == path) {
            return Err(err_at(
                line_no,
                format!("duplicate key `{path}` (first set on line {})", first.line),
            ));
        }
        entries.push(Entry { path, value: parsed, line: line_no });
    }
    Ok(entries)
}

/// A consumable view over parsed entries: each `take_*` call marks its
/// entry used, so anything left at the end is an unknown key.
struct Pool {
    items: Vec<(Entry, bool)>,
}

impl Pool {
    fn new(entries: &[Entry]) -> Self {
        Self { items: entries.iter().map(|e| (e.clone(), false)).collect() }
    }

    fn take(&mut self, path: &str) -> Option<(RawValue, usize)> {
        let slot = self.items.iter_mut().find(|(e, used)| !*used && e.path == path)?;
        slot.1 = true;
        Some((slot.0.value.clone(), slot.0.line))
    }

    fn take_int(&mut self, path: &str) -> Result<Option<(u64, usize)>, String> {
        match self.take(path) {
            None => Ok(None),
            Some((RawValue::Int(v), line)) => Ok(Some((v, line))),
            Some((RawValue::Str(_), line)) => {
                Err(err_at(line, format!("key `{path}` expects an integer, got a string")))
            }
        }
    }

    fn take_str(&mut self, path: &str) -> Result<Option<(String, usize)>, String> {
        match self.take(path) {
            None => Ok(None),
            Some((RawValue::Str(v), line)) => Ok(Some((v, line))),
            Some((RawValue::Int(_), line)) => {
                Err(err_at(line, format!("key `{path}` expects a quoted string, got an integer")))
            }
        }
    }

    /// Lowest source line among entries under `prefix.` (used to anchor
    /// hierarchy-validation errors to the section that caused them).
    fn section_line(&self, prefix: &str) -> Option<usize> {
        self.items.iter().filter(|(e, _)| e.path.starts_with(prefix)).map(|(e, _)| e.line).min()
    }

    fn first_unused(&self) -> Option<&Entry> {
        self.items.iter().filter(|(_, used)| !*used).map(|(e, _)| e).min_by_key(|e| e.line)
    }
}

fn positive(value: u64, line: usize, path: &str) -> Result<u64, String> {
    if value == 0 {
        return Err(err_at(line, format!("key `{path}` must be at least 1")));
    }
    Ok(value)
}

fn as_usize(value: u64, line: usize, path: &str) -> Result<usize, String> {
    usize::try_from(value)
        .map_err(|_| err_at(line, format!("key `{path}` value {value} is too large")))
}

fn as_u32(value: u64, line: usize, path: &str) -> Result<u32, String> {
    u32::try_from(value)
        .map_err(|_| err_at(line, format!("key `{path}` value {value} is too large")))
}

/// Applies one `[cache.<level>]` section to `params`. `scale` is 1 for the
/// private levels and the core count for the shared L3, whose file keys are
/// machine-wide totals.
fn apply_cache_section(
    pool: &mut Pool,
    section: &str,
    params: &mut CacheParams,
    scale: usize,
) -> Result<(), String> {
    let prefix = format!("cache.{section}");
    if let Some((ways, line)) = pool.take_int(&format!("{prefix}.ways"))? {
        params.ways = as_usize(
            positive(ways, line, &format!("{prefix}.ways"))?,
            line,
            &format!("{prefix}.ways"),
        )?;
    }
    if let Some((line_bytes, line)) = pool.take_int(&format!("{prefix}.line"))? {
        if line_bytes != CACHE_LINE_BYTES {
            return Err(err_at(
                line,
                format!("`{prefix}.line` = {line_bytes}: only {CACHE_LINE_BYTES}-byte lines are supported"),
            ));
        }
    }
    // The capacity can be spelled three ways; when more than one is given
    // they must agree (after converting through ways × line size).
    let mut size: Option<(u64, usize, &str)> = None;
    if let Some((bytes, line)) = pool.take_int(&format!("{prefix}.size"))? {
        size = Some((positive(bytes, line, &format!("{prefix}.size"))?, line, "size"));
    }
    if let Some((kb, line)) = pool.take_int(&format!("{prefix}.size_kb"))? {
        let bytes = positive(kb, line, &format!("{prefix}.size_kb"))? * 1024;
        if let Some((prev, prev_line, prev_key)) = size {
            if prev != bytes {
                return Err(err_at(
                    line,
                    format!("`{prefix}.size_kb` = {kb} disagrees with `{prefix}.{prev_key}` on line {prev_line} ({prev} B)"),
                ));
            }
        }
        size = Some((bytes, line, "size_kb"));
    }
    if let Some((sets, line)) = pool.take_int(&format!("{prefix}.sets"))? {
        let bytes = positive(sets, line, &format!("{prefix}.sets"))?
            * params.ways as u64
            * CACHE_LINE_BYTES;
        if let Some((prev, prev_line, prev_key)) = size {
            if prev != bytes {
                return Err(err_at(
                    line,
                    format!(
                        "`{prefix}.sets` = {sets} implies {bytes} B at {} ways, disagreeing with `{prefix}.{prev_key}` on line {prev_line} ({prev} B)",
                        params.ways
                    ),
                ));
            }
        }
        size = Some((bytes, line, "sets"));
    }
    if let Some((bytes, line, key)) = size {
        if scale > 1 && !bytes.is_multiple_of(scale as u64) {
            return Err(err_at(
                line,
                format!("`{prefix}.{key}` totals {bytes} B, which does not divide evenly across {scale} cores"),
            ));
        }
        params.size_bytes = bytes / scale as u64;
    }
    if let Some((latency, line)) = pool.take_int(&format!("{prefix}.latency"))? {
        params.latency = positive(latency, line, &format!("{prefix}.latency"))?;
    }
    if let Some((miss, _)) = pool.take_int(&format!("{prefix}.miss_latency"))? {
        params.miss_latency = miss;
    }
    if let Some((mshrs, line)) = pool.take_int(&format!("{prefix}.mshrs"))? {
        let key = format!("{prefix}.mshrs");
        let mshrs = positive(mshrs, line, &key)?;
        if scale > 1 && !mshrs.is_multiple_of(scale as u64) {
            return Err(err_at(
                line,
                format!("`{key}` totals {mshrs} MSHRs, which does not divide evenly across {scale} cores"),
            ));
        }
        params.mshrs = as_usize(mshrs, line, &key)? / scale;
    }
    Ok(())
}

/// Expected keys per section, quoted in unknown-key errors so typos are
/// self-diagnosing.
fn expected_keys(path: &str) -> &'static str {
    if path.starts_with("cache.") {
        "size_kb, size, sets, ways, line, latency, miss_latency, mshrs"
    } else if path.starts_with("core.") {
        "model, rob, fetch_width, commit_width, load_queue, store_queue"
    } else if path.starts_with("dram.") {
        "kind"
    } else if path.starts_with("timing.") {
        "preset, dram_drain_requests, dram_drain_period"
    } else if path.starts_with("selector.") {
        "epoch_instructions"
    } else if path.starts_with("prefetch.") {
        "stack, temporal_metadata_kb"
    } else if path.contains('.') {
        "sections core, cache.l1d, cache.l2, cache.l3, dram, timing, selector, prefetch"
    } else {
        "format, name, cores"
    }
}

/// Compiles lexed (or synthesized) entries into a validated [`MachineSpec`].
///
/// With `inline` set, `name` defaults to `"inline"` — the sweep server uses
/// this for machine objects embedded in a request body, where entries carry
/// line 0 and errors come back without `line N:` prefixes.
///
/// # Errors
///
/// Returns the first problem found, formatted `line N: message` when the
/// offending entry has a source line. Hierarchy-validation failures (the
/// power-of-two-sets aliasing explanation among them) are anchored to the
/// first line of the section that declared the offending level.
pub fn compile_entries(entries: &[Entry], inline: bool) -> Result<MachineSpec, String> {
    let mut pool = Pool::new(entries);

    let Some((format, line)) = pool.take_str("format")? else {
        return Err(format!("missing required key `format` (expected \"{FORMAT_VERSION}\")"));
    };
    if format != FORMAT_VERSION {
        return Err(if format.starts_with("alecto-machine-v") {
            err_at(
                line,
                format!("unsupported machine format version {format:?} (this build reads \"{FORMAT_VERSION}\")"),
            )
        } else {
            err_at(
                line,
                format!(
                    "not a machine description: format = {format:?}, expected \"{FORMAT_VERSION}\""
                ),
            )
        });
    }

    let name = match pool.take_str("name")? {
        Some((name, _)) => name,
        None if inline => "inline".to_string(),
        None => return Err("missing required key `name`".to_string()),
    };

    let Some((cores, cores_line)) = pool.take_int("cores")? else {
        return Err("missing required key `cores`".to_string());
    };
    let cores = as_usize(positive(cores, cores_line, "cores")?, cores_line, "cores")?;

    let mut spec = MachineSpec::table1(cores);
    spec.name = name;

    if let Some((model, line)) = pool.take_str("core.model")? {
        spec.core_model = CoreModelKind::from_label(&model).ok_or_else(|| {
            err_at(line, format!("unknown core model {model:?} (expected approx or ooo)"))
        })?;
    }
    if let Some((rob, line)) = pool.take_int("core.rob")? {
        spec.rob_entries = as_usize(positive(rob, line, "core.rob")?, line, "core.rob")?;
    }
    if let Some((width, line)) = pool.take_int("core.fetch_width")? {
        spec.fetch_width =
            as_u32(positive(width, line, "core.fetch_width")?, line, "core.fetch_width")?;
    }
    if let Some((width, line)) = pool.take_int("core.commit_width")? {
        spec.commit_width =
            as_u32(positive(width, line, "core.commit_width")?, line, "core.commit_width")?;
    }
    if let Some((entries, line)) = pool.take_int("core.load_queue")? {
        spec.load_queue =
            as_usize(positive(entries, line, "core.load_queue")?, line, "core.load_queue")?;
    }
    if let Some((entries, line)) = pool.take_int("core.store_queue")? {
        spec.store_queue =
            as_usize(positive(entries, line, "core.store_queue")?, line, "core.store_queue")?;
    }

    apply_cache_section(&mut pool, "l1d", &mut spec.l1d, 1)?;
    apply_cache_section(&mut pool, "l2", &mut spec.l2, 1)?;
    apply_cache_section(&mut pool, "l3", &mut spec.l3_per_core, cores)?;

    if let Some((kind, line)) = pool.take_str("dram.kind")? {
        spec.dram = dram_from_label(&kind).ok_or_else(|| {
            err_at(line, format!("unknown DRAM kind {kind:?} (expected ddr3-1600 or ddr4-2400)"))
        })?;
    }

    let preset = pool.take_str("timing.preset")?;
    let drain_requests = pool.take_int("timing.dram_drain_requests")?;
    let drain_period = pool.take_int("timing.dram_drain_period")?;
    match (preset, drain_requests, drain_period) {
        (Some((label, line)), None, None) => {
            spec.timing = TimingSpec::Preset(TimingPreset::from_label(&label).ok_or_else(|| {
                err_at(
                    line,
                    format!("unknown timing preset {label:?} (expected balanced, latency-sensitive or bandwidth-bound)"),
                )
            })?);
        }
        (None, Some((requests, rline)), Some((period, pline))) => {
            let requests = as_u32(
                positive(requests, rline, "timing.dram_drain_requests")?,
                rline,
                "timing.dram_drain_requests",
            )?;
            let period = as_u32(
                positive(period, pline, "timing.dram_drain_period")?,
                pline,
                "timing.dram_drain_period",
            )?;
            spec.timing = TimingSpec::Explicit(memsys::TimingParams {
                dram_drain_requests: requests,
                dram_drain_period: period,
            });
        }
        (Some((_, line)), Some(_), _) | (Some((_, line)), _, Some(_)) => {
            return Err(err_at(
                line,
                "`timing.preset` and explicit drain knobs are mutually exclusive — pick one",
            ));
        }
        (None, Some((_, line)), None) | (None, None, Some((_, line))) => {
            return Err(err_at(
                line,
                "explicit timing needs both `dram_drain_requests` and `dram_drain_period`",
            ));
        }
        (None, None, None) => {}
    }

    if let Some((epoch, line)) = pool.take_int("selector.epoch_instructions")? {
        spec.selector_epoch_instructions = positive(epoch, line, "selector.epoch_instructions")?;
    }

    let stack = pool.take_str("prefetch.stack")?;
    let metadata = pool.take_int("prefetch.temporal_metadata_kb")?;
    match (stack, metadata) {
        (Some((label, line)), metadata) => {
            let parsed = PrefetchStack::from_label(&label).ok_or_else(|| {
                err_at(
                    line,
                    format!("unknown prefetch stack {label:?} (expected gs-cs-pmp, gs-berti-cplx, gs-cs-pmp-temporal, pmp or berti)"),
                )
            })?;
            spec.prefetch = Some(match (parsed, metadata) {
                (PrefetchStack::GsCsPmpTemporal { .. }, Some((kb, kb_line))) => {
                    let key = "prefetch.temporal_metadata_kb";
                    let kb = as_u32(positive(kb, kb_line, key)?, kb_line, key)?;
                    PrefetchStack::GsCsPmpTemporal { metadata_kb: kb }
                }
                (stack, None) => stack,
                (_, Some((_, kb_line))) => {
                    return Err(err_at(
                        kb_line,
                        "`prefetch.temporal_metadata_kb` only applies to the \"gs-cs-pmp-temporal\" stack",
                    ));
                }
            });
        }
        (None, Some((_, line))) => {
            return Err(err_at(
                line,
                "`prefetch.temporal_metadata_kb` requires `prefetch.stack = \"gs-cs-pmp-temporal\"`",
            ));
        }
        (None, None) => {}
    }

    if let Some(entry) = pool.first_unused() {
        return Err(err_at(
            entry.line,
            format!(
                "unknown key `{}` (expected one of: {})",
                entry.path,
                expected_keys(&entry.path)
            ),
        ));
    }

    spec.validate().map_err(|msg| {
        // Anchor level-prefixed hierarchy errors to the section that set the
        // offending geometry, when the file has one.
        let section = if msg.starts_with("L1D:") {
            Some("cache.l1d.")
        } else if msg.starts_with("L2:") {
            Some("cache.l2.")
        } else if msg.starts_with("L3:") {
            Some("cache.l3.")
        } else if msg.starts_with("timing:") {
            Some("timing.")
        } else {
            None
        };
        match section.and_then(|prefix| pool.section_line(prefix)) {
            Some(line) => err_at(line, msg),
            None => msg,
        }
    })?;
    Ok(spec)
}

/// Parses complete `alecto-machine-v1` text into a validated [`MachineSpec`].
///
/// # Errors
///
/// Returns a `line N:`-prefixed description of the first problem: a lexing
/// error, an unknown or duplicated key, a value constraint, or a hierarchy
/// validation failure (anchored to the section that declared it).
pub fn parse(text: &str) -> Result<MachineSpec, String> {
    compile_entries(&lex(text)?, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{DramKind, TimingParams};

    fn minimal(extra: &str) -> String {
        format!("format = \"{FORMAT_VERSION}\"\nname = \"t\"\ncores = 2\n{extra}")
    }

    #[test]
    fn minimal_file_takes_table1_defaults() {
        let spec = parse(&minimal("")).unwrap();
        let mut expected = MachineSpec::table1(2);
        expected.name = "t".to_string();
        assert_eq!(spec, expected);
    }

    #[test]
    fn sections_comments_and_underscores_parse() {
        let spec = parse(&minimal(
            "# comment\n[core]\nmodel = \"ooo\"  # inline comment\nrob = 1_024\n\n[cache.l3]\nsize_kb = 8192\nmshrs = 256\n\n[dram]\nkind = \"ddr3-1600\"\n",
        ))
        .unwrap();
        assert_eq!(spec.core_model, CoreModelKind::OutOfOrder);
        assert_eq!(spec.rob_entries, 1024);
        assert_eq!(spec.l3_per_core.size_bytes, 4096 * 1024);
        assert_eq!(spec.l3_per_core.mshrs, 128);
        assert_eq!(spec.dram, DramKind::Ddr3_1600);
    }

    #[test]
    fn size_spellings_must_agree() {
        let ok = parse(&minimal("[cache.l1d]\nsize_kb = 32\nsets = 64\n")).unwrap();
        assert_eq!(ok.l1d.size_bytes, 32 * 1024);
        let err = parse(&minimal("[cache.l1d]\nsize_kb = 32\nsets = 128\n")).unwrap_err();
        assert!(err.contains("disagree"), "{err}");
        assert!(err.starts_with("line 6:"), "{err}");
    }

    #[test]
    fn explicit_timing_requires_both_knobs_and_excludes_presets() {
        let spec =
            parse(&minimal("[timing]\ndram_drain_requests = 1\ndram_drain_period = 16\n")).unwrap();
        assert_eq!(spec.timing, TimingSpec::Explicit(TimingParams::bandwidth_bound()));
        let err = parse(&minimal("[timing]\ndram_drain_requests = 1\n")).unwrap_err();
        assert!(err.contains("both"), "{err}");
        let err = parse(&minimal("[timing]\npreset = \"balanced\"\ndram_drain_requests = 1\n"))
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn errors_carry_the_offending_line() {
        let err = parse(&minimal("[core]\nmodel = \"o3\"\n")).unwrap_err();
        assert_eq!(err, "line 5: unknown core model \"o3\" (expected approx or ooo)");
        let err = parse(&minimal("cores = 4\n")).unwrap_err();
        assert!(err.starts_with("line 4: duplicate key `cores` (first set on line 3)"), "{err}");
        let err = parse(&minimal("[cache.l1d]\nsize = 12345\n")).unwrap_err();
        assert!(err.starts_with("line 5:"), "{err}");
        assert!(err.contains("alias"), "the aliasing explanation must surface: {err}");
    }

    #[test]
    fn unknown_keys_and_versions_are_diagnosed() {
        let err = parse(&minimal("[core]\nwidth = 4\n")).unwrap_err();
        assert!(err.contains("unknown key `core.width`"), "{err}");
        assert!(err.contains("fetch_width"), "the hint must list expected keys: {err}");
        let err = parse("format = \"alecto-machine-v9\"\nname = \"t\"\ncores = 1\n").unwrap_err();
        assert!(err.contains("unsupported machine format version"), "{err}");
        let err = parse("name = \"t\"\ncores = 1\n").unwrap_err();
        assert!(err.contains("missing required key `format`"), "{err}");
    }

    #[test]
    fn prefetch_section_pins_a_stack() {
        let spec = parse(&minimal("[prefetch]\nstack = \"gs-berti-cplx\"\n")).unwrap();
        assert_eq!(spec.prefetch, Some(PrefetchStack::GsBertiCplx));
        let spec = parse(&minimal("[prefetch]\nstack = \"gs-cs-pmp-temporal\"\n")).unwrap();
        assert_eq!(
            spec.prefetch,
            Some(PrefetchStack::GsCsPmpTemporal {
                metadata_kb: PrefetchStack::DEFAULT_TEMPORAL_METADATA_KB
            })
        );
        let spec = parse(&minimal(
            "[prefetch]\nstack = \"gs-cs-pmp-temporal\"\ntemporal_metadata_kb = 1024\n",
        ))
        .unwrap();
        assert_eq!(spec.prefetch, Some(PrefetchStack::GsCsPmpTemporal { metadata_kb: 1024 }));
        assert_eq!(parse(&minimal("")).unwrap().prefetch, None);
    }

    #[test]
    fn prefetch_errors_are_line_numbered() {
        let err = parse(&minimal("[prefetch]\nstack = \"stride-only\"\n")).unwrap_err();
        assert_eq!(
            err,
            "line 5: unknown prefetch stack \"stride-only\" (expected gs-cs-pmp, gs-berti-cplx, gs-cs-pmp-temporal, pmp or berti)"
        );
        let err = parse(&minimal("[prefetch]\nstack = \"pmp\"\ntemporal_metadata_kb = 64\n"))
            .unwrap_err();
        assert!(err.starts_with("line 6:"), "{err}");
        assert!(err.contains("only applies"), "{err}");
        let err = parse(&minimal("[prefetch]\ntemporal_metadata_kb = 64\n")).unwrap_err();
        assert!(err.starts_with("line 5:"), "{err}");
        assert!(err.contains("requires"), "{err}");
    }

    #[test]
    fn l3_totals_must_divide_across_cores() {
        let err = parse(&minimal("[cache.l3]\nmshrs = 129\n")).unwrap_err();
        assert!(err.contains("does not divide evenly across 2 cores"), "{err}");
    }

    #[test]
    fn inline_mode_defaults_the_name_and_drops_line_prefixes() {
        let entries = vec![
            Entry { path: "format".into(), value: RawValue::Str(FORMAT_VERSION.into()), line: 0 },
            Entry { path: "cores".into(), value: RawValue::Int(4), line: 0 },
            Entry { path: "core.model".into(), value: RawValue::Str("bogus".into()), line: 0 },
        ];
        let err = compile_entries(&entries, true).unwrap_err();
        assert_eq!(err, "unknown core model \"bogus\" (expected approx or ooo)");
        let ok = compile_entries(&entries[..2], true).unwrap();
        assert_eq!(ok.name, "inline");
    }
}
