//! Property tests over the `alecto-machine-v1` format: every well-formed
//! spec must survive the spec → canonical text → spec round trip exactly,
//! the fingerprint must be a function of the spec alone (stable across
//! cosmetic reformatting, different for any semantic change), and parse
//! errors must point at the offending source line.

use machine::{parse, CoreModelKind, MachineSpec, TimingPreset, TimingSpec};
use memsys::{CacheParams, DramKind, TimingParams};
use proptest::prelude::*;

/// Pow2 set counts and way counts keep every generated geometry valid at
/// the machine's own (pow2) core count.
fn cache_level() -> impl Strategy<Value = CacheParams> {
    (0u32..8, 0u32..5, 1u64..60, 0u64..8, 1usize..128).prop_map(
        |(sets_log2, ways_log2, latency, miss_latency, mshrs)| {
            let sets = 16u64 << sets_log2;
            let ways = 1usize << ways_log2;
            CacheParams { size_bytes: sets * ways as u64 * 64, ways, latency, miss_latency, mshrs }
        },
    )
}

fn timing_spec() -> impl Strategy<Value = TimingSpec> {
    prop_oneof![
        (0u32..3).prop_map(|i| TimingSpec::Preset(
            [TimingPreset::Balanced, TimingPreset::LatencySensitive, TimingPreset::BandwidthBound]
                [i as usize]
        )),
        (1u32..8, 1u32..32).prop_map(|(dram_drain_requests, dram_drain_period)| {
            TimingSpec::Explicit(TimingParams { dram_drain_requests, dram_drain_period })
        }),
    ]
}

fn machine_spec() -> impl Strategy<Value = MachineSpec> {
    let core = (1usize..512, 1u32..10, 1u32..10, (1usize..128, 1usize..128));
    let caches = (cache_level(), cache_level(), cache_level());
    (0u32..5, core, caches, timing_spec(), (0u32..3, any::<bool>(), 1u64..100_000)).prop_map(
        |(
            cores_log2,
            (rob, fetch, commit, (lq, sq)),
            (l1d, l2, l3),
            timing,
            (name_i, ddr4, epoch),
        )| {
            let mut spec = MachineSpec::table1(1usize << cores_log2);
            spec.name = ["alpha", "beta-2", "gamma_3", "d.e.f", "x"][name_i as usize].to_string();
            spec.rob_entries = rob;
            spec.fetch_width = fetch;
            spec.commit_width = commit;
            spec.load_queue = lq;
            spec.store_queue = sq;
            spec.l1d = l1d;
            spec.l2 = l2;
            spec.l3_per_core = l3;
            spec.core_model = if ddr4 { CoreModelKind::Approx } else { CoreModelKind::OutOfOrder };
            spec.dram = if ddr4 { DramKind::Ddr4_2400 } else { DramKind::Ddr3_1600 };
            spec.timing = timing;
            spec.selector_epoch_instructions = epoch;
            spec
        },
    )
}

proptest! {
    #[test]
    fn canonical_text_round_trips_exactly(spec in machine_spec()) {
        prop_assert!(spec.validate().is_ok(), "generator must produce valid specs");
        let text = spec.canonical_text();
        let reparsed = parse(&text).map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&reparsed, &spec);
        prop_assert_eq!(reparsed.fingerprint(), spec.fingerprint());
        // And the canonical rendering is a fixed point.
        prop_assert_eq!(reparsed.canonical_text(), text);
    }

    #[test]
    fn fingerprint_ignores_formatting_noise(spec in machine_spec(), seed in 0u64..1_000) {
        let canonical = spec.canonical_text();
        // Re-dress the same document: comments, indentation and blank
        // lines — none of it semantic.
        let mut noisy = String::from("# prologue comment\n\n");
        for (i, line) in canonical.lines().enumerate() {
            if i as u64 % 3 == seed % 3 {
                noisy.push_str("   ");
            }
            noisy.push_str(line);
            if !line.is_empty() && !line.starts_with('[') && i as u64 % 4 == seed % 4 {
                noisy.push_str("   # trailing note");
            }
            noisy.push('\n');
            if i as u64 % 5 == seed % 5 {
                noisy.push('\n');
            }
        }
        let reparsed = parse(&noisy).map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&reparsed, &spec);
        prop_assert_eq!(reparsed.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_every_semantic_change(spec in machine_spec()) {
        let base = spec.fingerprint();
        let mut l2_latency = spec.clone();
        l2_latency.l2.latency += 1;
        prop_assert!(l2_latency.fingerprint() != base, "L2 latency must be digested");
        let mut renamed = spec.clone();
        renamed.name.push('x');
        prop_assert!(renamed.fingerprint() != base, "the name must be digested");
        let mut epoch = spec.clone();
        epoch.selector_epoch_instructions += 1;
        prop_assert!(epoch.fingerprint() != base, "the selector epoch must be digested");
    }

    #[test]
    fn unknown_keys_are_reported_with_their_line(spec in machine_spec(), pos in 0u64..10_000) {
        let mut lines: Vec<String> = spec.canonical_text().lines().map(str::to_string).collect();
        // Splice an unknown key anywhere after the three required headers.
        let at = 3 + (pos as usize % (lines.len() - 3));
        lines.insert(at, "mystery = 7".to_string());
        let err = parse(&lines.join("\n")).unwrap_err();
        let expected = format!("line {}: unknown key `", at + 1);
        prop_assert!(err.starts_with(&expected), "want prefix {:?}, got {:?}", expected, err);
    }

    #[test]
    fn corrupted_values_are_reported_with_their_line(spec in machine_spec(), pos in 0u64..10_000) {
        let text = spec.canonical_text();
        let lines: Vec<&str> = text.lines().collect();
        let value_lines: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains('=') && !l.contains('"'))
            .map(|(i, _)| i)
            .collect();
        let at = value_lines[pos as usize % value_lines.len()];
        let key = lines[at].split('=').next().unwrap().trim().to_string();
        let mut mutated: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        mutated[at] = format!("{key} = oops");
        let err = parse(&mutated.join("\n")).unwrap_err();
        let expected = format!("line {}: ", at + 1);
        prop_assert!(err.starts_with(&expected), "want prefix {:?}, got {:?}", expected, err);
    }
}
