//! The oracle panel: the properties every fuzz scenario is checked against.
//!
//! Oracles are evaluated in the fixed order [`OracleKind::Sanity`],
//! [`OracleKind::Determinism`], [`OracleKind::Pathology`] (filtered by the
//! panel's selection); the first one that fires *is* the finding. Keeping the
//! order fixed makes findings — and therefore whole fuzz runs — byte-stable.

use alecto_types::TraceSource;
use cpu::{CompositeKind, DriveOptions, SelectionAlgorithm, System, SystemConfig, SystemReport};
use machine::MachineSpec;

/// Default pathology threshold: the selector must stay within 5% of the best
/// static prefetcher configuration.
pub const DEFAULT_PATHOLOGY_THRESHOLD_PCT: f64 = 5.0;

/// Which property a scenario is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Metrics must be well-formed: finite, non-negative, IPC within the
    /// machine's fetch width.
    Sanity,
    /// The identical cell must report byte-identical results under different
    /// batch sizes and producer-thread counts.
    Determinism,
    /// The adaptive selector must not lose to the best *static* prefetcher
    /// stack by more than the panel's threshold.
    Pathology,
}

impl OracleKind {
    /// All oracles, in evaluation order.
    pub const ALL: [Self; 3] = [Self::Sanity, Self::Determinism, Self::Pathology];

    /// Stable CLI / manifest label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Sanity => "sanity",
            Self::Determinism => "determinism",
            Self::Pathology => "pathology",
        }
    }

    /// Parses a [`OracleKind::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|kind| kind.label() == label)
    }
}

/// The panel a fuzz run checks scenarios against.
#[derive(Debug, Clone, PartialEq)]
pub struct OraclePanel {
    /// Enabled oracles; evaluation follows [`OracleKind::ALL`] order
    /// regardless of the order given here.
    pub kinds: Vec<OracleKind>,
    /// Allowed selector shortfall versus the best static stack, in percent.
    pub pathology_threshold_pct: f64,
}

impl Default for OraclePanel {
    fn default() -> Self {
        Self {
            kinds: OracleKind::ALL.to_vec(),
            pathology_threshold_pct: DEFAULT_PATHOLOGY_THRESHOLD_PCT,
        }
    }
}

impl OraclePanel {
    /// A panel running only `kind` (used by the shrinker to re-confirm one
    /// specific finding).
    #[must_use]
    pub fn only(kind: OracleKind, pathology_threshold_pct: f64) -> Self {
        Self { kinds: vec![kind], pathology_threshold_pct }
    }

    fn enabled(&self, kind: OracleKind) -> bool {
        self.kinds.contains(&kind)
    }
}

/// A fired oracle: which property failed and a human-readable account.
#[derive(Debug, Clone, PartialEq)]
pub struct Firing {
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// Deterministic one-line description of the violation.
    pub detail: String,
}

/// The prefetch composite a machine pins, falling back to the paper's
/// GS+CS+PMP stack when the machine file has no `[prefetch]` section.
#[must_use]
pub fn machine_composite(spec: &MachineSpec) -> CompositeKind {
    spec.prefetch.map_or(CompositeKind::GsCsPmp, cpu::composite_from_stack)
}

/// Runs one cell (machine × algorithm × composite × source) to a report.
///
/// # Panics
///
/// Panics only on an empty source slice, which the fuzzer never constructs.
#[must_use]
pub fn run_cell(
    spec: &MachineSpec,
    source: &TraceSource,
    algorithm: SelectionAlgorithm,
    composite: CompositeKind,
    options: DriveOptions,
) -> SystemReport {
    let mut system = System::new(SystemConfig::from_machine(spec), algorithm, composite);
    system.run_sources_with(std::slice::from_ref(source), options).expect("one source provided")
}

/// FNV-1a64 digest of a report's full `Debug` rendering — the identity the
/// repro manifest pins and replay compares against.
#[must_use]
pub fn report_digest(report: &SystemReport) -> u64 {
    format!("{report:?}")
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x1_0000_01b3))
}

/// The report the digest is computed over: the panel's *subject* cell — the
/// paper's adaptive selector on the machine's composite, default drive
/// options.
#[must_use]
pub fn subject_report(spec: &MachineSpec, source: &TraceSource) -> SystemReport {
    run_cell(spec, source, SelectionAlgorithm::Alecto, machine_composite(spec), DriveOptions::new())
}

/// Checks `source` on `spec` against the panel; returns the first firing
/// oracle, or `None` when the scenario is clean.
#[must_use]
pub fn evaluate(spec: &MachineSpec, source: &TraceSource, panel: &OraclePanel) -> Option<Firing> {
    let composite = machine_composite(spec);
    let subject =
        run_cell(spec, source, SelectionAlgorithm::Alecto, composite, DriveOptions::new());

    if panel.enabled(OracleKind::Sanity) {
        if let Some(detail) = sanity_violation(spec, &subject) {
            return Some(Firing { oracle: OracleKind::Sanity, detail });
        }
    }

    if panel.enabled(OracleKind::Determinism) {
        // Same cell, different batching and producer threading: the drive
        // loop documents these knobs trade wall-clock for threads and
        // nothing else, so any field-level difference is a finding.
        let alternate = run_cell(
            spec,
            source,
            SelectionAlgorithm::Alecto,
            composite,
            DriveOptions { batch_records: 257, producer_threads: 2 },
        );
        if alternate != subject {
            return Some(Firing {
                oracle: OracleKind::Determinism,
                detail: format!(
                    "report diverges across drive options: geomean IPC {:?} (batch default, serial) vs {:?} (batch 257, 2 producers)",
                    subject.geomean_ipc(),
                    alternate.geomean_ipc()
                ),
            });
        }
    }

    if panel.enabled(OracleKind::Pathology) {
        let subject_ipc = subject.geomean_ipc().unwrap_or(0.0);
        let static_stacks =
            [CompositeKind::PmpOnly, CompositeKind::BertiOnly, CompositeKind::GsCsPmp];
        let (best_stack, best_ipc) = static_stacks
            .into_iter()
            .map(|stack| {
                let report =
                    run_cell(spec, source, SelectionAlgorithm::Ipcp, stack, DriveOptions::new());
                (stack, report.geomean_ipc().unwrap_or(0.0))
            })
            .reduce(|best, candidate| if candidate.1 > best.1 { candidate } else { best })
            .expect("three static stacks");
        let floor = best_ipc * (1.0 - panel.pathology_threshold_pct / 100.0);
        if subject_ipc < floor {
            return Some(Firing {
                oracle: OracleKind::Pathology,
                detail: format!(
                    "selector IPC {subject_ipc:.4} trails best static stack {} (IPCP, IPC {best_ipc:.4}) by more than {:.1}%",
                    best_stack.label(),
                    panel.pathology_threshold_pct
                ),
            });
        }
    }

    None
}

/// Returns a description of the first metric-sanity violation, if any.
fn sanity_violation(spec: &MachineSpec, report: &SystemReport) -> Option<String> {
    let ceiling = f64::from(spec.fetch_width) + 1e-9;
    for core in &report.cores {
        if !core.ipc.is_finite() || core.ipc < 0.0 {
            return Some(format!("core {} IPC is malformed: {}", core.workload, core.ipc));
        }
        if core.ipc > ceiling {
            return Some(format!(
                "core {} IPC {:.4} exceeds the {}-wide fetch ceiling",
                core.workload, core.ipc, spec.fetch_width
            ));
        }
        if core.instructions == 0 || core.cycles == 0 {
            return Some(format!(
                "core {} retired {} instructions in {} cycles",
                core.workload, core.instructions, core.cycles
            ));
        }
    }
    let latency = report.avg_mem_latency();
    if !latency.is_finite() || latency < 0.0 {
        return Some(format!("average memory latency is malformed: {latency}"));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn labels_round_trip() {
        for kind in OracleKind::ALL {
            assert_eq!(OracleKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(OracleKind::from_label("chaos"), None);
    }

    #[test]
    fn default_panel_enables_everything() {
        let panel = OraclePanel::default();
        for kind in OracleKind::ALL {
            assert!(panel.enabled(kind));
        }
        let only = OraclePanel::only(OracleKind::Sanity, 1.0);
        assert!(only.enabled(OracleKind::Sanity));
        assert!(!only.enabled(OracleKind::Pathology));
    }

    #[test]
    fn sanity_and_determinism_hold_on_table1() {
        let spec = MachineSpec::table1(1);
        let scenario = Scenario::generate(11, 0, 1_500, &spec);
        let panel = OraclePanel {
            kinds: vec![OracleKind::Sanity, OracleKind::Determinism],
            ..OraclePanel::default()
        };
        assert_eq!(evaluate(&spec, &scenario.source(), &panel), None);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let spec = MachineSpec::table1(1);
        let scenario = Scenario::generate(11, 0, 1_000, &spec);
        let a = report_digest(&subject_report(&spec, &scenario.source()));
        let b = report_digest(&subject_report(&spec, &scenario.source()));
        assert_eq!(a, b, "same cell, same digest");
        let other = Scenario::generate(11, 1, 1_000, &spec);
        let c = report_digest(&subject_report(&spec, &other.source()));
        assert_ne!(a, c, "different scenario, different digest");
    }
}
