//! Adversarial scenario fuzzer for the selection simulator.
//!
//! The fuzzer composes registered pattern primitives (zipfian object
//! popularity, pointer chases, set-aliasing conflict thrash, phase-shifting
//! interleaves — the `traces::Blend` vocabulary) into random-but-exactly-
//! reproducible scenarios, runs each through a configurable machine cell, and
//! checks the resulting reports against an oracle panel:
//!
//! * **sanity** — metrics are finite, non-negative, and IPC stays within the
//!   machine's fetch width;
//! * **determinism** — the identical cell reports byte-identical results
//!   under different drive batching and producer-thread counts;
//! * **pathology** — the paper's adaptive selector does not lose to the best
//!   *static* prefetcher stack by more than a threshold.
//!
//! Scenarios are a pure function of `(master seed, index, machine)`; the
//! same seed and budget therefore always yield the same findings, whatever
//! `--jobs` is. A firing scenario is shrunk (components dropped, access
//! budget halved, while the oracle keeps firing) and persisted as a
//! `.altr` trace + machine description + manifest triple that
//! [`persist::replay`] — and the `stress` experiment, via the `file:`
//! scheme — can replay byte-identically. See `ARCHITECTURE.md` § Fuzzing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod persist;
pub mod rng;
pub mod scenario;
pub mod shrink;

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use machine::MachineSpec;

pub use oracle::{
    evaluate, machine_composite, report_digest, subject_report, Firing, OracleKind, OraclePanel,
    DEFAULT_PATHOLOGY_THRESHOLD_PCT,
};
pub use persist::{persist_finding, replay, Manifest, Replay, ReproPaths, MANIFEST_FORMAT};
pub use rng::FuzzRng;
pub use scenario::Scenario;
pub use shrink::{shrink, Shrunk, MIN_ACCESSES};

/// Everything one fuzz run needs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; with the budget it fully determines the findings.
    pub seed: u64,
    /// Number of scenarios to generate and check.
    pub budget: u64,
    /// Access budget per scenario (before shrinking).
    pub accesses: usize,
    /// Worker threads scanning scenarios; `0` means one per available core.
    pub jobs: usize,
    /// The machine every scenario runs on.
    pub machine: MachineSpec,
    /// The oracle panel scenarios are checked against.
    pub panel: OraclePanel,
    /// Where to persist repro triples; `None` keeps findings in memory only.
    pub out_dir: Option<PathBuf>,
    /// Whether firing scenarios are minimised before reporting/persisting.
    pub shrink: bool,
}

impl FuzzConfig {
    /// Defaults: 16 scenarios of 4000 accesses on `machine`, full panel,
    /// auto jobs, shrinking on, no persistence.
    #[must_use]
    pub fn new(seed: u64, machine: MachineSpec) -> Self {
        Self {
            seed,
            budget: 16,
            accesses: 4_000,
            jobs: 0,
            machine,
            panel: OraclePanel::default(),
            out_dir: None,
            shrink: true,
        }
    }
}

/// One confirmed (and possibly shrunk and persisted) finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Scenario index within the run.
    pub index: u64,
    /// Scenario benchmark name.
    pub name: String,
    /// The scenario's derived blend seed.
    pub scenario_seed: u64,
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// Description of the violation (for the *final*, shrunk scenario).
    pub detail: String,
    /// Access budget after shrinking.
    pub accesses: usize,
    /// Components the shrinker removed.
    pub dropped: Vec<&'static str>,
    /// Digest of the subject report (what replay must reproduce).
    pub report_digest: u64,
    /// Paths of the persisted repro triple, when an output directory was
    /// configured.
    pub repro: Option<ReproPaths>,
}

/// The result of a fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOutcome {
    /// The run's master seed.
    pub seed: u64,
    /// Scenarios checked.
    pub budget: u64,
    /// Fingerprint of the machine fuzzed.
    pub machine_fingerprint: String,
    /// Confirmed findings in scenario-index order.
    pub findings: Vec<Finding>,
}

impl FuzzOutcome {
    /// Renders the outcome as deterministic text: the same seed, budget,
    /// machine and output directory always produce byte-identical output,
    /// whatever `jobs` was.
    #[must_use]
    pub fn render(&self, machine_label: &str, panel: &OraclePanel) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "alecto fuzz");
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "budget = {} scenario(s)", self.budget);
        let _ = writeln!(out, "machine = {} ({})", machine_label, self.machine_fingerprint);
        let oracle_labels: Vec<&str> = OracleKind::ALL
            .into_iter()
            .filter(|kind| panel.kinds.contains(kind))
            .map(OracleKind::label)
            .collect();
        let _ = writeln!(
            out,
            "oracles = {} (pathology threshold {}%)",
            oracle_labels.join(","),
            panel.pathology_threshold_pct
        );
        let _ = writeln!(out, "findings = {}", self.findings.len());
        for finding in &self.findings {
            let _ = writeln!(out);
            let _ = writeln!(out, "[finding {:04}]", finding.index);
            let _ = writeln!(out, "scenario = {} (seed {})", finding.name, finding.scenario_seed);
            let _ = writeln!(out, "oracle = {}", finding.oracle.label());
            let _ = writeln!(out, "accesses = {}", finding.accesses);
            if !finding.dropped.is_empty() {
                let _ = writeln!(out, "dropped = {}", finding.dropped.join(","));
            }
            let _ = writeln!(out, "digest = {:#018x}", finding.report_digest);
            let _ = writeln!(out, "detail = {}", finding.detail);
            if let Some(repro) = &finding.repro {
                let _ = writeln!(out, "repro = {}", repro.manifest.display());
            }
        }
        out
    }
}

fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        return jobs;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs the fuzzer: scans `budget` scenarios across the worker pool, then —
/// serially, in scenario-index order, so the outcome is independent of
/// `jobs` — shrinks and persists every firing scenario.
///
/// # Errors
///
/// Propagates filesystem errors from repro persistence; the scan itself
/// cannot fail.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the simulator or the fuzzer).
pub fn run_fuzz(config: &FuzzConfig) -> io::Result<FuzzOutcome> {
    let workers =
        effective_jobs(config.jobs).min(usize::try_from(config.budget).unwrap_or(1)).max(1);
    let next = AtomicU64::new(0);
    let fired: Mutex<Vec<(u64, Firing)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= config.budget {
                    break;
                }
                let scenario =
                    Scenario::generate(config.seed, index, config.accesses, &config.machine);
                if let Some(firing) = evaluate(&config.machine, &scenario.source(), &config.panel) {
                    fired.lock().expect("collector poisoned").push((index, firing));
                }
            });
        }
    });

    let mut fired = fired.into_inner().expect("collector poisoned");
    fired.sort_by_key(|(index, _)| *index);

    let mut findings = Vec::with_capacity(fired.len());
    for (index, firing) in fired {
        let scenario = Scenario::generate(config.seed, index, config.accesses, &config.machine);
        let (scenario, dropped, firing) = if config.shrink {
            let shrunk = shrink(
                &config.machine,
                &scenario,
                firing.oracle,
                config.panel.pathology_threshold_pct,
            );
            // Re-describe the violation for the minimised scenario (the
            // metrics in the detail line move as components drop out).
            let panel = OraclePanel::only(firing.oracle, config.panel.pathology_threshold_pct);
            let refire =
                evaluate(&config.machine, &shrunk.scenario.source(), &panel).unwrap_or(firing);
            (shrunk.scenario, shrunk.dropped, refire)
        } else {
            (scenario, Vec::new(), firing)
        };

        let digest = report_digest(&subject_report(&config.machine, &scenario.source()));
        let repro = match &config.out_dir {
            Some(dir) => Some(persist_finding(
                dir,
                &config.machine,
                config.seed,
                &scenario,
                &firing,
                config.panel.pathology_threshold_pct,
                &dropped,
            )?),
            None => None,
        };
        findings.push(Finding {
            index,
            name: scenario.name().to_string(),
            scenario_seed: scenario.seed,
            oracle: firing.oracle,
            detail: firing.detail,
            accesses: scenario.accesses,
            dropped,
            report_digest: digest,
            repro,
        });
    }

    Ok(FuzzOutcome {
        seed: config.seed,
        budget: config.budget,
        machine_fingerprint: config.machine.fingerprint_hex(),
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_report_no_findings_and_are_jobs_independent() {
        // Table I with the sanity+determinism panel: no pathology checks, so
        // this is cheap, and the defaults are expected to be clean.
        let mut config = FuzzConfig::new(7, MachineSpec::table1(1));
        config.budget = 4;
        config.accesses = 1_000;
        config.panel.kinds = vec![OracleKind::Sanity, OracleKind::Determinism];
        config.jobs = 1;
        let serial = run_fuzz(&config).expect("no persistence, no I/O");
        config.jobs = 4;
        let parallel = run_fuzz(&config).expect("no persistence, no I/O");
        assert_eq!(serial, parallel);
        assert!(serial.findings.is_empty(), "{:?}", serial.findings);
        let text = serial.render("table1", &config.panel);
        assert!(text.contains("findings = 0"), "{text}");
        assert!(text.contains("seed = 7"), "{text}");
    }
}
