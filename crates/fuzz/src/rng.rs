//! The fuzzer's own deterministic generator: splitmix64, seeded per
//! scenario. Self-contained on purpose — scenario generation must stay
//! byte-stable across releases, so it cannot ride on the `rand` shim's
//! (deliberately unspecified) stream.

/// A splitmix64 stream. Cheap, full-period over `u64`, and — the property
/// the fuzzer actually needs — a pure function of its seed: the same seed
/// replays the same scenario forever.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Starts the stream at `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in `0..n`. Uses a plain modulus: the bias is irrelevant for
    /// scenario composition and the arithmetic is trivially reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        self.next_u64() % n
    }

    /// A quantized weight in `{0, 1/steps, …, 1}`. Quantizing keeps `Blend`
    /// `Debug` renderings (and therefore source fingerprints and repro
    /// manifests) short and exactly reproducible.
    pub fn weight(&mut self, steps: u64) -> f64 {
        self.below(steps + 1) as f64 / steps as f64
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = FuzzRng::new(7);
        let mut b = FuzzRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FuzzRng::new(8);
        assert_ne!(FuzzRng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn draws_respect_their_ranges() {
        let mut rng = FuzzRng::new(42);
        for _ in 0..1_000 {
            assert!(rng.below(13) < 13);
            let w = rng.weight(8);
            assert!((0.0..=1.0).contains(&w));
            assert!((w * 8.0).fract().abs() < 1e-12, "weights are quantized");
        }
        assert!(!rng.chance(0));
        assert!(rng.chance(100));
    }
}
