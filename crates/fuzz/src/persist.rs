//! Repro persistence and replay: a confirmed finding becomes three sibling
//! files — a recorded `.altr` trace, the machine description it fired on,
//! and a `key = value` manifest tying them together with the seeds, the
//! oracle and the report digest replay must reproduce.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use machine::MachineSpec;

use crate::oracle::{evaluate, report_digest, subject_report, Firing, OracleKind, OraclePanel};
use crate::scenario::Scenario;

/// Manifest format identifier (first line of every manifest).
pub const MANIFEST_FORMAT: &str = "alecto-fuzz-repro-v1";

/// The parsed contents of a repro manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Scenario benchmark name (`fuzz-<master_seed>-<index>`).
    pub name: String,
    /// The fuzz run's master seed.
    pub master_seed: u64,
    /// The scenario's position in that run.
    pub scenario_index: u64,
    /// The scenario's derived blend seed.
    pub scenario_seed: u64,
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// Pathology threshold the run used, in percent.
    pub threshold_pct: f64,
    /// Access budget after shrinking.
    pub accesses: usize,
    /// Sibling machine-description file name.
    pub machine: String,
    /// Fingerprint the machine file must hash to.
    pub machine_fingerprint: String,
    /// Sibling `.altr` trace file name.
    pub trace: String,
    /// FNV-1a64 digest of the subject report replay must reproduce.
    pub report_digest: u64,
    /// Components shrinking removed (comma-separated in the file).
    pub dropped: Vec<String>,
    /// The firing oracle's description at persist time.
    pub detail: String,
}

/// The three files a persisted finding consists of.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproPaths {
    /// The manifest.
    pub manifest: PathBuf,
    /// The recorded trace.
    pub trace: PathBuf,
    /// The machine description.
    pub machine: PathBuf,
}

/// What replaying a manifest established.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// The manifest as parsed.
    pub manifest: Manifest,
    /// The oracle firing observed on replay, if any.
    pub firing: Option<Firing>,
    /// Digest of the replayed subject report.
    pub digest: u64,
    /// Whether the replayed digest matches the manifest.
    pub digest_match: bool,
}

impl Replay {
    /// True when the finding fully reproduced: the recorded oracle fired
    /// again *and* the subject report digest matches byte-for-byte.
    #[must_use]
    pub fn reproduced(&self) -> bool {
        self.digest_match && self.firing.as_ref().is_some_and(|f| f.oracle == self.manifest.oracle)
    }
}

fn quote(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn unquote(value: &str) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got {value}"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            other => {
                return Err(format!("bad escape \\{}", other.map_or(String::new(), String::from)))
            }
        }
    }
    Ok(out)
}

impl Manifest {
    /// Renders the manifest as its on-disk `key = value` text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "format = {}", quote(MANIFEST_FORMAT));
        let _ = writeln!(out, "name = {}", quote(&self.name));
        let _ = writeln!(out, "master_seed = {}", self.master_seed);
        let _ = writeln!(out, "scenario_index = {}", self.scenario_index);
        let _ = writeln!(out, "scenario_seed = {}", self.scenario_seed);
        let _ = writeln!(out, "oracle = {}", quote(self.oracle.label()));
        let _ = writeln!(out, "threshold_pct = {}", quote(&format!("{}", self.threshold_pct)));
        let _ = writeln!(out, "accesses = {}", self.accesses);
        let _ = writeln!(out, "machine = {}", quote(&self.machine));
        let _ = writeln!(out, "machine_fingerprint = {}", quote(&self.machine_fingerprint));
        let _ = writeln!(out, "trace = {}", quote(&self.trace));
        let _ =
            writeln!(out, "report_digest = {}", quote(&format!("{:#018x}", self.report_digest)));
        let _ = writeln!(out, "dropped = {}", quote(&self.dropped.join(",")));
        let _ = writeln!(out, "detail = {}", quote(&self.detail));
        out
    }

    /// Parses manifest text.
    ///
    /// # Errors
    ///
    /// Returns a line-qualified message on malformed syntax, unknown format
    /// versions, missing keys, or out-of-range values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut fields = std::collections::BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            fields.insert(key.trim().to_string(), (lineno + 1, value.trim().to_string()));
        }
        let get = |key: &str| -> Result<&(usize, String), String> {
            fields.get(key).ok_or_else(|| format!("missing key {key}"))
        };
        let get_str = |key: &str| -> Result<String, String> {
            let (lineno, raw) = get(key)?;
            unquote(raw).map_err(|err| format!("line {lineno}: {key}: {err}"))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            let (lineno, raw) = get(key)?;
            raw.parse().map_err(|_| format!("line {lineno}: {key}: expected an integer, got {raw}"))
        };

        let format = get_str("format")?;
        if format != MANIFEST_FORMAT {
            return Err(format!(
                "unknown manifest format {format:?} (expected {MANIFEST_FORMAT:?})"
            ));
        }
        let oracle_label = get_str("oracle")?;
        let oracle = OracleKind::from_label(&oracle_label)
            .ok_or_else(|| format!("unknown oracle {oracle_label:?}"))?;
        let threshold_raw = get_str("threshold_pct")?;
        let threshold_pct: f64 = threshold_raw
            .parse()
            .map_err(|_| format!("threshold_pct: expected a number, got {threshold_raw}"))?;
        let digest_raw = get_str("report_digest")?;
        let report_digest = u64::from_str_radix(digest_raw.trim_start_matches("0x"), 16)
            .map_err(|_| format!("report_digest: expected a hex digest, got {digest_raw}"))?;
        let dropped_raw = get_str("dropped")?;
        let dropped = if dropped_raw.is_empty() {
            Vec::new()
        } else {
            dropped_raw.split(',').map(str::to_string).collect()
        };
        let accesses = usize::try_from(get_u64("accesses")?)
            .map_err(|_| "accesses exceeds this platform's usize".to_string())?;

        Ok(Self {
            name: get_str("name")?,
            master_seed: get_u64("master_seed")?,
            scenario_index: get_u64("scenario_index")?,
            scenario_seed: get_u64("scenario_seed")?,
            oracle,
            threshold_pct,
            accesses,
            machine: get_str("machine")?,
            machine_fingerprint: get_str("machine_fingerprint")?,
            trace: get_str("trace")?,
            report_digest,
            dropped,
            detail: get_str("detail")?,
        })
    }
}

/// Persists a (shrunk) finding into `dir` as the `<name>.altr`,
/// `<name>.machine` and `<name>.manifest` triple, and returns the paths.
/// The digest recorded in the manifest is computed from the *persisted*
/// trace file, so replay compares like with like (and persisting doubles
/// as an integrity check of the artifact it just wrote).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn persist_finding(
    dir: &Path,
    spec: &MachineSpec,
    master_seed: u64,
    scenario: &Scenario,
    firing: &Firing,
    threshold_pct: f64,
    dropped: &[&str],
) -> io::Result<ReproPaths> {
    std::fs::create_dir_all(dir)?;
    let stem = scenario.name().to_string();
    let paths = ReproPaths {
        manifest: dir.join(format!("{stem}.manifest")),
        trace: dir.join(format!("{stem}.altr")),
        machine: dir.join(format!("{stem}.machine")),
    };

    traceio::record_source(&scenario.source(), scenario.seed, &paths.trace)?;
    std::fs::write(&paths.machine, spec.canonical_text())?;

    let replay_source = traceio::file_source(&paths.trace, None)?;
    let digest = report_digest(&subject_report(spec, &replay_source));

    let manifest = Manifest {
        name: stem,
        master_seed,
        scenario_index: scenario.index,
        scenario_seed: scenario.seed,
        oracle: firing.oracle,
        threshold_pct,
        accesses: scenario.accesses,
        machine: paths
            .machine
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default(),
        machine_fingerprint: spec.fingerprint_hex(),
        trace: paths
            .trace
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default(),
        report_digest: digest,
        dropped: dropped.iter().map(|s| (*s).to_string()).collect(),
        detail: firing.detail.clone(),
    };
    std::fs::write(&paths.manifest, manifest.render())?;
    Ok(paths)
}

/// Replays a persisted repro: re-parses the machine, re-checks its
/// fingerprint, replays the recorded trace through the single recorded
/// oracle, and compares the subject-report digest against the manifest.
///
/// # Errors
///
/// Returns `InvalidData` on manifest/machine parse or fingerprint errors and
/// propagates I/O errors from the trace file.
pub fn replay(manifest_path: &Path) -> io::Result<Replay> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let text = std::fs::read_to_string(manifest_path)?;
    let manifest = Manifest::parse(&text)
        .map_err(|err| invalid(format!("{}: {err}", manifest_path.display())))?;
    let dir = manifest_path.parent().unwrap_or_else(|| Path::new("."));

    let machine_path = dir.join(&manifest.machine);
    let machine_text = std::fs::read_to_string(&machine_path)?;
    let spec = machine::parse(&machine_text)
        .map_err(|err| invalid(format!("{}: {err}", machine_path.display())))?;
    if spec.fingerprint_hex() != manifest.machine_fingerprint {
        return Err(invalid(format!(
            "machine fingerprint mismatch: {} hashes to {}, manifest says {}",
            machine_path.display(),
            spec.fingerprint_hex(),
            manifest.machine_fingerprint
        )));
    }

    let source = traceio::file_source(&dir.join(&manifest.trace), None)?;
    let panel = OraclePanel::only(manifest.oracle, manifest.threshold_pct);
    let firing = evaluate(&spec, &source, &panel);
    let digest = report_digest(&subject_report(&spec, &source));
    let digest_match = digest == manifest.report_digest;
    Ok(Replay { manifest, firing, digest, digest_match })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            name: "fuzz-000000000000002a-0003".to_string(),
            master_seed: 42,
            scenario_index: 3,
            scenario_seed: 0xdead_beef,
            oracle: OracleKind::Pathology,
            threshold_pct: 5.0,
            accesses: 1_000,
            machine: "fuzz-000000000000002a-0003.machine".to_string(),
            machine_fingerprint: "0x0123456789abcdef".to_string(),
            trace: "fuzz-000000000000002a-0003.altr".to_string(),
            report_digest: 0x1122_3344_5566_7788,
            dropped: vec!["stream".to_string(), "noise".to_string()],
            detail: "selector IPC 0.1000 trails \"best\" by 50%\nsecond line".to_string(),
        }
    }

    #[test]
    fn manifest_round_trips_through_text() {
        let manifest = sample_manifest();
        let parsed = Manifest::parse(&manifest.render()).expect("round trip");
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn manifest_parse_rejects_malformed_input() {
        assert!(Manifest::parse("").unwrap_err().contains("missing key"));
        let bad_format =
            sample_manifest().render().replace(MANIFEST_FORMAT, "alecto-fuzz-repro-v9");
        assert!(Manifest::parse(&bad_format).unwrap_err().contains("unknown manifest format"));
        let bad_oracle = sample_manifest().render().replace("\"pathology\"", "\"chaos\"");
        assert!(Manifest::parse(&bad_oracle).unwrap_err().contains("unknown oracle"));
        assert!(Manifest::parse("format\n").unwrap_err().contains("line 1"));
    }

    #[test]
    fn quoting_survives_hostile_strings() {
        for s in ["", "plain", "with \"quotes\"", "back\\slash", "multi\nline"] {
            assert_eq!(unquote(&quote(s)).unwrap(), s);
        }
        assert!(unquote("unquoted").is_err());
    }
}
