//! Seeded scenario composition: one fuzz scenario is a random-but-exactly-
//! reproducible adversarial [`Blend`] plus an access budget, derived purely
//! from `(master_seed, index)` and the target machine's cache geometry.

use alecto_types::TraceSource;
use machine::MachineSpec;
use traces::Blend;

use crate::rng::FuzzRng;

/// The benign pattern ingredients the fuzzer may sprinkle into a scenario.
const BENIGN: [&str; 7] =
    ["stream", "stride", "spatial", "delta", "loop_stream", "resident", "noise"];

/// The adversarial ingredients; every scenario carries at least one. Order
/// matters: it is the draw order during generation and the drop order during
/// shrinking.
pub const ADVERSARIAL: [&str; 4] = ["alias", "phase", "chase", "zipf"];

/// One generated fuzz scenario: a reproducible adversarial blend and the
/// access budget it is simulated for.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Position in the fuzz run (0-based).
    pub index: u64,
    /// The scenario's own derived seed (also the blend's generation seed).
    pub seed: u64,
    /// Memory accesses to simulate.
    pub accesses: usize,
    /// The composed pattern mixture.
    pub blend: Blend,
}

impl Scenario {
    /// Composes scenario `index` of the run seeded with `master_seed`.
    ///
    /// Everything — which components participate, their quantized weights,
    /// the instruction gap, the phase period — is a pure function of
    /// `(master_seed, index)`, except the set-aliasing geometry, which is
    /// derived from `spec`'s private L2 (stride = one full way of sets, so
    /// every access of the component lands in the same L2 set; footprint =
    /// 2–4× the associativity, so revisits always conflict).
    #[must_use]
    pub fn generate(master_seed: u64, index: u64, accesses: usize, spec: &MachineSpec) -> Self {
        let mut rng = FuzzRng::new(master_seed ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let seed = rng.next_u64();
        let name = format!("fuzz-{master_seed:016x}-{index:04}");

        let line = 64u64;
        let l2_sets = (spec.l2.size_bytes / (spec.l2.ways as u64 * line)).max(1);
        let alias_stride = l2_sets * line;
        let alias_lines = spec.l2.ways * (2 + rng.below(3) as usize);

        // At least one adversarial ingredient (a non-zero 4-bit mask over
        // ADVERSARIAL), each with a weight in {0.25, …, 1.0}.
        let adversarial_mask = 1 + rng.below((1 << ADVERSARIAL.len()) - 1);
        let mut adversarial = [0.0f64; ADVERSARIAL.len()];
        for (bit, weight) in adversarial.iter_mut().enumerate() {
            if adversarial_mask & (1 << bit) != 0 {
                *weight = (2 + rng.below(7)) as f64 / 8.0;
            }
        }
        let [alias, phase, chase, zipf] = adversarial;

        // Benign filler: each ingredient joins with probability 1/2 at a
        // quantized weight, diluting the adversarial share the way real
        // workloads bury their pathological PCs in ordinary traffic.
        let mut benign = [0.0f64; BENIGN.len()];
        for weight in &mut benign {
            if rng.chance(50) {
                *weight = rng.weight(8);
            }
        }
        let [stream, stride, spatial, delta, loop_stream, resident, noise] = benign;

        let gap = 2 + rng.below(10) as u32;
        let phase_period = 1u32 << (6 + rng.below(6));
        let chase_nodes = (1 + rng.below(8) as usize) * 1_024;

        let blend = Blend::builder(&name)
            .memory_intensive()
            .seed(seed)
            .gap(gap)
            .stream(stream)
            .stride(stride)
            .spatial(spatial)
            .delta(delta)
            .loop_stream(loop_stream)
            .resident(resident)
            .noise(noise)
            .chase(chase)
            .chase_nodes(chase_nodes)
            .zipf(zipf)
            .alias(alias)
            .alias_geometry(alias_stride, alias_lines)
            .phase(phase)
            .phase_period(phase_period)
            .finish();

        Self { index, seed, accesses, blend }
    }

    /// The scenario as a lazy trace source (its fingerprint covers the whole
    /// blend description, so distinct scenarios never collide in caches).
    #[must_use]
    pub fn source(&self) -> TraceSource {
        self.blend.source(self.accesses)
    }

    /// The scenario's benchmark name (`fuzz-<master_seed>-<index>`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.blend.name
    }

    /// Names of the components currently carrying non-zero weight, in the
    /// fixed drop order used by the shrinker (benign first, adversarial
    /// last, so shrinking peels filler before it touches the pathology).
    #[must_use]
    pub fn active_components(&self) -> Vec<&'static str> {
        BENIGN
            .iter()
            .chain(ADVERSARIAL.iter())
            .copied()
            .filter(|name| component_weight(&self.blend, name) > 0.0)
            .collect()
    }
}

/// Reads the weight of the named component. Component names are the
/// [`BENIGN`] / [`ADVERSARIAL`] strings; anything else panics (the set is
/// closed and internal to the fuzzer).
#[must_use]
pub fn component_weight(blend: &Blend, name: &str) -> f64 {
    match name {
        "stream" => blend.stream,
        "stride" => blend.stride,
        "spatial" => blend.spatial,
        "delta" => blend.delta,
        "chase" => blend.chase,
        "loop_stream" => blend.loop_stream,
        "resident" => blend.resident,
        "noise" => blend.noise,
        "zipf" => blend.zipf,
        "alias" => blend.alias,
        "phase" => blend.phase,
        other => panic!("unknown blend component {other:?}"),
    }
}

/// Writes the weight of the named component (the shrinker's zeroing hook).
pub fn set_component_weight(blend: &mut Blend, name: &str, weight: f64) {
    match name {
        "stream" => blend.stream = weight,
        "stride" => blend.stride = weight,
        "spatial" => blend.spatial = weight,
        "delta" => blend.delta = weight,
        "chase" => blend.chase = weight,
        "loop_stream" => blend.loop_stream = weight,
        "resident" => blend.resident = weight,
        "noise" => blend.noise = weight,
        "zipf" => blend.zipf = weight,
        "alias" => blend.alias = weight,
        "phase" => blend.phase = weight,
        other => panic!("unknown blend component {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_seed_and_index() {
        let spec = MachineSpec::table1(1);
        let a = Scenario::generate(42, 3, 4_000, &spec);
        let b = Scenario::generate(42, 3, 4_000, &spec);
        assert_eq!(a, b);
        assert_ne!(a.blend, Scenario::generate(42, 4, 4_000, &spec).blend);
        assert_ne!(a.blend, Scenario::generate(43, 3, 4_000, &spec).blend);
        assert_eq!(a.name(), "fuzz-000000000000002a-0003");
    }

    #[test]
    fn every_scenario_carries_an_adversarial_component() {
        let spec = MachineSpec::table1(1);
        for index in 0..64 {
            let s = Scenario::generate(7, index, 1_000, &spec);
            let adversarial_weight: f64 =
                ADVERSARIAL.iter().map(|name| component_weight(&s.blend, name)).sum();
            assert!(adversarial_weight > 0.0, "scenario {index} is entirely benign: {s:?}");
            assert!(!s.active_components().is_empty());
        }
    }

    #[test]
    fn alias_geometry_tracks_the_machine_l2() {
        let spec = MachineSpec::table1(1);
        let sets = spec.l2.size_bytes / (spec.l2.ways as u64 * 64);
        let s = Scenario::generate(1, 0, 1_000, &spec);
        assert_eq!(s.blend.alias_stride, sets * 64);
        assert!(s.blend.alias_lines >= 2 * spec.l2.ways);
        assert!(s.blend.alias_lines <= 4 * spec.l2.ways);
    }

    #[test]
    fn component_weight_accessors_round_trip() {
        let spec = MachineSpec::table1(1);
        let mut s = Scenario::generate(9, 0, 100, &spec);
        for name in BENIGN.iter().chain(ADVERSARIAL.iter()) {
            set_component_weight(&mut s.blend, name, 0.5);
            assert!((component_weight(&s.blend, name) - 0.5).abs() < 1e-12);
        }
    }
}
