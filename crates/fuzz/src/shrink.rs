//! Finding minimisation: peel components and halve the access budget while
//! the original oracle keeps firing, so persisted repros are as small as the
//! pathology allows.

use machine::MachineSpec;

use crate::oracle::{evaluate, Firing, OracleKind, OraclePanel};
use crate::scenario::{component_weight, set_component_weight, Scenario};

/// Shrinking never drives a scenario below this many accesses — a repro that
/// fits one selector epoch is no longer exercising adaptation.
pub const MIN_ACCESSES: usize = 500;

/// A minimised scenario plus an account of what shrinking removed.
#[derive(Debug, Clone, PartialEq)]
pub struct Shrunk {
    /// The smallest scenario that still trips the oracle.
    pub scenario: Scenario,
    /// Components whose weights were zeroed, in drop order.
    pub dropped: Vec<&'static str>,
    /// How many times the access budget was halved.
    pub halvings: u32,
}

/// Minimises `scenario` while `oracle` (re-checked in isolation at
/// `pathology_threshold_pct`) keeps firing: first drop component weights in
/// the fixed benign-first order, always keeping at least one component, then
/// halve the access budget down to [`MIN_ACCESSES`].
#[must_use]
pub fn shrink(
    spec: &MachineSpec,
    scenario: &Scenario,
    oracle: OracleKind,
    pathology_threshold_pct: f64,
) -> Shrunk {
    let panel = OraclePanel::only(oracle, pathology_threshold_pct);
    let still_fires = |candidate: &Scenario| -> bool {
        matches!(evaluate(spec, &candidate.source(), &panel), Some(Firing { oracle: o, .. }) if o == oracle)
    };

    let mut current = scenario.clone();
    let mut dropped = Vec::new();
    for name in scenario.active_components() {
        if current.active_components().len() <= 1 {
            break;
        }
        let weight = component_weight(&current.blend, name);
        if weight <= 0.0 {
            continue;
        }
        let mut candidate = current.clone();
        set_component_weight(&mut candidate.blend, name, 0.0);
        if still_fires(&candidate) {
            current = candidate;
            dropped.push(name);
        }
    }

    let mut halvings = 0;
    while current.accesses / 2 >= MIN_ACCESSES {
        let mut candidate = current.clone();
        candidate.accesses /= 2;
        if !still_fires(&candidate) {
            break;
        }
        current = candidate;
        halvings += 1;
    }

    Shrunk { scenario: current, dropped, halvings }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine whose selector epoch is longer than any fuzz budget: the
    /// bandit never collects a reward, so the selector cannot adapt — the
    /// deliberately weak configuration the pathology oracle exists to catch.
    fn weak_machine() -> MachineSpec {
        let mut spec = MachineSpec::table1(1);
        spec.selector_epoch_instructions = 1_000_000;
        spec
    }

    #[test]
    fn shrinking_preserves_the_firing_oracle() {
        let spec = weak_machine();
        // Hunt a pathology over a few seeds; at least one aliasing-heavy
        // scenario must trip the weak machine.
        let panel = OraclePanel::only(OracleKind::Pathology, 2.0);
        let found = (0..24u64).find_map(|index| {
            let scenario = Scenario::generate(42, index, 2_000, &spec);
            evaluate(&spec, &scenario.source(), &panel).map(|firing| (scenario, firing))
        });
        let Some((scenario, firing)) = found else {
            panic!("no pathology found on the weak machine in 24 scenarios");
        };
        let shrunk = shrink(&spec, &scenario, firing.oracle, 2.0);
        assert!(shrunk.scenario.accesses <= scenario.accesses);
        assert!(shrunk.scenario.accesses >= MIN_ACCESSES);
        assert!(!shrunk.scenario.active_components().is_empty());
        // The minimised scenario still trips the same oracle.
        let refire = evaluate(&spec, &shrunk.scenario.source(), &panel).expect("still fires");
        assert_eq!(refire.oracle, OracleKind::Pathology);
    }
}
