//! Fuzzer ↔ `.altr` round-trip properties and the end-to-end repro cycle.

use std::io::Cursor;

use alecto_types::MemoryRecord;
use fuzz::{persist_finding, replay, OracleKind, OraclePanel, Scenario};
use machine::MachineSpec;
use proptest::prelude::*;

fn encode(scenario: &Scenario) -> Vec<u8> {
    let source = scenario.source();
    let mut writer = traceio::TraceWriter::new(
        Cursor::new(Vec::new()),
        source.name(),
        source.memory_intensive(),
        scenario.seed,
    )
    .expect("in-memory writer");
    writer.write_all(source.records()).expect("in-memory write");
    let (_, cursor) = writer.finish_into_inner().expect("finish");
    cursor.into_inner()
}

proptest! {
    // Any fuzzer-composed blend round-trips through the `.altr` codec: the
    // decoded records equal the generated ones and a re-encode of the
    // decoded document is byte-identical.
    #[test]
    fn fuzzed_blends_round_trip_byte_identically(
        master_seed in any::<u64>(),
        index in 0u64..64,
        accesses in 1usize..600,
    ) {
        let spec = MachineSpec::table1(1);
        let scenario = Scenario::generate(master_seed, index, accesses, &spec);
        let generated: Vec<MemoryRecord> = scenario.source().records().collect();
        prop_assert_eq!(generated.len(), accesses);

        let bytes = encode(&scenario);
        let (header, decoded) = traceio::decode_document(&bytes).expect("decode");
        prop_assert_eq!(header.name.as_str(), scenario.name());
        prop_assert_eq!(header.seed, scenario.seed);
        prop_assert_eq!(&decoded, &generated);

        // Encoding is deterministic: the same scenario always produces the
        // same bytes (this is what makes persisted repros diffable).
        prop_assert_eq!(&encode(&scenario), &bytes);
    }
}

proptest! {
    // Scenario generation itself is pure: regenerating from the same
    // coordinates yields an identical blend, and the blend's trace source
    // replays identical records on every pull.
    #[test]
    fn scenario_generation_is_pure(master_seed in any::<u64>(), index in 0u64..32) {
        let spec = MachineSpec::table1(1);
        let a = Scenario::generate(master_seed, index, 200, &spec);
        let b = Scenario::generate(master_seed, index, 200, &spec);
        prop_assert_eq!(&a, &b);
        let first: Vec<MemoryRecord> = a.source().records().collect();
        let second: Vec<MemoryRecord> = a.source().records().collect();
        prop_assert_eq!(first, second);
    }
}

/// A machine whose selector epoch never elapses within a fuzz budget: the
/// selector cannot adapt, so aliasing-heavy scenarios become pathologies.
fn weak_machine() -> MachineSpec {
    let mut spec = MachineSpec::table1(1);
    spec.selector_epoch_instructions = 1_000_000;
    spec
}

#[test]
fn persisted_finding_replays_byte_identically() {
    let spec = weak_machine();
    let panel = OraclePanel::only(OracleKind::Pathology, 2.0);
    let (scenario, firing) = (0..24u64)
        .find_map(|index| {
            let scenario = Scenario::generate(42, index, 2_000, &spec);
            fuzz::evaluate(&spec, &scenario.source(), &panel).map(|firing| (scenario, firing))
        })
        .expect("a pathology fires on the weak machine within 24 scenarios");

    let dir = std::env::temp_dir().join(format!("fuzz-repro-e2e-{}", std::process::id()));
    let paths = persist_finding(&dir, &spec, 42, &scenario, &firing, 2.0, &["stream"])
        .expect("persist the finding");
    assert!(paths.trace.exists() && paths.machine.exists() && paths.manifest.exists());

    // The recorded trace passes a full verification walk.
    let reader = traceio::TraceReader::open(&paths.trace).expect("open repro trace");
    reader.verify_blocks().expect("repro trace verifies");

    // Replay re-fires the recorded oracle and reproduces the report digest.
    let first = replay(&paths.manifest).expect("replay");
    assert!(first.reproduced(), "replay did not reproduce: {first:?}");
    assert_eq!(first.manifest.oracle, OracleKind::Pathology);
    assert_eq!(first.manifest.dropped, vec!["stream".to_string()]);

    // Replay is itself deterministic.
    let second = replay(&paths.manifest).expect("replay again");
    assert_eq!(first.digest, second.digest);

    // Tampering with the machine file is caught by the fingerprint check.
    let mut text = std::fs::read_to_string(&paths.machine).expect("read machine");
    assert!(text.contains("rob = 256"), "canonical text changed shape:\n{text}");
    text = text.replace("rob = 256", "rob = 128");
    std::fs::write(&paths.machine, text).expect("tamper");
    let err = replay(&paths.manifest).expect_err("tampered machine must fail");
    assert!(err.to_string().contains("fingerprint mismatch"), "{err}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
