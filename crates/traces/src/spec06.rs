//! SPEC CPU2006-like workloads (Fig. 8).
//!
//! The memory-intensive subset and the benchmark list follow Fig. 8 exactly;
//! each benchmark's pattern blend follows its published characterisation
//! (e.g. `GemsFDTD` interleaves a spatial PC with a stream PC as in Fig. 2,
//! `mcf`/`omnetpp` are pointer-chasing, `lbm`/`libquantum` stream).

use alecto_types::{TraceSource, Workload};

use crate::blend::Blend;

/// Static description of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkInfo {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Whether Fig. 8 lists it inside the memory-intensive box.
    pub memory_intensive: bool,
}

/// The 29 SPEC CPU2006 benchmarks of Fig. 8, memory-intensive ones first.
pub const BENCHMARKS: [BenchmarkInfo; 29] = [
    BenchmarkInfo { name: "astar", memory_intensive: true },
    BenchmarkInfo { name: "bwaves", memory_intensive: true },
    BenchmarkInfo { name: "bzip2", memory_intensive: true },
    BenchmarkInfo { name: "cactusADM", memory_intensive: true },
    BenchmarkInfo { name: "gcc", memory_intensive: true },
    BenchmarkInfo { name: "GemsFDTD", memory_intensive: true },
    BenchmarkInfo { name: "gromacs", memory_intensive: true },
    BenchmarkInfo { name: "hmmer", memory_intensive: true },
    BenchmarkInfo { name: "lbm", memory_intensive: true },
    BenchmarkInfo { name: "leslie3d", memory_intensive: true },
    BenchmarkInfo { name: "libquantum", memory_intensive: true },
    BenchmarkInfo { name: "mcf", memory_intensive: true },
    BenchmarkInfo { name: "milc", memory_intensive: true },
    BenchmarkInfo { name: "omnetpp", memory_intensive: true },
    BenchmarkInfo { name: "soplex", memory_intensive: true },
    BenchmarkInfo { name: "sphinx3", memory_intensive: true },
    BenchmarkInfo { name: "xalancbmk", memory_intensive: true },
    BenchmarkInfo { name: "zeusmp", memory_intensive: true },
    BenchmarkInfo { name: "calculix", memory_intensive: false },
    BenchmarkInfo { name: "dealII", memory_intensive: false },
    BenchmarkInfo { name: "gamess", memory_intensive: false },
    BenchmarkInfo { name: "gobmk", memory_intensive: false },
    BenchmarkInfo { name: "h264ref", memory_intensive: false },
    BenchmarkInfo { name: "namd", memory_intensive: false },
    BenchmarkInfo { name: "perlbench", memory_intensive: false },
    BenchmarkInfo { name: "povray", memory_intensive: false },
    BenchmarkInfo { name: "sjeng", memory_intensive: false },
    BenchmarkInfo { name: "tonto", memory_intensive: false },
    BenchmarkInfo { name: "wrf", memory_intensive: false },
];

/// Builds the blend describing `name`.
///
/// # Panics
///
/// Panics if `name` is not a SPEC CPU2006 benchmark from [`BENCHMARKS`].
#[must_use]
pub fn blend(name: &str) -> Blend {
    let info = BENCHMARKS
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown SPEC CPU2006 benchmark: {name}"));
    let b = Blend::builder(name);
    let b = if info.memory_intensive { b.memory_intensive() } else { b };
    match name {
        // Streaming floating-point codes.
        "lbm" => b.stream(0.8).stride(0.15).noise(0.05).gap(8).finish(),
        "libquantum" => b.stream(0.9).resident(0.1).gap(10).finish(),
        "bwaves" => b.stream(0.6).stride(0.3).noise(0.1).gap(9).finish(),
        "leslie3d" => b.stream(0.55).spatial(0.3).stride(0.15).gap(10).finish(),
        "milc" => b.stream(0.5).noise(0.35).stride(0.15).gap(9).finish(),
        "zeusmp" => b.stream(0.5).stride(0.3).spatial(0.2).gap(12).finish(),
        // Fig. 2: interleaved spatial (PC 0x30b00) and stream (PC 0x30aca).
        "GemsFDTD" => b.spatial(0.5).stream(0.35).delta(0.15).gap(8).finish(),
        // Pointer chasing / irregular integer codes.
        "mcf" => b
            .chase(0.55)
            .loop_stream(0.15)
            .noise(0.2)
            .stride(0.1)
            .gap(14)
            .chase_nodes(10_000)
            .finish(),
        "omnetpp" => b
            .chase(0.45)
            .loop_stream(0.15)
            .noise(0.2)
            .resident(0.2)
            .gap(16)
            .chase_nodes(8_000)
            .finish(),
        "xalancbmk" => b
            .chase(0.4)
            .loop_stream(0.1)
            .spatial(0.2)
            .resident(0.3)
            .gap(16)
            .chase_nodes(6_000)
            .finish(),
        "astar" => b
            .chase(0.35)
            .loop_stream(0.1)
            .stride(0.25)
            .resident(0.3)
            .gap(16)
            .chase_nodes(5_000)
            .finish(),
        // Mixed integer codes.
        "gcc" => b
            .spatial(0.3)
            .chase(0.2)
            .loop_stream(0.1)
            .stride(0.15)
            .resident(0.25)
            .gap(16)
            .chase_nodes(4_000)
            .finish(),
        "bzip2" => b.stride(0.4).resident(0.35).noise(0.25).gap(14).finish(),
        "soplex" => b.spatial(0.35).stride(0.25).loop_stream(0.1).noise(0.3).gap(12).finish(),
        "sphinx3" => b.stream(0.35).spatial(0.3).loop_stream(0.1).resident(0.25).gap(13).finish(),
        "hmmer" => b.stride(0.7).resident(0.3).gap(16).finish(),
        "cactusADM" => b.stride(0.5).stream(0.3).noise(0.2).gap(12).finish(),
        "gromacs" => b.stride(0.4).spatial(0.3).resident(0.3).gap(18).finish(),
        // Compute-bound codes: large gaps, cache-resident working sets.
        "calculix" => b.resident(0.7).stride(0.3).gap(45).finish(),
        "dealII" => b.resident(0.6).chase(0.2).stride(0.2).gap(40).chase_nodes(1_000).finish(),
        "gamess" => b.resident(0.85).stride(0.15).gap(60).finish(),
        "gobmk" => b.resident(0.7).noise(0.2).chase(0.1).gap(50).chase_nodes(800).finish(),
        "h264ref" => b.stride(0.45).resident(0.45).spatial(0.1).gap(35).finish(),
        "namd" => b.resident(0.65).stride(0.25).stream(0.1).gap(48).finish(),
        "perlbench" => b.resident(0.7).chase(0.15).noise(0.15).gap(42).chase_nodes(1_500).finish(),
        "povray" => b.resident(0.85).noise(0.15).gap(65).finish(),
        "sjeng" => b.resident(0.75).noise(0.25).gap(55).finish(),
        "tonto" => b.resident(0.7).stride(0.3).gap(50).finish(),
        "wrf" => b.stream(0.35).stride(0.3).resident(0.35).gap(30).finish(),
        _ => unreachable!("benchmark {name} is listed but has no blend"),
    }
}

/// Generates the named SPEC CPU2006-like workload (eager, O(accesses) memory).
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn workload(name: &str, accesses: usize) -> Workload {
    blend(name).build(accesses)
}

/// Streaming variant of [`workload`]: a lazy [`TraceSource`] producing the
/// identical records in O(1) memory.
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn source(name: &str, accesses: usize) -> TraceSource {
    blend(name).source(accesses)
}

/// Names of the memory-intensive subset (the dotted box of Fig. 8).
#[must_use]
pub fn memory_intensive() -> Vec<&'static str> {
    BENCHMARKS.iter().filter(|b| b.memory_intensive).map(|b| b.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_29_benchmarks_have_blends() {
        for b in &BENCHMARKS {
            let w = workload(b.name, 200);
            assert_eq!(w.memory_accesses(), 200);
            assert_eq!(w.memory_intensive, b.memory_intensive, "{}", b.name);
        }
    }

    #[test]
    fn memory_intensive_subset_matches_fig8() {
        let m = memory_intensive();
        assert_eq!(m.len(), 18);
        assert!(m.contains(&"mcf"));
        assert!(m.contains(&"GemsFDTD"));
        assert!(!m.contains(&"povray"));
    }

    #[test]
    fn intensity_shows_up_in_instruction_gaps() {
        let mem = workload("mcf", 2_000);
        let compute = workload("povray", 2_000);
        assert!(
            compute.instructions() > 3 * mem.instructions(),
            "compute-bound benchmarks must have far larger gaps"
        );
    }

    #[test]
    #[should_panic(expected = "unknown SPEC CPU2006 benchmark")]
    fn unknown_name_panics() {
        let _ = workload("not-a-benchmark", 10);
    }
}
