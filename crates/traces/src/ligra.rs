//! Ligra-like graph-processing workloads (Fig. 17, eight-core runs).
//!
//! The paper runs Ligra kernels on an `rMatGraph_WJ_5_100` input. The
//! synthetic stand-in builds a small power-law (rMat-flavoured) graph and
//! replays the memory behaviour of frontier-based kernels: sequential sweeps
//! over the offset/edge arrays (streaming) interleaved with irregular,
//! partially recurring accesses to per-vertex data (temporal/pointer-chase
//! flavoured), which is exactly the mix that stresses prefetcher selection.

use alecto_types::{Addr, MemoryRecord, Pc, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Ligra kernels modelled.
pub const BENCHMARKS: [&str; 5] = ["BFS", "PageRank", "Components", "BC", "Radii"];

/// Number of vertices in the synthetic rMat-like graph.
const VERTICES: usize = 16_384;
/// Average degree (the paper's rMat input uses degree ≈ 5).
const AVG_DEGREE: usize = 5;

fn rmat_edges(seed: u64) -> Vec<u32> {
    // Power-law-ish edge targets: repeatedly halve the vertex range with a
    // biased coin, the core idea of rMat generation.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(VERTICES * AVG_DEGREE);
    for _ in 0..VERTICES * AVG_DEGREE {
        let mut lo = 0u32;
        let mut hi = VERTICES as u32;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if rng.gen_bool(0.65) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        edges.push(lo);
    }
    edges
}

/// Generates the named Ligra-like workload with `accesses` memory accesses.
///
/// # Panics
///
/// Panics if `name` is not one of [`BENCHMARKS`].
#[must_use]
pub fn workload(name: &str, accesses: usize) -> Workload {
    assert!(BENCHMARKS.contains(&name), "unknown Ligra kernel: {name}");
    let seed =
        name.bytes().fold(0x9e37_79b9u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
    let edges = rmat_edges(seed);

    // Address map: offsets array, edges array, and per-vertex data array live
    // in separate regions so their PCs see distinct patterns.
    let offsets_base: u64 = 0x10_0000_0000;
    let edges_base: u64 = 0x11_0000_0000;
    let vertex_base: u64 = 0x12_0000_0000;
    let pc_offsets = Pc::new(0x7_0000);
    let pc_edges = Pc::new(0x7_0010);
    let pc_vertex = Pc::new(0x7_0020);
    let pc_frontier = Pc::new(0x7_0030);

    // Kernel-dependent cost per edge (PageRank does more FP work per edge,
    // BFS almost none) and how often the frontier array is touched.
    let (gap, frontier_ratio) = match name {
        "BFS" => (4, 0.25),
        "PageRank" => (14, 0.05),
        "Components" => (6, 0.2),
        "BC" => (10, 0.15),
        "Radii" => (8, 0.2),
        _ => unreachable!(),
    };

    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    let mut records = Vec::with_capacity(accesses);
    let mut edge_cursor = 0usize;
    let mut vertex_cursor = 0usize;
    while records.len() < accesses {
        // Sweep the CSR offsets array for the current vertex (streaming).
        records.push(MemoryRecord::load(
            pc_offsets,
            Addr::new(offsets_base + (vertex_cursor as u64) * 8),
            gap,
        ));
        vertex_cursor = (vertex_cursor + 1) % VERTICES;
        // Visit this vertex's edges: stream through the edge array while
        // making an irregular access to each neighbour's vertex data.
        for _ in 0..AVG_DEGREE {
            if records.len() >= accesses {
                break;
            }
            let target = edges[edge_cursor % edges.len()];
            edge_cursor += 1;
            records.push(MemoryRecord::load(
                pc_edges,
                Addr::new(edges_base + (edge_cursor as u64) * 4),
                gap,
            ));
            if records.len() >= accesses {
                break;
            }
            records.push(MemoryRecord::load(
                pc_vertex,
                Addr::new(vertex_base + u64::from(target) * 64),
                gap,
            ));
            if records.len() < accesses && rng.gen_bool(frontier_ratio) {
                records.push(MemoryRecord::store(
                    pc_frontier,
                    Addr::new(vertex_base + u64::from(target) * 64 + 32),
                    1,
                ));
            }
        }
    }
    records.truncate(accesses);
    Workload::new(name, records, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_kernels_generate() {
        for name in BENCHMARKS {
            let w = workload(name, 400);
            assert_eq!(w.memory_accesses(), 400);
            assert!(w.memory_intensive);
        }
    }

    #[test]
    fn mixes_streaming_and_irregular_pcs() {
        let w = workload("BFS", 3_000);
        let pcs: HashSet<u64> = w.records.iter().map(|r| r.pc.raw()).collect();
        assert!(pcs.len() >= 3, "BFS should exercise several distinct PCs");
        // The edges PC is a pure stream: consecutive accesses differ by 4 bytes.
        let edge_addrs: Vec<u64> =
            w.records.iter().filter(|r| r.pc.raw() == 0x7_0010).map(|r| r.addr.raw()).collect();
        assert!(edge_addrs.windows(2).all(|w| w[1] - w[0] == 4));
        // The vertex PC is irregular but recurring (power-law reuse).
        let vertex_addrs: Vec<u64> =
            w.records.iter().filter(|r| r.pc.raw() == 0x7_0020).map(|r| r.addr.raw()).collect();
        let distinct: HashSet<u64> = vertex_addrs.iter().copied().collect();
        assert!(distinct.len() > 50);
        assert!(distinct.len() < vertex_addrs.len(), "hub vertices must recur");
    }

    #[test]
    fn kernels_differ_in_compute_intensity() {
        let bfs = workload("BFS", 2_000);
        let pr = workload("PageRank", 2_000);
        assert!(pr.instructions() > bfs.instructions());
    }

    #[test]
    #[should_panic(expected = "unknown Ligra kernel")]
    fn unknown_kernel_panics() {
        let _ = workload("TriangleCount", 10);
    }
}
