//! Ligra-like graph-processing workloads (Fig. 17, eight-core runs).
//!
//! The paper runs Ligra kernels on an `rMatGraph_WJ_5_100` input. The
//! synthetic stand-in builds a small power-law (rMat-flavoured) graph and
//! replays the memory behaviour of frontier-based kernels: sequential sweeps
//! over the offset/edge arrays (streaming) interleaved with irregular,
//! partially recurring accesses to per-vertex data (temporal/pointer-chase
//! flavoured), which is exactly the mix that stresses prefetcher selection.

use std::collections::VecDeque;

use alecto_types::{Addr, MemoryRecord, Pc, TraceSource, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Ligra kernels modelled.
pub const BENCHMARKS: [&str; 5] = ["BFS", "PageRank", "Components", "BC", "Radii"];

/// Number of vertices in the synthetic rMat-like graph.
const VERTICES: usize = 16_384;
/// Average degree (the paper's rMat input uses degree ≈ 5).
const AVG_DEGREE: usize = 5;

fn rmat_edges(seed: u64) -> Vec<u32> {
    // Power-law-ish edge targets: repeatedly halve the vertex range with a
    // biased coin, the core idea of rMat generation.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(VERTICES * AVG_DEGREE);
    for _ in 0..VERTICES * AVG_DEGREE {
        let mut lo = 0u32;
        let mut hi = VERTICES as u32;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if rng.gen_bool(0.65) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        edges.push(lo);
    }
    edges
}

/// Kernel-dependent cost per edge (PageRank does more FP work per edge, BFS
/// almost none) and how often the frontier array is touched.
fn kernel_params(name: &str) -> (u32, f64) {
    match name {
        "BFS" => (4, 0.25),
        "PageRank" => (14, 0.05),
        "Components" => (6, 0.2),
        "BC" => (10, 0.15),
        "Radii" => (8, 0.2),
        _ => panic!("unknown Ligra kernel: {name}"),
    }
}

fn kernel_seed(name: &str) -> u64 {
    name.bytes().fold(0x9e37_79b9u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)))
}

/// The unbounded record stream of the named kernel: one CSR-offsets sweep
/// record per vertex, followed by its [`AVG_DEGREE`] edge visits (edge-array
/// stream + irregular per-vertex data access + occasional frontier store).
/// State is O(graph), never O(trace length).
fn record_stream(name: &'static str) -> impl Iterator<Item = MemoryRecord> + Send {
    let seed = kernel_seed(name);
    let edges = rmat_edges(seed);
    let (gap, frontier_ratio) = kernel_params(name);

    // Address map: offsets array, edges array, and per-vertex data array live
    // in separate regions so their PCs see distinct patterns.
    let offsets_base: u64 = 0x10_0000_0000;
    let edges_base: u64 = 0x11_0000_0000;
    let vertex_base: u64 = 0x12_0000_0000;
    let pc_offsets = Pc::new(0x7_0000);
    let pc_edges = Pc::new(0x7_0010);
    let pc_vertex = Pc::new(0x7_0020);
    let pc_frontier = Pc::new(0x7_0030);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    let mut edge_cursor = 0usize;
    let mut vertex_cursor = 0usize;
    // One vertex's visit is generated at a time (at most 1 + 3·AVG_DEGREE
    // records) and drained from this small buffer.
    let mut pending: VecDeque<MemoryRecord> = VecDeque::with_capacity(1 + 3 * AVG_DEGREE);
    std::iter::from_fn(move || {
        if let Some(r) = pending.pop_front() {
            return Some(r);
        }
        // Sweep the CSR offsets array for the current vertex (streaming).
        pending.push_back(MemoryRecord::load(
            pc_offsets,
            Addr::new(offsets_base + (vertex_cursor as u64) * 8),
            gap,
        ));
        vertex_cursor = (vertex_cursor + 1) % VERTICES;
        // Visit this vertex's edges: stream through the edge array while
        // making an irregular access to each neighbour's vertex data.
        for _ in 0..AVG_DEGREE {
            let target = edges[edge_cursor % edges.len()];
            edge_cursor += 1;
            pending.push_back(MemoryRecord::load(
                pc_edges,
                Addr::new(edges_base + (edge_cursor as u64) * 4),
                gap,
            ));
            pending.push_back(MemoryRecord::load(
                pc_vertex,
                Addr::new(vertex_base + u64::from(target) * 64),
                gap,
            ));
            if rng.gen_bool(frontier_ratio) {
                pending.push_back(MemoryRecord::store(
                    pc_frontier,
                    Addr::new(vertex_base + u64::from(target) * 64 + 32),
                    1,
                ));
            }
        }
        pending.pop_front()
    })
}

/// Resolves `name` to its `'static` spelling in [`BENCHMARKS`] so the lazy
/// stream does not have to own a `String`.
fn static_name(name: &str) -> &'static str {
    BENCHMARKS
        .iter()
        .find(|&&b| b == name)
        .copied()
        .unwrap_or_else(|| panic!("unknown Ligra kernel: {name}"))
}

/// Generates the named Ligra-like workload with `accesses` memory accesses
/// (eager, O(accesses) memory).
///
/// # Panics
///
/// Panics if `name` is not one of [`BENCHMARKS`].
#[must_use]
pub fn workload(name: &str, accesses: usize) -> Workload {
    let name = static_name(name);
    Workload::new(name, record_stream(name).take(accesses).collect(), true)
}

/// Streaming variant of [`workload`]: a lazy [`TraceSource`] producing the
/// identical records in O(1) memory with respect to the trace length (the
/// synthetic rMat graph itself — a few hundred KB — is rebuilt per replay).
///
/// # Panics
///
/// Panics if `name` is not one of [`BENCHMARKS`].
#[must_use]
pub fn source(name: &str, accesses: usize) -> TraceSource {
    let name = static_name(name);
    TraceSource::new(name, true, accesses, move || Box::new(record_stream(name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_kernels_generate() {
        for name in BENCHMARKS {
            let w = workload(name, 400);
            assert_eq!(w.memory_accesses(), 400);
            assert!(w.memory_intensive);
        }
    }

    #[test]
    fn mixes_streaming_and_irregular_pcs() {
        let w = workload("BFS", 3_000);
        let pcs: HashSet<u64> = w.records.iter().map(|r| r.pc.raw()).collect();
        assert!(pcs.len() >= 3, "BFS should exercise several distinct PCs");
        // The edges PC is a pure stream: consecutive accesses differ by 4 bytes.
        let edge_addrs: Vec<u64> =
            w.records.iter().filter(|r| r.pc.raw() == 0x7_0010).map(|r| r.addr.raw()).collect();
        assert!(edge_addrs.windows(2).all(|w| w[1] - w[0] == 4));
        // The vertex PC is irregular but recurring (power-law reuse).
        let vertex_addrs: Vec<u64> =
            w.records.iter().filter(|r| r.pc.raw() == 0x7_0020).map(|r| r.addr.raw()).collect();
        let distinct: HashSet<u64> = vertex_addrs.iter().copied().collect();
        assert!(distinct.len() > 50);
        assert!(distinct.len() < vertex_addrs.len(), "hub vertices must recur");
    }

    #[test]
    fn kernels_differ_in_compute_intensity() {
        let bfs = workload("BFS", 2_000);
        let pr = workload("PageRank", 2_000);
        assert!(pr.instructions() > bfs.instructions());
    }

    #[test]
    #[should_panic(expected = "unknown Ligra kernel")]
    fn unknown_kernel_panics() {
        let _ = workload("TriangleCount", 10);
    }

    #[test]
    fn source_streams_what_workload_collects() {
        for name in BENCHMARKS {
            // Cut mid-batch on purpose (batches are 1 + ~2·AVG_DEGREE records).
            for accesses in [0usize, 7, 501] {
                let s = source(name, accesses);
                assert_eq!(s.memory_accesses(), accesses);
                assert!(s.memory_intensive());
                assert_eq!(s.collect(), workload(name, accesses), "{name}@{accesses}");
            }
        }
    }
}
