//! SPEC CPU2017-like workloads (Fig. 9).

use alecto_types::{TraceSource, Workload};

use crate::blend::Blend;
use crate::spec06::BenchmarkInfo;

/// The 21 SPEC CPU2017 benchmarks of Fig. 9, memory-intensive ones first.
pub const BENCHMARKS: [BenchmarkInfo; 21] = [
    BenchmarkInfo { name: "bwaves_17", memory_intensive: true },
    BenchmarkInfo { name: "cactuBSSN_17", memory_intensive: true },
    BenchmarkInfo { name: "cam4_17", memory_intensive: true },
    BenchmarkInfo { name: "fotonik3d_17", memory_intensive: true },
    BenchmarkInfo { name: "gcc_17", memory_intensive: true },
    BenchmarkInfo { name: "lbm_17", memory_intensive: true },
    BenchmarkInfo { name: "mcf_17", memory_intensive: true },
    BenchmarkInfo { name: "omnetpp_17", memory_intensive: true },
    BenchmarkInfo { name: "roms_17", memory_intensive: true },
    BenchmarkInfo { name: "xalancbmk_17", memory_intensive: true },
    BenchmarkInfo { name: "xz_17", memory_intensive: true },
    BenchmarkInfo { name: "blender", memory_intensive: false },
    BenchmarkInfo { name: "deepsjeng", memory_intensive: false },
    BenchmarkInfo { name: "exchange2", memory_intensive: false },
    BenchmarkInfo { name: "imagick", memory_intensive: false },
    BenchmarkInfo { name: "leela", memory_intensive: false },
    BenchmarkInfo { name: "nab", memory_intensive: false },
    BenchmarkInfo { name: "namd_17", memory_intensive: false },
    BenchmarkInfo { name: "parest", memory_intensive: false },
    BenchmarkInfo { name: "perlbench_17", memory_intensive: false },
    BenchmarkInfo { name: "povray_17", memory_intensive: false },
];

/// Builds the blend describing `name`.
///
/// # Panics
///
/// Panics if `name` is not a SPEC CPU2017 benchmark from [`BENCHMARKS`].
#[must_use]
pub fn blend(name: &str) -> Blend {
    let info = BENCHMARKS
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown SPEC CPU2017 benchmark: {name}"));
    let b = Blend::builder(name);
    let b = if info.memory_intensive { b.memory_intensive() } else { b };
    match name {
        "bwaves_17" => b.stream(0.65).stride(0.25).noise(0.1).gap(9).finish(),
        "cactuBSSN_17" => b.stride(0.5).stream(0.3).spatial(0.2).gap(10).finish(),
        "cam4_17" => b.stream(0.45).spatial(0.3).resident(0.25).gap(13).finish(),
        "fotonik3d_17" => b.stream(0.7).stride(0.2).noise(0.1).gap(8).finish(),
        "gcc_17" => b
            .spatial(0.3)
            .chase(0.25)
            .loop_stream(0.1)
            .resident(0.25)
            .stride(0.1)
            .gap(15)
            .chase_nodes(5_000)
            .finish(),
        "lbm_17" => b.stream(0.85).stride(0.1).noise(0.05).gap(7).finish(),
        "mcf_17" => b
            .chase(0.5)
            .loop_stream(0.15)
            .noise(0.2)
            .stride(0.15)
            .gap(14)
            .chase_nodes(12_000)
            .finish(),
        "omnetpp_17" => b
            .chase(0.45)
            .loop_stream(0.15)
            .noise(0.2)
            .resident(0.2)
            .gap(16)
            .chase_nodes(9_000)
            .finish(),
        "roms_17" => b.stream(0.55).stride(0.3).spatial(0.15).gap(10).finish(),
        "xalancbmk_17" => b
            .chase(0.4)
            .loop_stream(0.1)
            .spatial(0.25)
            .resident(0.25)
            .gap(15)
            .chase_nodes(7_000)
            .finish(),
        "xz_17" => b.spatial(0.35).noise(0.35).stride(0.3).gap(11).finish(),
        "blender" => b.resident(0.6).stride(0.25).spatial(0.15).gap(38).finish(),
        "deepsjeng" => b.resident(0.75).noise(0.25).gap(50).finish(),
        "exchange2" => b.resident(0.9).stride(0.1).gap(70).finish(),
        "imagick" => b.resident(0.55).stream(0.3).stride(0.15).gap(40).finish(),
        "leela" => b.resident(0.7).chase(0.15).noise(0.15).gap(48).chase_nodes(1_200).finish(),
        "nab" => b.resident(0.6).stride(0.3).stream(0.1).gap(42).finish(),
        "namd_17" => b.resident(0.65).stride(0.25).stream(0.1).gap(48).finish(),
        "parest" => b.resident(0.55).stride(0.3).spatial(0.15).gap(36).finish(),
        "perlbench_17" => {
            b.resident(0.7).chase(0.15).noise(0.15).gap(44).chase_nodes(1_500).finish()
        }
        "povray_17" => b.resident(0.85).noise(0.15).gap(65).finish(),
        _ => unreachable!("benchmark {name} is listed but has no blend"),
    }
}

/// Generates the named SPEC CPU2017-like workload (eager, O(accesses) memory).
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn workload(name: &str, accesses: usize) -> Workload {
    blend(name).build(accesses)
}

/// Streaming variant of [`workload`]: a lazy [`TraceSource`] producing the
/// identical records in O(1) memory.
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn source(name: &str, accesses: usize) -> TraceSource {
    blend(name).source(accesses)
}

/// Names of the memory-intensive subset (the dotted box of Fig. 9).
#[must_use]
pub fn memory_intensive() -> Vec<&'static str> {
    BENCHMARKS.iter().filter(|b| b.memory_intensive).map(|b| b.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_21_benchmarks_have_blends() {
        for b in &BENCHMARKS {
            let w = workload(b.name, 150);
            assert_eq!(w.memory_accesses(), 150);
            assert_eq!(w.memory_intensive, b.memory_intensive, "{}", b.name);
        }
    }

    #[test]
    fn memory_intensive_subset_matches_fig9() {
        let m = memory_intensive();
        assert_eq!(m.len(), 11);
        assert!(m.contains(&"mcf_17"));
        assert!(!m.contains(&"leela"));
    }

    #[test]
    #[should_panic(expected = "unknown SPEC CPU2017 benchmark")]
    fn unknown_name_panics() {
        let _ = workload("mcf", 10);
    }
}
