//! Database scan/join workloads: sequential table scans, hash-join probes
//! and index-nested-loop joins — the analytical-query memory behaviour of a
//! column/row store. Registered as [`crate::Suite::Database`].
//!
//! Scans are the friendliest possible pattern (pure streams the GS prefetcher
//! eats), probes are the hardest (random hits over a DRAM-sized build side),
//! and index joins sit in between (dependent B-tree descents with hot inner
//! pages), so the family spans the whole selection difficulty range inside
//! single queries.

use alecto_types::{TraceSource, Workload};

use crate::blend::Blend;

/// The database benchmarks of the family.
pub const BENCHMARKS: [&str; 4] = ["seq-scan", "hash-join", "index-join", "agg-groupby"];

/// Builds the blend describing `name`.
///
/// # Panics
///
/// Panics if `name` is not in [`BENCHMARKS`].
#[must_use]
pub fn blend(name: &str) -> Blend {
    assert!(BENCHMARKS.contains(&name), "unknown database benchmark: {name}");
    let b = Blend::builder(name);
    match name {
        // Full table scan with predicate evaluation: streaming columns plus a
        // fixed per-page tuple footprint.
        "seq-scan" => b.memory_intensive().stream(0.6).spatial(0.25).resident(0.15).gap(9).finish(),
        // Hash join: stream the probe input, hit the build-side hash table at
        // effectively random buckets.
        "hash-join" => {
            b.memory_intensive().stream(0.3).noise(0.45).resident(0.15).stride(0.1).gap(10).finish()
        }
        // Index nested-loop join: dependent B-tree descents with a skewed,
        // cache-warm set of inner pages.
        "index-join" => b
            .memory_intensive()
            .chase(0.4)
            .zipf(0.25)
            .stream(0.2)
            .resident(0.15)
            .gap(12)
            .chase_nodes(16_000)
            .zipf_objects(32 * 1024)
            .zipf_theta(0.9)
            .finish(),
        // Aggregation with GROUP BY: scan plus strided accumulator updates
        // over a mid-sized group table.
        "agg-groupby" => b.stream(0.4).stride(0.25).resident(0.25).noise(0.1).gap(15).finish(),
        _ => unreachable!("benchmark {name} is listed but has no blend"),
    }
}

/// Generates the named database workload (eager, O(accesses) memory).
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn workload(name: &str, accesses: usize) -> Workload {
    blend(name).build(accesses)
}

/// Streaming variant of [`workload`]: a lazy [`TraceSource`] producing the
/// identical records in O(1) memory.
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn source(name: &str, accesses: usize) -> TraceSource {
    blend(name).source(accesses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_blends() {
        for name in BENCHMARKS {
            let w = workload(name, 130);
            assert_eq!(w.memory_accesses(), 130);
            assert_eq!(source(name, 130).collect(), w);
        }
    }

    #[test]
    fn scan_streams_while_join_probes() {
        // The scan's dominant pattern is sequential; the hash join's is not:
        // count how many consecutive-record line deltas are exactly +1.
        let sequential = |w: &Workload| {
            w.records
                .windows(2)
                .filter(|p| p[1].addr.line().delta_from(p[0].addr.line()) == 1)
                .count()
        };
        let scan = workload("seq-scan", 2_000);
        let join = workload("hash-join", 2_000);
        assert!(
            sequential(&scan) > 2 * sequential(&join),
            "a table scan must look far more sequential than a hash-join probe stream"
        );
    }

    #[test]
    #[should_panic(expected = "unknown database benchmark")]
    fn unknown_name_panics() {
        let _ = workload("sort-merge", 10);
    }
}
