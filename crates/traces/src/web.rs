//! Zipfian web-serving workloads: power-law object popularity, the request
//! mix of content caches, key-value stores and session-heavy API servers.
//! Registered as [`crate::Suite::WebServe`].
//!
//! The defining property is a *hot set* that becomes cache resident plus an
//! unpredictable long tail — high recurrence without spatial structure, which
//! separates selection schemes that can keep the tail out of the prefetcher
//! tables from those that let it thrash them.

use alecto_types::{TraceSource, Workload};

use crate::blend::Blend;

/// The web-serving benchmarks of the family.
pub const BENCHMARKS: [&str; 3] = ["web-cache", "kv-store", "api-session"];

/// Builds the blend describing `name`.
///
/// # Panics
///
/// Panics if `name` is not in [`BENCHMARKS`].
#[must_use]
pub fn blend(name: &str) -> Blend {
    assert!(BENCHMARKS.contains(&name), "unknown web-serving benchmark: {name}");
    let b = Blend::builder(name);
    match name {
        // CDN-style content cache: strongly skewed object popularity with a
        // streaming component (log append / object body reads).
        "web-cache" => b
            .memory_intensive()
            .zipf(0.65)
            .stream(0.2)
            .resident(0.15)
            .gap(9)
            .zipf_objects(256 * 1024)
            .zipf_theta(0.99)
            .finish(),
        // Key-value store under YCSB-like load: a larger, flatter key space
        // and index descents (chase) for misses in the hot set.
        "kv-store" => b
            .memory_intensive()
            .zipf(0.5)
            .chase(0.25)
            .noise(0.15)
            .resident(0.1)
            .gap(11)
            .zipf_objects(512 * 1024)
            .zipf_theta(0.8)
            .chase_nodes(20_000)
            .finish(),
        // API server with per-session state: hot session table plus template
        // rendering (resident) and body streaming.
        "api-session" => b
            .zipf(0.4)
            .resident(0.35)
            .stream(0.15)
            .noise(0.1)
            .gap(22)
            .zipf_objects(64 * 1024)
            .zipf_theta(1.1)
            .finish(),
        _ => unreachable!("benchmark {name} is listed but has no blend"),
    }
}

/// Generates the named web-serving workload (eager, O(accesses) memory).
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn workload(name: &str, accesses: usize) -> Workload {
    blend(name).build(accesses)
}

/// Streaming variant of [`workload`]: a lazy [`TraceSource`] producing the
/// identical records in O(1) memory.
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn source(name: &str, accesses: usize) -> TraceSource {
    blend(name).source(accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::Pc;

    #[test]
    fn all_benchmarks_have_blends() {
        for name in BENCHMARKS {
            let w = workload(name, 150);
            assert_eq!(w.memory_accesses(), 150);
            assert_eq!(source(name, 150).collect(), w);
        }
    }

    #[test]
    fn zipf_requests_dominate_the_cache_mix() {
        let w = workload("web-cache", 3_000);
        let zipf_pc = w.records.iter().filter(|r| r.pc == Pc::new(0x4_8000)).count();
        assert!(zipf_pc > 1_500, "object requests should dominate, got {zipf_pc}");
        // Power-law reuse: far fewer distinct lines than accesses.
        let distinct: std::collections::HashSet<u64> =
            w.records.iter().filter(|r| r.pc == Pc::new(0x4_8000)).map(|r| r.addr.raw()).collect();
        assert!(distinct.len() < zipf_pc, "hot objects must recur");
    }

    #[test]
    #[should_panic(expected = "unknown web-serving benchmark")]
    fn unknown_name_panics() {
        let _ = workload("memcached", 10);
    }
}
