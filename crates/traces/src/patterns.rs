//! Access-pattern primitives: the building blocks benchmarks are blended from.
//!
//! Every generator produces an *unbounded-ish* stream of [`MemoryRecord`]s for
//! one or a few PCs; the [`interleave_weighted`] combinator merges several
//! such component streams into one trace with a given mixing ratio, which is
//! how whole benchmarks are assembled in [`crate::blend`].

use alecto_types::{AccessKind, Addr, MemoryRecord, Pc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A lazily generated component stream of memory accesses. Components are
/// `Send` so that a [`alecto_types::TraceSource`] built from them can be
/// replayed on any worker thread of the parallel experiment engine.
pub type Component = Box<dyn FnMut() -> MemoryRecord + Send>;

/// A forward (or backward) unit-stride stream over cache lines, the pattern
/// GS-style stream prefetchers are built for (`lbm`, `libquantum`, ...).
#[must_use]
pub fn stream(pc: u64, base: u64, gap: u32, ascending: bool) -> Component {
    let mut line: i64 = (base >> 6) as i64;
    Box::new(move || {
        let record = MemoryRecord::load(Pc::new(pc), Addr::new((line as u64) << 6), gap);
        line += if ascending { 1 } else { -1 };
        record
    })
}

/// A constant-stride walk (stride expressed in bytes), the CS pattern
/// (`hmmer`, column walks of dense matrices, ...).
#[must_use]
pub fn strided(pc: u64, base: u64, stride_bytes: i64, gap: u32) -> Component {
    let mut addr = base as i64;
    Box::new(move || {
        let record = MemoryRecord::load(Pc::new(pc), Addr::new(addr as u64), gap);
        addr += stride_bytes;
        record
    })
}

/// A repeating delta chain in cache lines (e.g. +1, +1, +1, +4), the pattern
/// CPLX targets and constant-stride prefetchers mispredict (§II-A).
#[must_use]
pub fn delta_chain(pc: u64, base: u64, deltas: Vec<i64>, gap: u32) -> Component {
    assert!(!deltas.is_empty(), "delta chain needs at least one delta");
    let mut line: i64 = (base >> 6) as i64;
    let mut idx = 0usize;
    Box::new(move || {
        let record = MemoryRecord::load(Pc::new(pc), Addr::new((line as u64) << 6), gap);
        line += deltas[idx % deltas.len()];
        idx += 1;
        record
    })
}

/// Per-page spatial footprints: each visited page is touched at the given
/// line offsets (the SMS/PMP pattern; `GemsFDTD`'s PC 0x30b00 in Fig. 2).
#[must_use]
pub fn spatial_pages(pc: u64, base_page: u64, offsets: Vec<u64>, gap: u32) -> Component {
    assert!(!offsets.is_empty(), "spatial pattern needs at least one offset");
    let mut page = base_page;
    let mut idx = 0usize;
    Box::new(move || {
        let offset = offsets[idx % offsets.len()];
        let addr = (page << 12) + (offset << 6);
        let record = MemoryRecord::load(Pc::new(pc), Addr::new(addr), gap);
        idx += 1;
        if idx.is_multiple_of(offsets.len()) {
            page += 1;
        }
        record
    })
}

/// A recurring pointer chase over `nodes` pseudo-randomly placed nodes — the
/// temporal pattern only an address-correlating prefetcher can cover
/// (`mcf`, `omnetpp`, graph workloads).
#[must_use]
pub fn pointer_chase(pc: u64, base: u64, nodes: usize, gap: u32, seed: u64) -> Component {
    assert!(nodes > 1, "a pointer chase needs at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    // A random cyclic permutation of node indices placed at random lines.
    let mut order: Vec<usize> = (0..nodes).collect();
    for i in (1..nodes).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let lines: Vec<u64> =
        (0..nodes).map(|_| (base >> 6) + rng.gen_range(0..nodes as u64 * 23)).collect();
    let mut pos = 0usize;
    Box::new(move || {
        let line = lines[order[pos]];
        pos = (pos + 1) % order.len();
        // Each hop reads the pointer loaded by the previous hop.
        MemoryRecord::dependent_load(Pc::new(pc), Addr::new(line << 6), gap)
    })
}

/// A bounded stream that wraps around after `length_lines` lines, i.e. a loop
/// re-walking the same array every iteration. The pattern is *recurring* (a
/// temporal prefetcher's table hits on it) yet perfectly handled by stream and
/// stride prefetchers — exactly the kind of PC §IV-F argues should be kept
/// away from the temporal prefetcher's metadata.
#[must_use]
pub fn looping_stream(pc: u64, base: u64, length_lines: u64, gap: u32) -> Component {
    assert!(length_lines > 1, "a looping stream needs at least two lines");
    let base_line = base >> 6;
    let mut idx: u64 = 0;
    Box::new(move || {
        let line = base_line + (idx % length_lines);
        idx += 1;
        MemoryRecord::load(Pc::new(pc), Addr::new(line << 6), gap)
    })
}

/// Uniformly random accesses over a `span_bytes` region: unpredictable noise
/// that trains no prefetcher usefully and pollutes their tables.
#[must_use]
pub fn random_noise(pc: u64, base: u64, span_bytes: u64, gap: u32, seed: u64) -> Component {
    let mut rng = StdRng::seed_from_u64(seed);
    let span_lines = (span_bytes >> 6).max(1);
    Box::new(move || {
        let line = (base >> 6) + rng.gen_range(0..span_lines);
        let kind = if rng.gen_bool(0.3) { AccessKind::Store } else { AccessKind::Load };
        MemoryRecord {
            pc: Pc::new(pc),
            addr: Addr::new(line << 6),
            kind,
            gap_instructions: gap,
            dependent: false,
        }
    })
}

/// Zipfian accesses over `objects` cache-line-sized objects with skew
/// `theta`: rank `r` is drawn with probability proportional to `1/r^theta`,
/// and ranks are scattered over the region through a seeded permutation (hot
/// objects are not spatially adjacent, exactly like a web cache or a
/// key-value store under a power-law request mix). A `store_ratio` fraction
/// of accesses are stores (cache updates / session writes).
///
/// # Panics
///
/// Panics if `objects == 0` or `store_ratio` is outside `[0, 1]`.
#[must_use]
pub fn zipfian(
    pc: u64,
    base: u64,
    objects: usize,
    theta: f64,
    store_ratio: f64,
    gap: u32,
    seed: u64,
) -> Component {
    assert!(objects > 0, "a zipfian pattern needs at least one object");
    assert!((0.0..=1.0).contains(&store_ratio), "store ratio must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative mass of ranks 1..=objects (the generalized harmonic sums).
    let mut cumulative = Vec::with_capacity(objects);
    let mut total = 0.0f64;
    for rank in 1..=objects {
        total += (rank as f64).powf(theta).recip();
        cumulative.push(total);
    }
    // Scatter ranks over object slots so popularity is not spatially ordered.
    let mut slot_of_rank: Vec<u64> = (0..objects as u64).collect();
    for i in (1..objects).rev() {
        let j = rng.gen_range(0..=i);
        slot_of_rank.swap(i, j);
    }
    let base_line = base >> 6;
    Box::new(move || {
        let pick = rng.gen::<f64>() * total;
        let rank = cumulative.partition_point(|&c| c <= pick).min(objects - 1);
        let line = base_line + slot_of_rank[rank] * 3; // objects span a few lines
        let kind = if rng.gen_bool(store_ratio) { AccessKind::Store } else { AccessKind::Load };
        MemoryRecord {
            pc: Pc::new(pc),
            addr: Addr::new(line << 6),
            kind,
            gap_instructions: gap,
            dependent: false,
        }
    })
}

/// Conflict-miss thrashing via set-aliasing offsets: a round-robin walk over
/// `footprint_lines` addresses spaced exactly `set_stride_bytes` apart. When
/// the stride is a multiple of `sets × line_bytes` for a cache level, every
/// address maps to the *same* set, so any footprint wider than the
/// associativity evicts on every revisit — the classic conflict-thrash
/// pathology the scenario fuzzer plants against selector configurations.
/// The walk itself is perfectly periodic (a stride prefetcher *can* learn
/// it), which is what makes it adversarial: prefetches into the aliased set
/// thrash exactly like the demand stream does.
///
/// # Panics
///
/// Panics if the stride is zero or the footprint has fewer than two lines.
#[must_use]
pub fn set_aliasing(
    pc: u64,
    base: u64,
    set_stride_bytes: u64,
    footprint_lines: usize,
    gap: u32,
) -> Component {
    assert!(set_stride_bytes > 0, "set-aliasing stride must be positive");
    assert!(footprint_lines > 1, "set-aliasing thrash needs at least two lines");
    let mut idx: u64 = 0;
    Box::new(move || {
        let addr = base + (idx % footprint_lines as u64) * set_stride_bytes;
        idx += 1;
        MemoryRecord::load(Pc::new(pc), Addr::new(addr), gap)
    })
}

/// A phase-shifting access stream: `period` accesses of a well-behaved
/// unit-stride stream, then `period` accesses of seeded far jumps, repeating.
/// The behaviour flips right about when an epoch-based selector has adapted
/// to the previous phase, so whatever it learned is stale by the time it
/// acts — the anti-adaptation pathology the fuzzer hunts with.
///
/// # Panics
///
/// Panics if `period` is zero.
#[must_use]
pub fn phase_shift(pc: u64, base: u64, period: u32, gap: u32, seed: u64) -> Component {
    assert!(period > 0, "phase period must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let base_line = base >> 6;
    let mut line = base_line;
    let mut idx: u64 = 0;
    Box::new(move || {
        let streaming = (idx / u64::from(period)).is_multiple_of(2);
        idx += 1;
        if streaming {
            line += 1;
        } else {
            // Scatter phase: jump anywhere in a DRAM-sized window; the draw
            // is consumed only in this phase so the stream phase stays a
            // pure function of `idx`.
            line = base_line + rng.gen_range(0..(1u64 << 22));
        }
        MemoryRecord::load(Pc::new(pc), Addr::new(line << 6), gap)
    })
}

/// Streaming form of [`interleave_weighted`]: an *unbounded* iterator that
/// draws from `components` with probability proportional to `weights`,
/// deterministically for a given `seed`. The eager variant collects exactly
/// this stream; the `streamed_equals_collected` property test in the root
/// crate locks the two paths together.
///
/// # Panics
///
/// Panics if the inputs are empty, mismatched in length, or all-zero weight.
pub fn interleave_weighted_iter(
    mut components: Vec<Component>,
    weights: Vec<f64>,
    seed: u64,
) -> impl Iterator<Item = MemoryRecord> + Send {
    assert!(!components.is_empty(), "need at least one component");
    assert_eq!(components.len(), weights.len(), "one weight per component");
    let weight_sum: f64 = weights.iter().sum();
    assert!(weight_sum > 0.0, "weights must not all be zero");
    let mut rng = StdRng::seed_from_u64(seed);
    std::iter::from_fn(move || {
        let mut pick = rng.gen::<f64>() * weight_sum;
        let mut idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                idx = i;
                break;
            }
            pick -= w;
            idx = i;
        }
        Some(components[idx]())
    })
}

/// Interleaves component streams according to `weights`, producing exactly
/// `total` records. Component `i` is chosen with probability proportional to
/// `weights[i]`; selection is deterministic for a given `seed`.
///
/// This is the *legacy, eagerly collected* generation path, kept alongside
/// [`interleave_weighted_iter`] so property tests can assert that streaming
/// reproduces it record for record.
///
/// # Panics
///
/// Panics if the inputs are empty, mismatched in length, or all-zero weight.
#[must_use]
pub fn interleave_weighted(
    mut components: Vec<Component>,
    weights: &[f64],
    total: usize,
    seed: u64,
) -> Vec<MemoryRecord> {
    assert!(!components.is_empty(), "need at least one component");
    assert_eq!(components.len(), weights.len(), "one weight per component");
    let weight_sum: f64 = weights.iter().sum();
    assert!(weight_sum > 0.0, "weights must not all be zero");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        let mut pick = rng.gen::<f64>() * weight_sum;
        let mut idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                idx = i;
                break;
            }
            pick -= w;
            idx = i;
        }
        out.push(components[idx]());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_is_unit_stride() {
        let mut s = stream(0x10, 0x8000, 5, true);
        let a = s();
        let b = s();
        assert_eq!(b.addr.line().delta_from(a.addr.line()), 1);
        assert_eq!(a.gap_instructions, 5);
        let mut d = stream(0x10, 0x8000, 5, false);
        let a = d();
        let b = d();
        assert_eq!(b.addr.line().delta_from(a.addr.line()), -1);
    }

    #[test]
    fn strided_walk() {
        let mut s = strided(0x14, 0x10_000, 256, 3);
        let a = s();
        let b = s();
        assert_eq!(b.addr.raw() - a.addr.raw(), 256);
    }

    #[test]
    fn delta_chain_repeats() {
        let mut s = delta_chain(0x18, 0x20_000, vec![1, 1, 4], 2);
        let lines: Vec<i64> = (0..7).map(|_| s().addr.line().raw() as i64).collect();
        assert_eq!(lines[1] - lines[0], 1);
        assert_eq!(lines[2] - lines[1], 1);
        assert_eq!(lines[3] - lines[2], 4);
        assert_eq!(lines[4] - lines[3], 1);
    }

    #[test]
    fn spatial_pattern_repeats_per_page() {
        let mut s = spatial_pages(0x1c, 100, vec![0, 2, 4], 2);
        let first_page: Vec<u64> = (0..3).map(|_| s().addr.raw()).collect();
        let second_page: Vec<u64> = (0..3).map(|_| s().addr.raw()).collect();
        assert_eq!(first_page[1] - first_page[0], 128);
        assert_eq!(second_page[0] - first_page[0], 4096);
    }

    #[test]
    fn pointer_chase_recurs() {
        let mut s = pointer_chase(0x20, 1 << 24, 50, 2, 7);
        let first_cycle: Vec<u64> = (0..50).map(|_| s().addr.raw()).collect();
        let second_cycle: Vec<u64> = (0..50).map(|_| s().addr.raw()).collect();
        assert_eq!(first_cycle, second_cycle, "the chase revisits the same sequence");
        let distinct: HashSet<u64> = first_cycle.iter().copied().collect();
        assert!(distinct.len() > 40, "nodes should be mostly distinct lines");
    }

    #[test]
    fn looping_stream_wraps() {
        let mut s = looping_stream(0x22, 0x40_000, 4, 1);
        let lines: Vec<u64> = (0..9).map(|_| s().addr.line().raw()).collect();
        assert_eq!(lines[0], lines[4]);
        assert_eq!(lines[3], lines[7]);
        assert_eq!(lines[1] - lines[0], 1);
    }

    #[test]
    fn random_noise_spans_region() {
        let mut s = random_noise(0x24, 1 << 30, 1 << 20, 1, 3);
        let addrs: Vec<u64> = (0..200).map(|_| s().addr.raw()).collect();
        let distinct: HashSet<u64> = addrs.iter().copied().collect();
        assert!(distinct.len() > 150);
        assert!(addrs.iter().all(|&a| ((1 << 30)..(1 << 30) + (1 << 20) + 64).contains(&a)));
    }

    #[test]
    fn set_aliasing_revisits_the_same_set() {
        // Stride 4096 = 64 sets × 64 B: every address shares L1 set 0.
        let mut s = set_aliasing(0x26, 0x100_000, 4096, 3, 1);
        let addrs: Vec<u64> = (0..7).map(|_| s().addr.raw()).collect();
        assert_eq!(addrs[0], addrs[3], "the footprint must recur");
        assert_eq!(addrs[1] - addrs[0], 4096);
        assert!(addrs.iter().all(|a| a.is_multiple_of(4096) || a % 4096 == addrs[0] % 4096));
    }

    #[test]
    fn phase_shift_alternates_stream_and_scatter() {
        let mut s = phase_shift(0x28, 0x200_000, 4, 1, 9);
        let lines: Vec<u64> = (0..8).map(|_| s().addr.line().raw()).collect();
        // First phase is unit stride...
        assert_eq!(lines[1] - lines[0], 1);
        assert_eq!(lines[3] - lines[2], 1);
        // ...second phase scatters (at least one jump far beyond stride 1).
        assert!(
            (4..8).any(|i| lines[i].abs_diff(lines[i - 1]) > 16),
            "scatter phase must jump, got {lines:?}"
        );
        // Determinism: the same seed replays the same stream.
        let mut a = phase_shift(0x28, 0x200_000, 4, 1, 9);
        let mut b = phase_shift(0x28, 0x200_000, 4, 1, 9);
        assert!((0..64).all(|_| a().addr == b().addr));
    }

    #[test]
    fn interleave_respects_total_and_weights() {
        let a = stream(0x1, 0, 1, true);
        let b = stream(0x2, 1 << 30, 1, true);
        let records = interleave_weighted(vec![a, b], &[0.9, 0.1], 2_000, 42);
        assert_eq!(records.len(), 2_000);
        let from_a = records.iter().filter(|r| r.pc == Pc::new(0x1)).count();
        assert!(
            from_a > 1_600 && from_a < 1_950,
            "~90% should come from the heavy component, got {from_a}"
        );
    }

    #[test]
    fn interleave_is_deterministic() {
        let mk = || {
            interleave_weighted(
                vec![stream(0x1, 0, 1, true), random_noise(0x2, 1 << 30, 1 << 18, 1, 9)],
                &[0.5, 0.5],
                500,
                7,
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "one weight per component")]
    fn mismatched_weights_panic() {
        let _ = interleave_weighted(vec![stream(0x1, 0, 1, true)], &[0.5, 0.5], 10, 1);
    }

    #[test]
    fn streaming_interleave_matches_collected() {
        let mk_components =
            || vec![stream(0x1, 0, 1, true), random_noise(0x2, 1 << 30, 1 << 18, 1, 9)];
        let eager = interleave_weighted(mk_components(), &[0.7, 0.3], 800, 11);
        let streamed: Vec<MemoryRecord> =
            interleave_weighted_iter(mk_components(), vec![0.7, 0.3], 11).take(800).collect();
        assert_eq!(eager, streamed, "lazy generation must replay the legacy path exactly");
    }

    #[test]
    fn zipfian_is_skewed_recurring_and_deterministic() {
        let draws = |seed: u64| -> Vec<u64> {
            let mut z = zipfian(0x30, 1 << 32, 4_096, 0.99, 0.1, 2, seed);
            (0..3_000).map(|_| z().addr.raw()).collect()
        };
        let a = draws(5);
        assert_eq!(a, draws(5), "same seed must replay the same request mix");
        assert_ne!(a, draws(6), "different seeds must decorrelate");
        // Power-law skew: the most popular object dominates far beyond 1/N.
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for addr in &a {
            *counts.entry(*addr).or_default() += 1;
        }
        let hottest = counts.values().copied().max().unwrap();
        assert!(hottest > 100, "hottest of 4096 objects should take >>1/N of 3000 draws");
        assert!(counts.len() > 200, "the long tail must still be touched");
        // Some accesses are stores.
        let mut z = zipfian(0x30, 1 << 32, 4_096, 0.99, 0.3, 2, 5);
        assert!((0..500).any(|_| z().kind == AccessKind::Store));
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_zipfian_panics() {
        let _ = zipfian(0x30, 0, 0, 1.0, 0.0, 1, 1);
    }
}
