//! Pointer-chasing workloads: linked-list traversal, garbage collection and
//! ordered-index walks — the scenario family where almost every access is a
//! serially dependent load and only temporal (address-correlating)
//! prefetchers can help. Registered as [`crate::Suite::PointerChase`].
//!
//! These stand in for managed-runtime behaviour (tracing GC marks the live
//! object graph; sweeps stream the heap linearly) and for classic
//! list/skiplist index structures, rounding out the SPEC/PARSEC/Ligra mix
//! with the workloads that stress Alecto's demand request allocation the
//! hardest.

use alecto_types::{TraceSource, Workload};

use crate::blend::Blend;

/// The pointer-chasing benchmarks of the family.
pub const BENCHMARKS: [&str; 4] = ["linked-list", "gc-mark", "gc-sweep", "skiplist"];

/// Builds the blend describing `name`.
///
/// # Panics
///
/// Panics if `name` is not in [`BENCHMARKS`].
#[must_use]
pub fn blend(name: &str) -> Blend {
    assert!(BENCHMARKS.contains(&name), "unknown pointer-chase benchmark: {name}");
    let b = Blend::builder(name);
    match name {
        // A cold, DRAM-sized list walk: nearly pure dependent loads.
        "linked-list" => b
            .memory_intensive()
            .chase(0.85)
            .noise(0.1)
            .resident(0.05)
            .gap(6)
            .chase_nodes(60_000)
            .finish(),
        // Tracing GC mark phase: pointer graph traversal plus mark-bitmap
        // writes (spatial) and allocation-site noise.
        "gc-mark" => b
            .memory_intensive()
            .chase(0.5)
            .spatial(0.2)
            .noise(0.25)
            .resident(0.05)
            .gap(8)
            .chase_nodes(40_000)
            .finish(),
        // Sweep phase: the heap is walked linearly, free lists are threaded
        // through it (recurring chase over a smaller set).
        "gc-sweep" => b
            .memory_intensive()
            .stream(0.5)
            .spatial(0.2)
            .chase(0.2)
            .resident(0.1)
            .gap(10)
            .chase_nodes(8_000)
            .finish(),
        // Skiplist search: short dependent descents with hot upper levels.
        "skiplist" => {
            b.chase(0.45).resident(0.3).stride(0.15).noise(0.1).gap(14).chase_nodes(12_000).finish()
        }
        _ => unreachable!("benchmark {name} is listed but has no blend"),
    }
}

/// Generates the named pointer-chasing workload (eager, O(accesses) memory).
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn workload(name: &str, accesses: usize) -> Workload {
    blend(name).build(accesses)
}

/// Streaming variant of [`workload`]: a lazy [`TraceSource`] producing the
/// identical records in O(1) memory.
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn source(name: &str, accesses: usize) -> TraceSource {
    blend(name).source(accesses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_blends() {
        for name in BENCHMARKS {
            let w = workload(name, 120);
            assert_eq!(w.memory_accesses(), 120);
            assert_eq!(source(name, 120).collect(), w);
        }
    }

    #[test]
    fn chasing_dominates_the_list_walk() {
        let w = workload("linked-list", 2_000);
        let dependent = w.records.iter().filter(|r| r.dependent).count();
        assert!(dependent > 1_400, "most accesses should be dependent loads, got {dependent}");
        assert!(w.memory_intensive);
    }

    #[test]
    #[should_panic(expected = "unknown pointer-chase benchmark")]
    fn unknown_name_panics() {
        let _ = workload("btree", 10);
    }
}
