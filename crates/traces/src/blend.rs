//! Benchmark blends: a declarative description of how much of each access
//! pattern a benchmark exhibits, turned into a concrete trace.

use alecto_types::{TraceSource, Workload};

use crate::patterns::{
    delta_chain, interleave_weighted, interleave_weighted_iter, looping_stream, phase_shift,
    pointer_chase, random_noise, set_aliasing, spatial_pages, stream, strided, zipfian, Component,
};

/// Pattern mixture and intensity of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Blend {
    /// Benchmark name.
    pub name: String,
    /// Whether the paper lists the benchmark as memory intensive.
    pub memory_intensive: bool,
    /// Weight of unit-stride stream components.
    pub stream: f64,
    /// Weight of constant-stride components.
    pub stride: f64,
    /// Weight of per-page spatial-footprint components.
    pub spatial: f64,
    /// Weight of complex (repeating delta-chain) components.
    pub delta: f64,
    /// Weight of recurring pointer-chase (temporal) components.
    pub chase: f64,
    /// Weight of bounded, recurring loop-stream components (recurring *and*
    /// coverable by non-temporal prefetchers — the §IV-F filtering case).
    pub loop_stream: f64,
    /// Weight of cache-resident reuse (compute-bound) components.
    pub resident: f64,
    /// Weight of unpredictable far-spread noise components.
    pub noise: f64,
    /// Weight of power-law (Zipfian) object accesses — the web-serving /
    /// key-value-store request mix: heavily recurring hot objects with an
    /// unpredictable long tail.
    pub zipf: f64,
    /// Weight of conflict-thrash components walking set-aliasing offsets
    /// (every access maps to the same cache set — see
    /// [`crate::patterns::set_aliasing`]). Adversarial: the fuzzer's
    /// thrashing ingredient.
    pub alias: f64,
    /// Weight of phase-shifting components that flip between streaming and
    /// scatter behaviour every [`Blend::phase_period`] accesses
    /// ([`crate::patterns::phase_shift`]). Adversarial: defeats epoch-based
    /// adaptation.
    pub phase: f64,
    /// Byte stride of the set-aliasing walk (a multiple of `sets ×
    /// line_bytes` of the targeted cache level aliases perfectly).
    pub alias_stride: u64,
    /// Distinct lines in the set-aliasing footprint (more than the targeted
    /// level's associativity guarantees conflict misses).
    pub alias_lines: usize,
    /// Accesses per phase of the phase-shifting component.
    pub phase_period: u32,
    /// Average non-memory instructions between accesses (memory intensity).
    pub gap: u32,
    /// Number of nodes in the pointer-chase working set.
    pub chase_nodes: usize,
    /// Number of objects in the Zipfian working set.
    pub zipf_objects: usize,
    /// Skew of the Zipfian distribution (`theta`; web traces are ~0.99).
    pub zipf_theta: f64,
    /// Random seed (derived from the name by default).
    pub seed: u64,
}

impl Blend {
    /// Starts a builder for benchmark `name`.
    #[must_use]
    pub fn builder(name: &str) -> BlendBuilder {
        BlendBuilder::new(name)
    }

    /// Materialises the blend into a trace of `accesses` memory accesses.
    ///
    /// This is the *legacy eager* path (O(accesses) memory); long-horizon
    /// runs should prefer [`Blend::source`], which generates the identical
    /// records lazily.
    #[must_use]
    pub fn build(&self, accesses: usize) -> Workload {
        let (components, weights) = self.components();
        let records = interleave_weighted(components, &weights, accesses, self.seed);
        Workload::new(self.name.clone(), records, self.memory_intensive)
    }

    /// Turns the blend into a lazy, restartable [`TraceSource`] producing
    /// `accesses` records per replay in O(1) memory (with respect to the
    /// trace length). Record-for-record identical to [`Blend::build`]:
    /// components are rebuilt from the blend description on every replay and
    /// interleaved by the same seeded draw sequence.
    #[must_use]
    pub fn source(&self, accesses: usize) -> TraceSource {
        let blend = self.clone();
        // The record stream is a pure function of the whole blend description
        // (weights, gap, working-set sizes, seed), so the entire Debug
        // rendering is folded into the source fingerprint: any parameter
        // change — not just a rename — yields a distinct cache identity.
        let identity = format!("{self:?}");
        TraceSource::new(self.name.clone(), self.memory_intensive, accesses, move || {
            let (components, weights) = blend.components();
            Box::new(interleave_weighted_iter(components, weights, blend.seed))
        })
        .with_content_tag(&identity)
    }

    /// The weighted component streams this blend mixes.
    fn components(&self) -> (Vec<Component>, Vec<f64>) {
        let gap = self.gap;
        let seed = self.seed;
        let mut components: Vec<Component> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let add =
            |c: Component, w: f64, weights: &mut Vec<f64>, components: &mut Vec<Component>| {
                if w > 0.0 {
                    components.push(c);
                    weights.push(w);
                }
            };

        // Two stream PCs walking disjoint regions (one ascending, one descending).
        add(
            stream(0x4_1000, 0x4000_0000, gap, true),
            self.stream * 0.6,
            &mut weights,
            &mut components,
        );
        add(
            stream(0x4_1010, 0x8000_0000, gap, false),
            self.stream * 0.4,
            &mut weights,
            &mut components,
        );
        // Two stride PCs with different strides (2 lines and 5 lines).
        add(
            strided(0x4_2000, 0xc000_0000, 128, gap),
            self.stride * 0.5,
            &mut weights,
            &mut components,
        );
        add(
            strided(0x4_2010, 0x1_0000_0000, 320, gap),
            self.stride * 0.5,
            &mut weights,
            &mut components,
        );
        // A spatial PC touching a fixed footprint in every visited page.
        add(
            spatial_pages(0x4_3000, 0x14_0000, vec![0, 1, 3, 6, 10, 11], gap),
            self.spatial,
            &mut weights,
            &mut components,
        );
        // A complex delta chain (defeats the constant-stride prefetcher).
        add(
            delta_chain(0x4_4000, 0x1_8000_0000, vec![1, 1, 1, 4], gap),
            self.delta,
            &mut weights,
            &mut components,
        );
        // A recurring pointer chase (temporal pattern).
        add(
            pointer_chase(0x4_5000, 0x2_0000_0000, self.chase_nodes.max(2), gap, seed ^ 0x1),
            self.chase,
            &mut weights,
            &mut components,
        );
        // A bounded loop re-streamed every iteration (recurring but coverable
        // by the stream/stride prefetchers).
        add(
            looping_stream(0x4_5800, 0x2_8000_0000, 4_096, gap),
            self.loop_stream,
            &mut weights,
            &mut components,
        );
        // Cache-resident reuse: a small region revisited over and over.
        add(
            random_noise(0x4_6000, 0x10_0000, 24 * 1024, gap, seed ^ 0x2),
            self.resident,
            &mut weights,
            &mut components,
        );
        // Unpredictable noise spread over a DRAM-sized region.
        add(
            random_noise(0x4_7000, 0x3_0000_0000, 256 * 1024 * 1024, gap, seed ^ 0x3),
            self.noise,
            &mut weights,
            &mut components,
        );
        // Power-law object popularity (web-serving / key-value request mix;
        // ~10% of object touches are writes). Unlike the other components,
        // construction costs O(zipf_objects) (cumulative masses + a slot
        // permutation), so it is gated on the weight rather than eagerly
        // built and discarded — blends without a zipf share pay nothing.
        if self.zipf > 0.0 {
            add(
                zipfian(
                    0x4_8000,
                    0x4_0000_0000,
                    self.zipf_objects.max(1),
                    self.zipf_theta,
                    0.1,
                    gap,
                    seed ^ 0x4,
                ),
                self.zipf,
                &mut weights,
                &mut components,
            );
        }
        // Conflict thrashing: a round-robin walk over set-aliasing offsets.
        add(
            set_aliasing(
                0x4_9000,
                0x5_0000_0000,
                self.alias_stride.max(64),
                self.alias_lines.max(2),
                gap,
            ),
            self.alias,
            &mut weights,
            &mut components,
        );
        // Phase-shifting interleave: streaming then scatter, repeating.
        add(
            phase_shift(0x4_a000, 0x6_0000_0000, self.phase_period.max(1), gap, seed ^ 0x5),
            self.phase,
            &mut weights,
            &mut components,
        );

        (components, weights)
    }
}

/// Builder for [`Blend`]; all weights default to zero, the gap defaults to 30
/// instructions and the chase working set to 2000 nodes.
#[derive(Debug, Clone)]
pub struct BlendBuilder {
    blend: Blend,
}

/// Derives the trace-generation seed for `name` and a job (or core) index.
///
/// Seeds are a pure function of `(name, job)` — never of global state or of
/// how many workloads were generated before this one — so trace generation
/// is *position-independent*: a cell of a parallel sweep regenerates exactly
/// the same records whether it runs first, last, serially or on any worker
/// thread. Job 0 is the canonical workload (the plain FNV-1a hash of the
/// name, matching what [`BlendBuilder::new`] has always produced); higher
/// job indices mix the index in through a splitmix64 round for per-core or
/// per-shard variants that must not correlate.
#[must_use]
pub fn derive_seed(name: &str, job: u64) -> u64 {
    let base = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x1_0000_01b3));
    if job == 0 {
        return base;
    }
    let mut z = base ^ job.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl BlendBuilder {
    /// Creates a builder for benchmark `name`; the seed is derived from the
    /// name (job 0 of [`derive_seed`]) so regeneration is deterministic and
    /// position-independent.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let seed = derive_seed(name, 0);
        Self {
            blend: Blend {
                name: name.to_string(),
                memory_intensive: false,
                stream: 0.0,
                stride: 0.0,
                spatial: 0.0,
                delta: 0.0,
                chase: 0.0,
                loop_stream: 0.0,
                resident: 0.0,
                noise: 0.0,
                zipf: 0.0,
                alias: 0.0,
                phase: 0.0,
                gap: 30,
                chase_nodes: 2_000,
                zipf_objects: 16_384,
                zipf_theta: 0.99,
                alias_stride: 4_096,
                alias_lines: 32,
                phase_period: 2_048,
                seed,
            },
        }
    }

    /// Marks the benchmark memory intensive (Fig. 8/9 dotted-box subset).
    #[must_use]
    pub fn memory_intensive(mut self) -> Self {
        self.blend.memory_intensive = true;
        self
    }

    /// Sets the stream weight.
    #[must_use]
    pub fn stream(mut self, w: f64) -> Self {
        self.blend.stream = w;
        self
    }

    /// Sets the constant-stride weight.
    #[must_use]
    pub fn stride(mut self, w: f64) -> Self {
        self.blend.stride = w;
        self
    }

    /// Sets the spatial-footprint weight.
    #[must_use]
    pub fn spatial(mut self, w: f64) -> Self {
        self.blend.spatial = w;
        self
    }

    /// Sets the complex delta-chain weight.
    #[must_use]
    pub fn delta(mut self, w: f64) -> Self {
        self.blend.delta = w;
        self
    }

    /// Sets the pointer-chase (temporal) weight.
    #[must_use]
    pub fn chase(mut self, w: f64) -> Self {
        self.blend.chase = w;
        self
    }

    /// Sets the recurring loop-stream weight.
    #[must_use]
    pub fn loop_stream(mut self, w: f64) -> Self {
        self.blend.loop_stream = w;
        self
    }

    /// Sets the cache-resident reuse weight.
    #[must_use]
    pub fn resident(mut self, w: f64) -> Self {
        self.blend.resident = w;
        self
    }

    /// Sets the unpredictable-noise weight.
    #[must_use]
    pub fn noise(mut self, w: f64) -> Self {
        self.blend.noise = w;
        self
    }

    /// Sets the Zipfian (power-law object popularity) weight.
    #[must_use]
    pub fn zipf(mut self, w: f64) -> Self {
        self.blend.zipf = w;
        self
    }

    /// Sets the set-aliasing conflict-thrash weight.
    #[must_use]
    pub fn alias(mut self, w: f64) -> Self {
        self.blend.alias = w;
        self
    }

    /// Sets the byte stride and footprint (in lines) of the set-aliasing
    /// walk. A stride that is a multiple of `sets × 64` for a cache level
    /// aliases into a single set of that level; a footprint wider than its
    /// associativity then conflicts on every revisit.
    #[must_use]
    pub fn alias_geometry(mut self, stride_bytes: u64, footprint_lines: usize) -> Self {
        self.blend.alias_stride = stride_bytes;
        self.blend.alias_lines = footprint_lines;
        self
    }

    /// Sets the phase-shifting interleave weight.
    #[must_use]
    pub fn phase(mut self, w: f64) -> Self {
        self.blend.phase = w;
        self
    }

    /// Sets the accesses-per-phase period of the phase-shifting component.
    #[must_use]
    pub fn phase_period(mut self, period: u32) -> Self {
        self.blend.phase_period = period;
        self
    }

    /// Sets the number of objects in the Zipfian working set.
    #[must_use]
    pub fn zipf_objects(mut self, objects: usize) -> Self {
        self.blend.zipf_objects = objects;
        self
    }

    /// Sets the Zipfian skew parameter `theta`.
    #[must_use]
    pub fn zipf_theta(mut self, theta: f64) -> Self {
        self.blend.zipf_theta = theta;
        self
    }

    /// Sets the average instruction gap between memory accesses.
    #[must_use]
    pub fn gap(mut self, gap: u32) -> Self {
        self.blend.gap = gap;
        self
    }

    /// Sets the number of nodes in the pointer-chase working set.
    #[must_use]
    pub fn chase_nodes(mut self, nodes: usize) -> Self {
        self.blend.chase_nodes = nodes;
        self
    }

    /// Overrides the generation seed, e.g. with [`derive_seed`]`(name, job)`
    /// for a per-job variant of the same blend.
    #[must_use]
    pub const fn seed(mut self, seed: u64) -> Self {
        self.blend.seed = seed;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn finish(self) -> Blend {
        self.blend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alecto_types::Pc;

    #[test]
    fn builder_produces_named_workload() {
        let blend = Blend::builder("toy").memory_intensive().stream(1.0).gap(10).finish();
        let w = blend.build(1_000);
        assert_eq!(w.name, "toy");
        assert!(w.memory_intensive);
        assert_eq!(w.memory_accesses(), 1_000);
        // gap 10 → roughly 11 instructions per access.
        assert!(w.instructions() >= 10_000);
    }

    #[test]
    fn weights_steer_the_pattern_mix() {
        let blend = Blend::builder("chase-heavy").chase(0.9).stream(0.1).gap(5).finish();
        let w = blend.build(4_000);
        let chase_pc = w.records.iter().filter(|r| r.pc == Pc::new(0x4_5000)).count();
        assert!(chase_pc > 3_000, "chase PC should dominate, got {chase_pc}");
    }

    #[test]
    fn different_names_get_different_seeds() {
        let a = Blend::builder("a").noise(1.0).finish().build(200);
        let b = Blend::builder("b").noise(1.0).finish().build(200);
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn same_blend_is_reproducible() {
        let mk = || Blend::builder("repro").stream(0.5).chase(0.5).finish().build(300);
        assert_eq!(mk(), mk());
    }

    #[test]
    fn derived_seeds_are_position_independent() {
        // Job 0 is the canonical per-name seed the builder uses.
        assert_eq!(derive_seed("mcf", 0), Blend::builder("mcf").finish().seed);
        // Distinct jobs decorrelate, and the mapping is a pure function.
        assert_ne!(derive_seed("mcf", 0), derive_seed("mcf", 1));
        assert_ne!(derive_seed("mcf", 1), derive_seed("mcf", 2));
        assert_eq!(derive_seed("mcf", 7), derive_seed("mcf", 7));
        // Generation order cannot matter: building B before A yields the
        // same records as building A before B.
        let mk = |name: &str, job: u64| {
            Blend::builder(name).noise(1.0).seed(derive_seed(name, job)).finish().build(200)
        };
        let (a1, b1) = (mk("a", 3), mk("b", 3));
        let (b2, a2) = (mk("b", 3), mk("a", 3));
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1.records, b1.records);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_blend_panics() {
        let _ = Blend::builder("empty").finish().build(10);
    }

    #[test]
    fn source_streams_the_same_records_as_build() {
        let blend =
            Blend::builder("stream-eq").stream(0.3).chase(0.3).zipf(0.2).noise(0.2).gap(7).finish();
        let eager = blend.build(1_200);
        let source = blend.source(1_200);
        assert_eq!(source.name(), "stream-eq");
        assert_eq!(source.collect(), eager);
        // Replays are restartable and identical.
        let first: Vec<_> = source.records().collect();
        let second: Vec<_> = source.records().collect();
        assert_eq!(first, second);
    }

    #[test]
    fn zipf_weight_steers_the_mix() {
        let blend = Blend::builder("webby").zipf(0.9).stream(0.1).gap(4).finish();
        let w = blend.build(3_000);
        let zipf_pc = w.records.iter().filter(|r| r.pc == Pc::new(0x4_8000)).count();
        assert!(zipf_pc > 2_300, "zipf PC should dominate, got {zipf_pc}");
    }

    #[test]
    fn zero_accesses_build_an_empty_trace() {
        let blend = Blend::builder("empty-ok").stream(1.0).finish();
        assert_eq!(blend.build(0).records.len(), 0);
        assert_eq!(blend.source(0).records().count(), 0);
    }
}
